//! # gpl-repro — reproduction of *GPL: A GPU-based Pipelined Query
//! Processing Engine* (SIGMOD 2016)
//!
//! Umbrella crate re-exporting the workspace members. See the individual
//! crates for the substance:
//!
//! * [`sim`] — the trace-driven GPU simulator (the hardware substitute).
//! * [`storage`] — columnar tables, tiling, simulated address mapping.
//! * [`tpch`] — deterministic TPC-H generator and CPU reference queries.
//! * [`core`] — the GPL engine: operators-as-kernels, segments, the KBE
//!   and GPL executors.
//! * [`model`] — the Section 4 analytical model and parameter search.
//! * [`ocelot`] — the Ocelot-like comparison baseline (Section 5.5).
//! * [`sql`] — a SQL front-end compiling an analytical subset to plans.
//! * [`obs`] — structured tracing, metrics, Chrome-trace/JSON export.
//! * [`serve`] — the concurrent multi-query scheduler and plan cache.

pub use gpl_core as core;
pub use gpl_model as model;
pub use gpl_obs as obs;
pub use gpl_ocelot as ocelot;
pub use gpl_serve as serve;
pub use gpl_sim as sim;
pub use gpl_sql as sql;
pub use gpl_storage as storage;
pub use gpl_tpch as tpch;
