//! Scalar types of the storage layer.
//!
//! The engine is columnar and fixed-width, like the GPU query processors
//! GPL builds on (OmniDB \[40\], GDB \[13\]): dates are day numbers, money is
//! 64-bit fixed-point with two decimals, and strings are dictionary
//! encoded. Appendix B notes Ocelot cannot handle types wider than four
//! bytes — `gpl-ocelot` uses [`DataType::width`] to enforce that.

use std::fmt;

/// Physical column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Days since 1970-01-01, stored as `i32`.
    Date,
    /// Fixed-point decimal with two fractional digits, stored as `i64`
    /// (i.e. cents).
    Decimal,
    /// Dictionary-encoded string, stored as a `u32` code.
    Dict,
}

impl DataType {
    /// Bytes per element in simulated GPU memory.
    pub fn width(self) -> u64 {
        match self {
            DataType::I32 | DataType::Date | DataType::Dict => 4,
            DataType::I64 | DataType::Decimal => 8,
        }
    }
}

/// A decimal value with two fractional digits (cents).
pub const DECIMAL_SCALE: i64 = 100;

/// Build a decimal from whole units and hundredths: `dec(19, 99)` is 19.99.
pub fn dec(units: i64, cents: i64) -> i64 {
    units * DECIMAL_SCALE + cents
}

/// Fixed-point multiply: `(a × b) / 100`, truncating toward zero, with
/// intermediate widening so large revenue sums cannot overflow. Every
/// engine (KBE, GPL, Ocelot, CPU reference) uses this same helper, so
/// query results compare exactly.
#[inline]
pub fn dec_mul(a: i64, b: i64) -> i64 {
    ((a as i128 * b as i128) / DECIMAL_SCALE as i128) as i64
}

/// Render a decimal for display.
pub fn decimal_to_string(v: i64) -> String {
    let sign = if v < 0 { "-" } else { "" };
    let a = v.abs();
    format!("{sign}{}.{:02}", a / DECIMAL_SCALE, a % DECIMAL_SCALE)
}

/// A calendar date, convertible to/from the day numbers stored in `Date`
/// columns. Implements Howard Hinnant's civil-date algorithms, which are
/// exact over the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl Date {
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!((1..=31).contains(&day), "day {day} out of range");
        Date { year, month, day }
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.split('-');
        let year: i32 = it.next()?.parse().ok()?;
        let month: u32 = it.next()?.parse().ok()?;
        let day: u32 = it.next()?.parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Days since 1970-01-01.
    pub fn to_days(self) -> i32 {
        let y = self.year as i64 - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (self.month as i64 + 9) % 12; // [0, 11], March = 0
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        (era * 146_097 + doe - 719_468) as i32
    }

    /// Inverse of [`Date::to_days`].
    pub fn from_days(days: i32) -> Self {
        let z = days as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let day = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        Date {
            year: (y + i64::from(month <= 2)) as i32,
            month,
            day,
        }
    }

    /// The year extracted from a day number (`extract(year from ..)`).
    pub fn year_of_days(days: i32) -> i32 {
        Date::from_days(days).year
    }

    /// First day of the month `months` after this date's month (used for
    /// `date X + interval N month` predicates, e.g. Q14).
    pub fn add_months(self, months: u32) -> Self {
        let total = self.year * 12 + (self.month as i32 - 1) + months as i32;
        Date {
            year: total.div_euclid(12),
            month: (total.rem_euclid(12) + 1) as u32,
            day: self.day,
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Shorthand: day number of `YYYY-MM-DD` (panics on malformed input;
/// intended for literals in query definitions and tests).
pub fn days(s: &str) -> i32 {
    Date::parse(s)
        .unwrap_or_else(|| panic!("bad date literal {s:?}"))
        .to_days()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::new(1970, 1, 1).to_days(), 0);
        assert_eq!(Date::from_days(0), Date::new(1970, 1, 1));
    }

    #[test]
    fn known_dates_roundtrip() {
        for (s, d) in [
            ("1992-01-01", 8035),
            ("1995-09-01", 9374),
            ("1998-12-31", 10591),
            ("1970-01-02", 1),
            ("1969-12-31", -1),
            ("2000-02-29", 11016),
        ] {
            assert_eq!(days(s), d, "{s}");
            assert_eq!(Date::from_days(d).to_string(), s);
        }
    }

    #[test]
    fn roundtrip_dense_range() {
        // Every day across several leap/century boundaries.
        for d in days("1899-12-25")..days("1904-01-05") {
            assert_eq!(Date::from_days(d).to_days(), d);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Date::parse("not-a-date").is_none());
        assert!(Date::parse("1995-13-01").is_none());
        assert!(Date::parse("1995-01-32").is_none());
        assert!(Date::parse("1995-01").is_none());
        assert!(Date::parse("1995-01-01-01").is_none());
    }

    #[test]
    fn add_months_handles_year_wrap() {
        let d = Date::new(1995, 12, 1);
        assert_eq!(d.add_months(1), Date::new(1996, 1, 1));
        assert_eq!(d.add_months(13), Date::new(1997, 1, 1));
        assert_eq!(Date::new(1995, 3, 15).add_months(0), Date::new(1995, 3, 15));
    }

    #[test]
    fn dec_mul_truncates_and_widens() {
        // 19.99 * 0.50 = 9.99 (truncating 9.995).
        assert_eq!(dec_mul(1999, 50), 999);
        assert_eq!(dec_mul(100, 100), 100);
        assert_eq!(dec_mul(-1999, 50), -999);
        // dec_mul by 1.00 is identity.
        assert_eq!(dec_mul(i64::MAX / 200, 100), i64::MAX / 200);
        // Near-i64 operands must widen internally instead of overflowing.
        assert_eq!(dec_mul(i64::MAX / 200, 200), i64::MAX / 200 * 2);
    }

    #[test]
    fn decimal_helpers() {
        assert_eq!(dec(19, 99), 1999);
        assert_eq!(decimal_to_string(1999), "19.99");
        assert_eq!(decimal_to_string(-105), "-1.05");
        assert_eq!(decimal_to_string(0), "0.00");
    }

    #[test]
    fn widths() {
        assert_eq!(DataType::I32.width(), 4);
        assert_eq!(DataType::Date.width(), 4);
        assert_eq!(DataType::Dict.width(), 4);
        assert_eq!(DataType::I64.width(), 8);
        assert_eq!(DataType::Decimal.width(), 8);
    }

    #[test]
    fn year_extraction() {
        assert_eq!(Date::year_of_days(days("1995-06-17")), 1995);
        assert_eq!(Date::year_of_days(days("1996-01-01")), 1996);
    }
}
