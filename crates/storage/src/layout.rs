//! Mapping tables into the simulator's global-memory address space.
//!
//! Each column gets its own `TableData` region; kernels then report their
//! tile scans as address-range accesses over these regions, so the cache
//! simulator sees the same streams a columnar GPU engine would generate.

use crate::table::Table;
use gpl_sim::mem::{MemRange, MemoryMap, RegionClass, RegionId};
use std::ops::Range;

/// Per-column simulated placement of one table.
#[derive(Debug, Clone)]
pub struct TableLayout {
    table: String,
    regions: Vec<RegionId>,
    bases: Vec<u64>,
    widths: Vec<u64>,
    rows: usize,
}

impl TableLayout {
    /// Allocate one region per column of `table`.
    pub fn install(mem: &mut MemoryMap, table: &Table) -> Self {
        let mut regions = Vec::with_capacity(table.num_columns());
        let mut bases = Vec::with_capacity(table.num_columns());
        let mut widths = Vec::with_capacity(table.num_columns());
        for (name, col) in table.columns() {
            let w = col.data_type().width();
            let id = mem.alloc(
                w * table.rows() as u64,
                RegionClass::TableData,
                format!("{}.{}", table.name(), name),
            );
            bases.push(mem.base(id));
            widths.push(w);
            regions.push(id);
        }
        TableLayout {
            table: table.name().to_string(),
            regions,
            bases,
            widths,
            rows: table.rows(),
        }
    }

    pub fn table(&self) -> &str {
        &self.table
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn region(&self, col: usize) -> RegionId {
        self.regions[col]
    }

    /// Read access covering `rows` of column `col`.
    pub fn scan(&self, col: usize, rows: Range<usize>) -> MemRange {
        debug_assert!(rows.end <= self.rows, "scan past end of {}", self.table);
        let w = self.widths[col];
        MemRange::read(
            self.bases[col] + rows.start as u64 * w,
            (rows.len() as u64) * w,
        )
    }

    /// Random (gather) access to a single element of column `col`.
    pub fn element(&self, col: usize, row: usize) -> MemRange {
        debug_assert!(row < self.rows);
        let w = self.widths[col];
        MemRange::read(self.bases[col] + row as u64 * w, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn layout() -> (MemoryMap, TableLayout) {
        let t = Table::new(
            "t",
            vec![
                ("a".into(), Column::I32(vec![0; 100])),
                ("b".into(), Column::Decimal(vec![0; 100])),
            ],
        );
        let mut mem = MemoryMap::new();
        let l = TableLayout::install(&mut mem, &t);
        (mem, l)
    }

    #[test]
    fn regions_are_per_column_and_sized() {
        let (mem, l) = layout();
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.region(l.region(0)).bytes, 400);
        assert_eq!(mem.region(l.region(1)).bytes, 800);
        assert_eq!(mem.region(l.region(0)).class, RegionClass::TableData);
        assert_eq!(mem.region(l.region(0)).label, "t.a");
    }

    #[test]
    fn scan_addresses_match_widths() {
        let (_, l) = layout();
        let r = l.scan(1, 10..20);
        assert_eq!(r.bytes, 80);
        assert_eq!(r.addr, l.scan(1, 0..1).addr + 80);
        assert!(!r.write);
    }

    #[test]
    fn element_is_one_width() {
        let (_, l) = layout();
        assert_eq!(l.element(0, 3).bytes, 4);
        assert_eq!(l.element(1, 3).bytes, 8);
        assert_eq!(l.element(0, 3).addr, l.scan(0, 0..1).addr + 12);
    }
}
