//! Tiling (Section 3.3).
//!
//! GPL logically partitions an input relation `R` into tiles `R*` of
//! (nearly) the same size; one tile at a time is scheduled as input to a
//! segment's pipeline. The tile size Δ is a first-class tuning knob of
//! the cost model: too small under-utilizes the pipeline and the
//! channels, too large thrashes the cache (Figure 12).

use std::ops::Range;

/// A logical partition of `rows` rows into fixed-size tiles (the last one
/// may be short).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    rows: usize,
    rows_per_tile: usize,
}

impl Tiling {
    /// Tile `rows` rows so that each tile spans at most `tile_bytes` of
    /// the driving relation, whose rows occupy `row_bytes` each.
    pub fn by_bytes(rows: usize, row_bytes: u64, tile_bytes: u64) -> Self {
        let row_bytes = row_bytes.max(1);
        let rows_per_tile = (tile_bytes / row_bytes).max(1) as usize;
        Tiling {
            rows,
            rows_per_tile,
        }
    }

    /// Tile by an explicit row count.
    pub fn by_rows(rows: usize, rows_per_tile: usize) -> Self {
        Tiling {
            rows,
            rows_per_tile: rows_per_tile.max(1),
        }
    }

    /// A single tile covering everything (KBE processes untiled input).
    pub fn whole(rows: usize) -> Self {
        Tiling {
            rows,
            rows_per_tile: rows.max(1),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn rows_per_tile(&self) -> usize {
        self.rows_per_tile
    }

    pub fn num_tiles(&self) -> usize {
        if self.rows == 0 {
            0
        } else {
            self.rows.div_ceil(self.rows_per_tile)
        }
    }

    /// Row range of tile `i`.
    pub fn tile(&self, i: usize) -> Range<usize> {
        let start = i * self.rows_per_tile;
        assert!(
            start < self.rows || (self.rows == 0 && i == 0),
            "tile {i} out of range"
        );
        start..self.rows.min(start + self.rows_per_tile)
    }

    /// Iterate over all tile ranges.
    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_tiles()).map(|i| self.tile(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_partition_the_rows() {
        let t = Tiling::by_rows(10, 3);
        let tiles: Vec<_> = t.iter().collect();
        assert_eq!(tiles, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(t.num_tiles(), 4);
        // Partition: disjoint union covering 0..rows.
        let total: usize = tiles.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn by_bytes_converts_to_rows() {
        // 16-byte rows, 64-byte tiles => 4 rows per tile.
        let t = Tiling::by_bytes(100, 16, 64);
        assert_eq!(t.rows_per_tile(), 4);
        assert_eq!(t.num_tiles(), 25);
    }

    #[test]
    fn tiny_tile_bytes_still_progress() {
        let t = Tiling::by_bytes(5, 100, 1);
        assert_eq!(t.rows_per_tile(), 1);
        assert_eq!(t.num_tiles(), 5);
    }

    #[test]
    fn whole_is_one_tile() {
        let t = Tiling::whole(42);
        assert_eq!(t.num_tiles(), 1);
        assert_eq!(t.tile(0), 0..42);
    }

    #[test]
    fn empty_input_has_no_tiles() {
        let t = Tiling::by_rows(0, 8);
        assert_eq!(t.num_tiles(), 0);
        assert_eq!(t.iter().count(), 0);
    }
}
