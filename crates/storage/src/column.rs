//! Typed columnar storage.
//!
//! Every column is a dense, fixed-width vector — the layout GPU query
//! engines use so kernels can compute element addresses from row ids.
//! Strings are dictionary encoded ([`Column::Dict`]); operators compare
//! codes, and predicates look codes up in the shared [`Dictionary`].

use crate::types::DataType;
use std::sync::Arc;

/// An immutable, ordered string dictionary. Codes are indexes into the
/// sorted entry list, so code equality is string equality.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dictionary {
    entries: Vec<String>,
}

impl Dictionary {
    /// Build from entries, which must be unique. Order is preserved
    /// (generators intern in first-seen order).
    pub fn new(entries: Vec<String>) -> Self {
        Dictionary { entries }
    }

    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.entries.iter().position(|e| e == s).map(|i| i as u32)
    }

    pub fn get(&self, code: u32) -> &str {
        &self.entries[code as usize]
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[String] {
        &self.entries
    }
}

/// A builder-side dictionary that interns strings on the fly.
#[derive(Debug, Default)]
pub struct DictBuilder {
    entries: Vec<String>,
    index: std::collections::HashMap<String, u32>,
}

impl DictBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = self.entries.len() as u32;
        self.entries.push(s.to_string());
        self.index.insert(s.to_string(), c);
        c
    }

    pub fn finish(self) -> Dictionary {
        Dictionary {
            entries: self.entries,
        }
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    I32(Vec<i32>),
    I64(Vec<i64>),
    /// Days since the epoch.
    Date(Vec<i32>),
    /// Fixed-point cents.
    Decimal(Vec<i64>),
    /// Dictionary codes plus the shared dictionary.
    Dict(Vec<u32>, Arc<Dictionary>),
}

impl Column {
    pub fn data_type(&self) -> DataType {
        match self {
            Column::I32(_) => DataType::I32,
            Column::I64(_) => DataType::I64,
            Column::Date(_) => DataType::Date,
            Column::Decimal(_) => DataType::Decimal,
            Column::Dict(..) => DataType::Dict,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::I32(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Decimal(v) => v.len(),
            Column::Dict(v, _) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read any element widened to `i64` — the uniform value the engine's
    /// kernels operate on (GPU kernels likewise widen in registers).
    #[inline]
    pub fn get_i64(&self, row: usize) -> i64 {
        match self {
            Column::I32(v) => v[row] as i64,
            Column::I64(v) => v[row],
            Column::Date(v) => v[row] as i64,
            Column::Decimal(v) => v[row],
            Column::Dict(v, _) => v[row] as i64,
        }
    }

    /// Widen rows `lo..hi` to `i64` in one pass — hoists
    /// [`Column::get_i64`]'s enum match out of the element loop, which
    /// matters for the scan kernels' chunk fills.
    pub fn range_i64(&self, lo: usize, hi: usize) -> Vec<i64> {
        match self {
            Column::I32(v) => v[lo..hi].iter().map(|&x| x as i64).collect(),
            Column::I64(v) | Column::Decimal(v) => v[lo..hi].to_vec(),
            Column::Date(v) => v[lo..hi].iter().map(|&x| x as i64).collect(),
            Column::Dict(v, _) => v[lo..hi].iter().map(|&x| x as i64).collect(),
        }
    }

    /// Widen arbitrary rows to `i64`, with the same match hoisting.
    pub fn gather_i64(&self, rows: &[usize]) -> Vec<i64> {
        match self {
            Column::I32(v) => rows.iter().map(|&r| v[r] as i64).collect(),
            Column::I64(v) | Column::Decimal(v) => rows.iter().map(|&r| v[r]).collect(),
            Column::Date(v) => rows.iter().map(|&r| v[r] as i64).collect(),
            Column::Dict(v, _) => rows.iter().map(|&r| v[r] as i64).collect(),
        }
    }

    /// Gather the rows at `idx` into a new column of the same type.
    pub fn gather(&self, idx: &[u32]) -> Column {
        match self {
            Column::I32(v) => Column::I32(idx.iter().map(|&i| v[i as usize]).collect()),
            Column::I64(v) => Column::I64(idx.iter().map(|&i| v[i as usize]).collect()),
            Column::Date(v) => Column::Date(idx.iter().map(|&i| v[i as usize]).collect()),
            Column::Decimal(v) => Column::Decimal(idx.iter().map(|&i| v[i as usize]).collect()),
            Column::Dict(v, d) => {
                Column::Dict(idx.iter().map(|&i| v[i as usize]).collect(), d.clone())
            }
        }
    }

    /// Build a same-typed column from widened `i64` values (inverse of
    /// [`Column::get_i64`] for non-dict types; dict columns reuse their
    /// dictionary).
    pub fn from_i64_like(&self, vals: Vec<i64>) -> Column {
        match self {
            Column::I32(_) => Column::I32(vals.into_iter().map(|v| v as i32).collect()),
            Column::I64(_) => Column::I64(vals),
            Column::Date(_) => Column::Date(vals.into_iter().map(|v| v as i32).collect()),
            Column::Decimal(_) => Column::Decimal(vals),
            Column::Dict(_, d) => {
                Column::Dict(vals.into_iter().map(|v| v as u32).collect(), d.clone())
            }
        }
    }

    /// The dictionary, if this is a dict column.
    pub fn dictionary(&self) -> Option<&Arc<Dictionary>> {
        match self {
            Column::Dict(_, d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_builder_interns_once() {
        let mut b = DictBuilder::new();
        let a = b.intern("ASIA");
        let e = b.intern("EUROPE");
        let a2 = b.intern("ASIA");
        assert_eq!(a, a2);
        assert_ne!(a, e);
        let d = b.finish();
        assert_eq!(d.get(a), "ASIA");
        assert_eq!(d.code_of("EUROPE"), Some(e));
        assert_eq!(d.code_of("MARS"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn get_i64_widens_each_type() {
        let d = Arc::new(Dictionary::new(vec!["x".into(), "y".into()]));
        assert_eq!(Column::I32(vec![-5]).get_i64(0), -5);
        assert_eq!(Column::I64(vec![1 << 40]).get_i64(0), 1 << 40);
        assert_eq!(Column::Date(vec![8035]).get_i64(0), 8035);
        assert_eq!(Column::Decimal(vec![1999]).get_i64(0), 1999);
        assert_eq!(Column::Dict(vec![1], d).get_i64(0), 1);
    }

    #[test]
    fn gather_reorders_and_repeats() {
        let c = Column::I32(vec![10, 20, 30]);
        let g = c.gather(&[2, 0, 2]);
        assert_eq!(g, Column::I32(vec![30, 10, 30]));
    }

    #[test]
    fn from_i64_like_roundtrips() {
        let d = Arc::new(Dictionary::new(vec!["x".into()]));
        let cols = [
            Column::I32(vec![7]),
            Column::I64(vec![7]),
            Column::Date(vec![7]),
            Column::Decimal(vec![7]),
            Column::Dict(vec![0], d),
        ];
        for c in cols {
            let vals: Vec<i64> = (0..c.len()).map(|i| c.get_i64(i)).collect();
            let rebuilt = c.from_i64_like(vals);
            assert_eq!(rebuilt, c);
            assert_eq!(rebuilt.data_type(), c.data_type());
        }
    }
}
