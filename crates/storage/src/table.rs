//! Tables: named collections of equal-length columns.

use crate::column::Column;
use crate::types::DataType;

/// A named, columnar table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<(String, Column)>,
    rows: usize,
}

impl Table {
    /// Build a table; all columns must have the same length.
    pub fn new(name: impl Into<String>, columns: Vec<(String, Column)>) -> Self {
        let rows = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
        for (n, c) in &columns {
            assert_eq!(
                c.len(),
                rows,
                "column {n} has {} rows, expected {rows}",
                c.len()
            );
        }
        Table {
            name: name.into(),
            columns,
            rows,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column index by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Column by name; panics with a helpful message if absent (queries
    /// reference a fixed schema, so absence is a programming error).
    pub fn col(&self, name: &str) -> &Column {
        let idx = self
            .col_index(name)
            .unwrap_or_else(|| panic!("table {} has no column {name:?}", self.name));
        &self.columns[idx].1
    }

    pub fn col_at(&self, idx: usize) -> &Column {
        &self.columns[idx].1
    }

    pub fn col_name(&self, idx: usize) -> &str {
        &self.columns[idx].0
    }

    pub fn columns(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Bytes one row occupies across all columns (drives tiling).
    pub fn row_bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(|(_, c)| c.data_type().width())
            .sum()
    }

    /// Total bytes of the table in simulated memory.
    pub fn total_bytes(&self) -> u64 {
        self.row_bytes() * self.rows as u64
    }

    /// Schema as (name, type) pairs.
    pub fn schema(&self) -> Vec<(String, DataType)> {
        self.columns
            .iter()
            .map(|(n, c)| (n.clone(), c.data_type()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "t",
            vec![
                ("a".into(), Column::I32(vec![1, 2, 3])),
                ("b".into(), Column::Decimal(vec![100, 200, 300])),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = t();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.col("a").get_i64(1), 2);
        assert_eq!(t.col_index("b"), Some(1));
        assert_eq!(t.col_index("z"), None);
        assert_eq!(t.row_bytes(), 4 + 8);
        assert_eq!(t.total_bytes(), 36);
        assert_eq!(t.schema()[1], ("b".to_string(), DataType::Decimal));
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        t().col("nope");
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn ragged_columns_panic() {
        Table::new(
            "bad",
            vec![
                ("a".into(), Column::I32(vec![1])),
                ("b".into(), Column::I32(vec![1, 2])),
            ],
        );
    }

    #[test]
    fn empty_table() {
        let t = Table::new("e", vec![]);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.total_bytes(), 0);
    }
}
