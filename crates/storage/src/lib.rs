//! # gpl-storage — columnar storage for the GPL reproduction
//!
//! Fixed-width, dictionary-encoded columnar tables (the layout GPU query
//! engines such as OmniDB use), the tiling component of Section 3.3, and
//! the mapping of tables into the simulator's global-memory address space
//! so that kernel scans generate realistic cache traffic.

pub mod column;
pub mod layout;
pub mod table;
pub mod tile;
pub mod types;

pub use column::{Column, DictBuilder, Dictionary};
pub use layout::TableLayout;
pub use table::Table;
pub use tile::Tiling;
pub use types::{days, dec, dec_mul, decimal_to_string, DataType, Date, DECIMAL_SCALE};
