//! Kernel-based execution (KBE) — the baseline of Section 2.2.
//!
//! Each operator expands into the conventional GPU decomposition
//! (selection = map + prefix-sum + scatter \[13\]; probes likewise compact
//! through prefix-sum + scatter), every kernel is launched *alone* on the
//! device over the whole input, and every intermediate result — flags,
//! offsets, compacted columns, probe payloads — is materialized in global
//! memory. This module is also the per-tile engine of GPL (w/o CE), which
//! runs the same kernel-at-a-time sequence per tile.

use crate::exec::ExecContext;
use crate::ht::{GroupStore, SimHashTable};
use crate::ops::{self, apply_compute, apply_filter, apply_probe, live_slots, Chunk};
use crate::plan::{PipeOp, Stage, Terminal};
use crate::replay::{alloc_array, kernel_resources, launch, ArrayRef, ReplayKernel};
use crate::segment::SegmentIr;
use gpl_sim::mem::RegionClass;
use gpl_sim::LaunchProfile;
use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

/// Execution state threading through a stage: the functional chunk and
/// the simulated array backing each filled slot.
struct MatState {
    chunk: Chunk,
    addr: Vec<Option<ArrayRef>>,
}

/// Run one stage's kernel sequence over `range` of the driving relation:
/// each op of the stage's lowered IR nodes (in [`SegmentIr::op_order`])
/// expands into its map / prefix-sum / scatter decomposition. `build` /
/// `agg` receive the blocking terminal's output (shared across tiles in
/// GPL (w/o CE) mode).
pub(crate) fn run_stage_range(
    ctx: &mut ExecContext,
    ir: &SegmentIr,
    stage: &Stage,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    build: Option<&Rc<RefCell<SimHashTable>>>,
    agg: Option<&Rc<RefCell<GroupStore>>>,
    range: Range<usize>,
    // Per-kernel work-group counts are not tunable in KBE (each kernel is
    // individually optimized to fill the device), so none are taken here.
) -> LaunchProfile {
    let wavefront = ctx.sim.spec().wavefront_size;
    let live = live_slots(stage);
    let mut merged = LaunchProfile::default();

    // Load phase: the first kernel reads table columns directly.
    let table = ctx.db.clone();
    let t = table.table(&stage.driver);
    let layout = ctx.layout(&stage.driver).clone();
    let mut st = MatState {
        chunk: Chunk::new(stage.num_slots()),
        addr: vec![None; stage.num_slots()],
    };
    for (s, name) in stage.loads.iter().enumerate() {
        let col = t.col(name);
        let vals: Vec<i64> = range.clone().map(|r| col.get_i64(r)).collect();
        st.chunk.fill(s, vals);
        let ci = t.col_index(name).expect("load column exists");
        let scan = layout.scan(ci, range.clone());
        let width = col.data_type().width();
        st.addr[s] = Some(ArrayRef {
            base: scan.addr,
            width,
            rows: range.len(),
        });
    }
    // A count(*)-only stage loads no columns; the driving row count
    // still comes from the scan range, not the (empty) materialized
    // chunk, or the aggregate loop below would never run.
    if stage.loads.is_empty() {
        st.chunk.rows = range.len();
    }

    for i in ir.op_order() {
        let op = &stage.ops[i];
        let rows = st.chunk.rows;
        match op {
            PipeOp::Filter(pred) => {
                let mut in_slots = Vec::new();
                pred.slots(&mut in_slots);
                in_slots.dedup();
                let flags = alloc_array(ctx, rows, 1, RegionClass::Scratch, "kbe.flags");
                let out = apply_filter(&st.chunk, pred);
                merged.merge(&launch(
                    ctx,
                    "k_map",
                    kernel_resources("k_map", wavefront),
                    ReplayKernel::new(rows, wavefront, ops::INST_EXPANSION * (pred.insts() + 1), 0)
                        .reads(
                            in_slots
                                .iter()
                                .map(|&s| st.addr[s].expect("filled"))
                                .collect(),
                        )
                        .writes(vec![flags])
                        .io_rows(rows as u64, out.rows as u64),
                ));
                scatter_phase(
                    ctx,
                    &mut st,
                    out,
                    &live[i + 1],
                    flags,
                    &mut merged,
                    wavefront,
                );
            }
            PipeOp::Probe { ht, key, payloads } => {
                let table = hts[*ht].as_ref().expect("probed table built").clone();
                let table = table.borrow();
                let mut extra = Vec::with_capacity(rows);
                let out = apply_probe(&st.chunk, &table, *key, payloads, &mut extra);
                let flags = alloc_array(ctx, rows, 1, RegionClass::Scratch, "kbe.match");
                // Payload temporaries at input positions.
                let mut writes = vec![flags];
                for &p in payloads {
                    let tmp = alloc_array(ctx, rows, 8, RegionClass::Scratch, "kbe.payload");
                    st.addr[p] = Some(tmp);
                    writes.push(tmp);
                }
                merged.merge(&launch(
                    ctx,
                    "k_hash_probe",
                    kernel_resources("k_hash_probe", wavefront),
                    ReplayKernel::new(
                        rows,
                        wavefront,
                        ops::op_compute_insts(op),
                        ops::op_mem_insts(op),
                    )
                    .reads(vec![st.addr[*key].expect("key filled")])
                    .writes(writes)
                    .extra(extra, 1)
                    .io_rows(rows as u64, out.rows as u64),
                ));
                scatter_phase(
                    ctx,
                    &mut st,
                    out,
                    &live[i + 1],
                    flags,
                    &mut merged,
                    wavefront,
                );
            }
            PipeOp::Compute { expr, out } => {
                let mut in_slots = Vec::new();
                expr.slots(&mut in_slots);
                in_slots.dedup();
                let arr = alloc_array(ctx, rows, 8, RegionClass::Intermediate, "kbe.compute");
                merged.merge(&launch(
                    ctx,
                    "k_map",
                    kernel_resources("k_map", wavefront),
                    ReplayKernel::new(rows, wavefront, ops::INST_EXPANSION * (expr.insts() + 1), 0)
                        .reads(
                            in_slots
                                .iter()
                                .map(|&s| st.addr[s].expect("filled"))
                                .collect(),
                        )
                        .writes(vec![arr])
                        .io_rows(rows as u64, rows as u64),
                ));
                apply_compute(&mut st.chunk, expr, *out);
                st.addr[*out] = Some(arr);
            }
        }
    }

    // Terminal.
    let rows = st.chunk.rows;
    match &stage.terminal {
        Terminal::HashBuild { key, payloads, .. } => {
            let target = build.expect("hash-build stage needs a target table");
            let mut t = target.borrow_mut();
            let mut extra = Vec::with_capacity(rows);
            for r in 0..rows {
                let pay: Vec<i64> = payloads.iter().map(|&p| st.chunk.cols[p][r]).collect();
                t.insert(st.chunk.cols[*key][r], &pay, &mut extra);
            }
            let mut reads = vec![st.addr[*key].expect("key filled")];
            reads.extend(
                payloads
                    .iter()
                    .map(|&p| st.addr[p].expect("payload filled")),
            );
            drop(t);
            merged.merge(&launch(
                ctx,
                "k_hash_build",
                kernel_resources("k_hash_build", wavefront),
                ReplayKernel::new(
                    rows,
                    wavefront,
                    ops::terminal_compute_insts(&stage.terminal),
                    ops::terminal_mem_insts(&stage.terminal),
                )
                .reads(reads)
                .extra(extra, 1)
                .io_rows(rows as u64, 0),
            ));
        }
        Terminal::Aggregate { groups, aggs } => {
            let store = agg.expect("aggregate stage needs a store");
            let mut s = store.borrow_mut();
            let mut extra = Vec::with_capacity(rows * 2);
            for r in 0..rows {
                let keys: Vec<i64> = groups.iter().map(|&g| st.chunk.cols[g][r]).collect();
                let values: Vec<i64> = aggs
                    .iter()
                    .map(|a| a.expr.eval(&st.chunk.cols, r))
                    .collect();
                s.update(&keys, &values, &mut extra);
            }
            drop(s);
            let mut in_slots: Vec<usize> = groups.clone();
            for a in aggs {
                a.expr.slots(&mut in_slots);
            }
            in_slots.sort_unstable();
            in_slots.dedup();
            merged.merge(&launch(
                ctx,
                "k_aggregate",
                kernel_resources("k_aggregate", wavefront),
                ReplayKernel::new(
                    rows,
                    wavefront,
                    ops::terminal_compute_insts(&stage.terminal),
                    ops::terminal_mem_insts(&stage.terminal),
                )
                .reads(
                    in_slots
                        .iter()
                        .map(|&s| st.addr[s].expect("filled"))
                        .collect(),
                )
                .extra(extra, 2)
                .io_rows(rows as u64, 0),
            ));
        }
    }
    merged
}

/// The prefix-sum + scatter pair that compacts survivors after a map or
/// probe kernel, materializing the live slots into a fresh intermediate.
fn scatter_phase(
    ctx: &mut ExecContext,
    st: &mut MatState,
    out: Chunk,
    live_out: &[usize],
    flags: ArrayRef,
    merged: &mut LaunchProfile,
    wavefront: u32,
) {
    let rows = st.chunk.rows;
    let offsets = alloc_array(ctx, rows, 4, RegionClass::Scratch, "kbe.offsets");
    merged.merge(&launch(
        ctx,
        "k_prefix_sum",
        kernel_resources("k_prefix_sum", wavefront),
        ReplayKernel::new(rows, wavefront, 2 * ops::INST_EXPANSION, 0)
            .reads(vec![flags])
            .writes(vec![offsets])
            .io_rows(rows as u64, rows as u64),
    ));

    let out_rows = out.rows;
    let mut reads = vec![offsets];
    let mut writes = Vec::with_capacity(live_out.len());
    for &s in live_out {
        // The scatter *gathers*: it reads input values only at surviving
        // positions (the offsets array tells it where), so its read
        // volume scales with the survivors, not the input.
        let src = st.addr[s].expect("live slot must be materialized");
        reads.push(ArrayRef {
            base: src.base,
            width: src.width,
            rows: out_rows,
        });
        let dst = alloc_array(ctx, out_rows, 8, RegionClass::Intermediate, "kbe.compact");
        writes.push(dst);
    }
    merged.merge(&launch(
        ctx,
        "k_scatter",
        kernel_resources("k_scatter", wavefront),
        ReplayKernel::new(
            rows,
            wavefront,
            ops::INST_EXPANSION * (2 + live_out.len() as u64),
            live_out.len() as u64,
        )
        .reads(reads)
        .writes(writes.clone())
        .io_rows(rows as u64, out_rows as u64),
    ));
    // The compacted arrays replace the slot backing; dead slots drop.
    let mut addr = vec![None; st.addr.len()];
    for (dst, &s) in writes.iter().zip(live_out) {
        addr[s] = Some(*dst);
    }
    st.addr = addr;
    st.chunk = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecContext;
    use crate::plan::{listing1_plan, q14_plan};
    use gpl_sim::amd_a10;
    use gpl_storage::days;
    use gpl_tpch::{Q14Params, TpchDb};

    fn ctx() -> ExecContext {
        ExecContext::new(amd_a10(), TpchDb::at_scale(0.002))
    }

    fn ir_for(ctx: &ExecContext, stage: &Stage) -> SegmentIr {
        SegmentIr::lower(
            stage,
            ctx.db.table(&stage.driver),
            ctx.sim.spec().wavefront_size,
        )
    }

    #[test]
    fn listing1_stage_aggregates_correctly() {
        let mut ctx = ctx();
        let cutoff = days("1998-11-01");
        let plan = listing1_plan(cutoff);
        let stage = &plan.stages[0];
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            1,
            "t",
        )));
        let rows = ctx.db.lineitem.rows();
        let ir = ir_for(&ctx, stage);
        let p = run_stage_range(&mut ctx, &ir, stage, &[], None, Some(&agg), 0..rows);
        let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
        let want = gpl_tpch::reference::listing1(&ctx.db, cutoff);
        assert_eq!(got, want.rows);
        assert!(p.elapsed_cycles > 0);
        // KBE materializes intermediates.
        assert!(p.intermediate_bytes() > 0);
        assert!(p.intermediate_footprint() > 0);
    }

    #[test]
    fn q14_build_and_probe_match_reference() {
        let mut ctx = ctx();
        let params = Q14Params::default();
        let plan = q14_plan(&ctx.db, params);
        let ht = Rc::new(RefCell::new(SimHashTable::new(
            &mut ctx.sim.mem,
            ctx.db.part.rows(),
            1,
            "part",
        )));
        let rows0 = ctx.db.part.rows();
        let ir0 = ir_for(&ctx, &plan.stages[0]);
        run_stage_range(
            &mut ctx,
            &ir0,
            &plan.stages[0],
            &[],
            Some(&ht),
            None,
            0..rows0,
        );
        assert_eq!(ht.borrow().len(), ctx.db.part.rows());

        let hts = vec![Some(ht)];
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            2,
            "t",
        )));
        let rows1 = ctx.db.lineitem.rows();
        let ir1 = ir_for(&ctx, &plan.stages[1]);
        run_stage_range(
            &mut ctx,
            &ir1,
            &plan.stages[1],
            &hts,
            None,
            Some(&agg),
            0..rows1,
        );
        let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
        let want = gpl_tpch::reference::q14(&ctx.db, params);
        assert_eq!(got, want.rows);
    }

    #[test]
    fn tiled_ranges_accumulate_like_one_range() {
        let mut ctx = ctx();
        let cutoff = days("1998-11-01");
        let plan = listing1_plan(cutoff);
        let stage = &plan.stages[0];
        let rows = ctx.db.lineitem.rows();
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            1,
            "t",
        )));
        let mid = rows / 3;
        let ir = ir_for(&ctx, stage);
        run_stage_range(&mut ctx, &ir, stage, &[], None, Some(&agg), 0..mid);
        run_stage_range(&mut ctx, &ir, stage, &[], None, Some(&agg), mid..rows);
        let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
        let want = gpl_tpch::reference::listing1(&ctx.db, cutoff);
        assert_eq!(got, want.rows);
    }

    #[test]
    fn empty_range_still_launches() {
        let mut ctx = ctx();
        let plan = listing1_plan(0);
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            1,
            "t",
        )));
        let ir = ir_for(&ctx, &plan.stages[0]);
        let p = run_stage_range(&mut ctx, &ir, &plan.stages[0], &[], None, Some(&agg), 0..0);
        assert!(p.elapsed_cycles > 0, "launch overhead must be charged");
        assert_eq!(
            Rc::try_unwrap(agg).unwrap().into_inner().into_rows(),
            vec![vec![0]]
        );
    }
}
