//! The recovery stack: segment retries, deterministic backoff, and
//! graceful degradation.
//!
//! GPL's pipelined segments fail as a unit — the fault plane
//! (`gpl_sim::fault`) guarantees a faulted launch had no functional side
//! effects — so the natural retry granularity is the *segment* (stage).
//! When a stage draws a fault, the executor re-runs it on the same mode
//! up to [`RecoveryPolicy::max_retries`] times, separated by a
//! deterministic exponential backoff charged to the simulated clock.
//! When a mode's budget is exhausted, execution *degrades*: GPL falls
//! back to GPL-without-CE, then to KBE — the existing engines reused as
//! degraded modes, exactly the GPU→CPU fallback ladder production
//! engines run (PAPERS.md: "Accelerating Presto with GPUs"). As a last
//! resort the stage runs once more on KBE with fault injection
//! *disarmed* (the hardened path — the analogue of falling back to the
//! CPU, outside the faulty device's blast radius), so recovery
//! terminates even at fault probability 1. Faults cost cycles; they
//! never change results.

use crate::exec::ExecMode;
use gpl_sim::FaultRecord;

/// Retry/fallback knobs, all in deterministic units (attempt counts and
/// simulated cycles — never wall clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Re-attempts per mode after the first try (0 = fail straight to
    /// the next mode in the ladder).
    pub max_retries: u32,
    /// Backoff before retry `i` (1-based within a mode):
    /// `base * factor^(i-1)`, capped. Charged to the simulated clock.
    pub backoff_base_cycles: u64,
    pub backoff_factor: u32,
    pub backoff_cap_cycles: u64,
    /// Degrade through the mode ladder (GPL → GPL w/o CE → KBE) and run
    /// the disarmed last-resort KBE attempt. With `false`, exhausting
    /// the primary mode's retries surfaces the last fault as an error.
    pub fallback: bool,
    /// Slice-checkpoint resume (DESIGN.md §11): with `k >= 2`, a
    /// blocking stage executes as `k` row-range slices, each verified by
    /// a content checksum on completion; a faulted slice retries from
    /// the last verified checkpoint instead of re-running the stage
    /// from row 0. `0` (the default) keeps the PR 4 whole-stage retry.
    pub checkpoint_slices: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base_cycles: 8_192,
            backoff_factor: 2,
            backoff_cap_cycles: 1 << 20,
            fallback: true,
            checkpoint_slices: 0,
        }
    }
}

impl RecoveryPolicy {
    pub fn with_retries(max_retries: u32) -> Self {
        RecoveryPolicy {
            max_retries,
            ..Default::default()
        }
    }

    pub fn no_fallback(mut self) -> Self {
        self.fallback = false;
        self
    }

    /// Enable slice-checkpoint resume with `k` slices per stage.
    pub fn with_checkpoints(mut self, k: u32) -> Self {
        self.checkpoint_slices = k;
        self
    }

    /// Backoff delay before the `attempt`-th retry (1-based) of a mode.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let mut d = self.backoff_base_cycles;
        for _ in 1..attempt {
            d = d.saturating_mul(self.backoff_factor as u64);
            if d >= self.backoff_cap_cycles {
                break;
            }
        }
        d.min(self.backoff_cap_cycles)
    }

    /// The degradation ladder starting at `mode`. Without `fallback`,
    /// only the primary mode is tried.
    pub fn ladder(&self, mode: ExecMode) -> Vec<ExecMode> {
        if !self.fallback {
            return vec![mode];
        }
        match mode {
            ExecMode::GplPipelined => vec![
                ExecMode::GplPipelined,
                ExecMode::Gpl,
                ExecMode::GplNoCe,
                ExecMode::Kbe,
            ],
            ExecMode::Gpl => vec![ExecMode::Gpl, ExecMode::GplNoCe, ExecMode::Kbe],
            ExecMode::GplNoCe => vec![ExecMode::GplNoCe, ExecMode::Kbe],
            ExecMode::Kbe => vec![ExecMode::Kbe],
        }
    }
}

/// What recovery did for one query: all zeros / empty on a fault-free
/// run. Aggregated into the serving layer's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Same-mode re-attempts across all stages.
    pub retries: u64,
    /// Mode transitions taken (degradations, including the disarmed
    /// last-resort attempt).
    pub fallbacks: u64,
    /// Simulated cycles spent in backoff delays.
    pub backoff_cycles: u64,
    /// Simulated cycles lost to failed attempts + backoff (included in
    /// the query's total `cycles`).
    pub wasted_cycles: u64,
    /// Every fault the query survived (or died on), in order.
    pub faults: Vec<FaultRecord>,
    /// The most degraded mode any stage ended up executing on, when
    /// different from the requested mode.
    pub degraded_to: Option<ExecMode>,
    /// Speculative backup attempts launched (straggler hedging).
    pub hedges: u64,
    /// Hedges whose backup finished (modeled) before the straggling
    /// primary and won the race.
    pub hedge_wins: u64,
    /// Checkpoint slices whose completed work was *kept* across a fault
    /// (summed over every fault that found verified slices to resume
    /// from).
    pub resumed_slices: u64,
    /// Simulated cycles the kept slices represent — work a whole-stage
    /// retry would have re-run from row 0.
    pub checkpoint_saved_cycles: u64,
}

impl RecoveryStats {
    /// Whether anything at all went wrong (and was absorbed).
    pub fn eventful(&self) -> bool {
        !self.faults.is_empty() || self.retries > 0 || self.fallbacks > 0 || self.hedges > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RecoveryPolicy {
            max_retries: 10,
            backoff_base_cycles: 100,
            backoff_factor: 2,
            backoff_cap_cycles: 500,
            fallback: true,
            checkpoint_slices: 0,
        };
        assert_eq!(p.backoff_for(1), 100);
        assert_eq!(p.backoff_for(2), 200);
        assert_eq!(p.backoff_for(3), 400);
        assert_eq!(p.backoff_for(4), 500, "capped");
        assert_eq!(p.backoff_for(30), 500, "no overflow");
    }

    #[test]
    fn ladder_degrades_toward_kbe() {
        let p = RecoveryPolicy::default();
        assert_eq!(
            p.ladder(ExecMode::GplPipelined),
            vec![
                ExecMode::GplPipelined,
                ExecMode::Gpl,
                ExecMode::GplNoCe,
                ExecMode::Kbe
            ]
        );
        assert_eq!(
            p.ladder(ExecMode::Gpl),
            vec![ExecMode::Gpl, ExecMode::GplNoCe, ExecMode::Kbe]
        );
        assert_eq!(
            p.ladder(ExecMode::GplNoCe),
            vec![ExecMode::GplNoCe, ExecMode::Kbe]
        );
        assert_eq!(p.ladder(ExecMode::Kbe), vec![ExecMode::Kbe]);
        assert_eq!(
            p.clone().no_fallback().ladder(ExecMode::Gpl),
            vec![ExecMode::Gpl]
        );
    }
}
