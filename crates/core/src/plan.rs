//! Physical query plans.
//!
//! A [`QueryPlan`] is a sequence of [`Stage`]s, each a *pipeline* over a
//! driving relation: loads, filters, hash probes and computed columns,
//! ending in a blocking [`Terminal`] (hash build, aggregation, or sort).
//! This is exactly the paper's segmented plan (Section 3.1): traversing
//! the operator tree in post-order yields the kernel sequence, which is
//! cut into segments at blocking kernels \[23\]; each of our stages is one
//! such segment, and the executors decide how its kernels run — one at a
//! time with materialized intermediates (KBE), or concurrently over tiles
//! connected by channels (GPL).
//!
//! Every hash join in the TPC-H workload is a key–foreign-key join, so
//! probes produce at most one match per row. Composite keys (Q9's
//! partsupp) are composed arithmetically before probing.

use crate::expr::{Expr, Pred, Slot};
use crate::ht::AggKind;
use gpl_tpch::{OrderBy, Q14Params, QueryId, TpchDb};
use std::fmt::Write as _;

/// Identifies a hash table within a plan.
pub type HtId = usize;

/// A non-blocking pipeline operator.
#[derive(Debug, Clone)]
pub enum PipeOp {
    /// Evaluate a predicate and drop non-matching rows (`k_map`).
    Filter(Pred),
    /// Probe a hash table with the key in `key`; on a match append the
    /// payload columns into `payloads` slots, on a miss drop the row
    /// (`k_hash_probe`). `payloads` may be empty (semi-join).
    Probe {
        ht: HtId,
        key: Slot,
        payloads: Vec<Slot>,
    },
    /// Compute an expression into a new slot (`k_map`).
    Compute { expr: Expr, out: Slot },
}

/// One aggregate function over an expression.
#[derive(Debug, Clone)]
pub struct Agg {
    pub kind: AggKind,
    pub expr: Expr,
}

impl Agg {
    pub fn sum(expr: Expr) -> Agg {
        Agg {
            kind: AggKind::Sum,
            expr,
        }
    }
    /// `count(*)` — the expression is a placeholder and never read.
    pub fn count() -> Agg {
        Agg {
            kind: AggKind::Count,
            expr: Expr::Const(1),
        }
    }
    pub fn min(expr: Expr) -> Agg {
        Agg {
            kind: AggKind::Min,
            expr,
        }
    }
    pub fn max(expr: Expr) -> Agg {
        Agg {
            kind: AggKind::Max,
            expr,
        }
    }
}

/// The blocking operator that ends a stage.
#[derive(Debug, Clone)]
pub enum Terminal {
    /// Build hash table `ht` from `key` with `payloads` (`k_hash_build`;
    /// blocking: a barrier is required before the table is probed).
    HashBuild {
        ht: HtId,
        key: Slot,
        payloads: Vec<Slot>,
    },
    /// Hash aggregation grouped by `groups` (empty groups = scalar
    /// aggregate). Non-blocking packet-at-a-time updates in GPL
    /// (`k_reduce*`), but its *output* is a materialization point.
    Aggregate { groups: Vec<Slot>, aggs: Vec<Agg> },
}

impl Terminal {
    /// All-SUM aggregation (the paper's workload only needs sums).
    pub fn sum_aggregate(groups: Vec<Slot>, sums: Vec<Expr>) -> Terminal {
        Terminal::Aggregate {
            groups,
            aggs: sums.into_iter().map(Agg::sum).collect(),
        }
    }
}

/// One pipeline over a driving relation.
#[derive(Debug, Clone)]
pub struct Stage {
    pub name: String,
    /// Driving table (scanned in tiles by GPL, whole by KBE).
    pub driver: String,
    /// Columns of the driver loaded into slots `0..loads.len()`.
    pub loads: Vec<String>,
    pub ops: Vec<PipeOp>,
    pub terminal: Terminal,
}

impl Stage {
    /// Total number of slots the stage's row context needs.
    pub fn num_slots(&self) -> usize {
        let mut max = self.loads.len();
        let mut track = |s: &[Slot]| {
            for &x in s {
                max = max.max(x + 1);
            }
        };
        for op in &self.ops {
            match op {
                PipeOp::Filter(p) => {
                    let mut v = Vec::new();
                    p.slots(&mut v);
                    track(&v);
                }
                PipeOp::Probe { key, payloads, .. } => {
                    track(&[*key]);
                    track(payloads);
                }
                PipeOp::Compute { expr, out } => {
                    let mut v = Vec::new();
                    expr.slots(&mut v);
                    track(&v);
                    track(&[*out]);
                }
            }
        }
        match &self.terminal {
            Terminal::HashBuild { key, payloads, .. } => {
                track(&[*key]);
                track(payloads);
            }
            Terminal::Aggregate { groups, aggs } => {
                track(groups);
                for a in aggs {
                    let mut v = Vec::new();
                    a.expr.slots(&mut v);
                    track(&v);
                }
            }
        }
        max
    }

    /// Verify slots are filled before use; panics with a diagnostic
    /// otherwise. Returns the filled-slot count for convenience.
    pub fn validate(&self) -> usize {
        let mut filled = vec![false; self.num_slots()];
        for f in filled.iter_mut().take(self.loads.len()) {
            *f = true;
        }
        let check = |filled: &[bool], slots: &[Slot], what: &str| {
            for &s in slots {
                assert!(
                    filled[s],
                    "stage {}: {what} reads unfilled slot {s}",
                    self.name
                );
            }
        };
        for op in &self.ops {
            match op {
                PipeOp::Filter(p) => {
                    let mut v = Vec::new();
                    p.slots(&mut v);
                    check(&filled, &v, "filter");
                }
                PipeOp::Probe { key, payloads, .. } => {
                    check(&filled, &[*key], "probe key");
                    for &p in payloads {
                        assert!(
                            !filled[p],
                            "stage {}: probe payload overwrites filled slot {p}",
                            self.name
                        );
                        filled[p] = true;
                    }
                }
                PipeOp::Compute { expr, out } => {
                    let mut v = Vec::new();
                    expr.slots(&mut v);
                    check(&filled, &v, "compute");
                    filled[*out] = true;
                }
            }
        }
        match &self.terminal {
            Terminal::HashBuild { key, payloads, .. } => {
                check(&filled, &[*key], "build key");
                check(&filled, payloads, "build payload");
            }
            Terminal::Aggregate { groups, aggs } => {
                check(&filled, groups, "group key");
                for a in aggs {
                    let mut v = Vec::new();
                    a.expr.slots(&mut v);
                    check(&filled, &v, "aggregate input");
                }
            }
        }
        filled.iter().filter(|&&f| f).count()
    }

    /// GPL kernel fusion (Section 3.2) — delegates to the canonical
    /// implementation in [`crate::segment::fusion_groups`], which also
    /// drives [`crate::segment::SegmentIr::lower`]. Returns the op
    /// indices of each kernel: element 0 is the leaf kernel's ops,
    /// subsequent elements each start with a probe. The blocking
    /// terminal is an additional kernel not listed here.
    pub fn gpl_fusion(&self) -> Vec<Vec<usize>> {
        crate::segment::fusion_groups(self)
    }

    /// Kernel names of this stage under GPL decomposition (Figure 7c):
    /// the fused leaf map kernel, one kernel per probe (with fused
    /// trailing maps), and the terminal kernel. Identical to the node
    /// names of the stage's lowered [`crate::segment::SegmentIr`].
    pub fn gpl_kernel_names(&self) -> Vec<String> {
        crate::segment::gpl_kernel_names(self)
    }

    /// Kernel names under KBE decomposition: selections and probes expand
    /// to map + prefix-sum + scatter (Figure 7b, the GDB selection \[13\]).
    pub fn kbe_kernel_names(&self) -> Vec<String> {
        crate::segment::kbe_kernel_names(self)
    }
}

/// A full query plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub query: QueryId,
    /// Stages in execution order; hash-build stages precede the stages
    /// probing their tables.
    pub stages: Vec<Stage>,
    /// Number of hash tables the plan builds.
    pub num_hts: usize,
    /// Output column names (matching the reference layout).
    pub output_columns: Vec<String>,
    /// Final ORDER BY over the aggregate output.
    pub order_by: Vec<OrderBy>,
    /// Optional LIMIT applied after the sort (top-k queries like Q3).
    pub limit: Option<usize>,
    /// Optional output projection: indexes into the internal
    /// `group keys ++ aggregates` row layout, applied last. `order_by`
    /// always refers to the *internal* layout. `None` keeps the internal
    /// layout (with `output_columns` matching it).
    pub projection: Option<Vec<usize>>,
    /// Per-output-column rendering hints (aligned with `output_columns`).
    pub display: Option<Vec<DisplayHint>>,
}

impl QueryPlan {
    /// Validate every stage (slot discipline, hash-table wiring).
    pub fn validate(&self) {
        let mut built = vec![false; self.num_hts];
        for s in &self.stages {
            s.validate();
            for op in &s.ops {
                if let PipeOp::Probe { ht, .. } = op {
                    assert!(built[*ht], "stage {} probes unbuilt ht{}", s.name, ht);
                }
            }
            if let Terminal::HashBuild { ht, .. } = &s.terminal {
                assert!(!built[*ht], "ht{} built twice", ht);
                built[*ht] = true;
            }
        }
    }

    /// Render the plan comparison of Figure 7: the operator pipeline and
    /// its kernel decomposition under KBE and under GPL.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan {} ({} stages):",
            self.query.name(),
            self.stages.len()
        );
        for (i, st) in self.stages.iter().enumerate() {
            let _ = writeln!(s, " segment S{i}: {} over {}", st.name, st.driver);
            let _ = writeln!(s, "   KBE kernels: {}", st.kbe_kernel_names().join(" -> "));
            let _ = writeln!(s, "   GPL kernels: {}", st.gpl_kernel_names().join(" => "));
        }
        s
    }
}

/// How to render an output column (the engine computes encoded i64s;
/// fronts like `gplsh` use these hints to decode them for display).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisplayHint {
    Plain,
    /// Fixed-point cents.
    Decimal,
    /// Days since the epoch.
    Date,
    /// Dictionary code of `table.column`.
    Dict {
        table: String,
        column: String,
    },
}

/// Multiplier for Q9's composite partsupp key: `pk * COMP + sk`. Big
/// enough for any supplier cardinality this repository generates.
pub const COMPOSITE_KEY_MUL: i64 = 1 << 24;

/// Build the plan for any workload with its default parameters.
pub fn plan_for(db: &TpchDb, q: QueryId) -> QueryPlan {
    match q {
        QueryId::Q1 => q1_plan(db),
        QueryId::Q3 => q3_plan(db),
        QueryId::Q6 => q6_plan(db),
        QueryId::Q5 => q5_plan(db),
        QueryId::Q7 => q7_plan(db),
        QueryId::Q8 => q8_plan(db),
        QueryId::Q9 => q9_plan(db),
        QueryId::Q10 => q10_plan(db),
        QueryId::Q12 => q12_plan(db),
        QueryId::Q14 => q14_plan(db, Q14Params::default()),
        QueryId::Listing1 => listing1_plan(gpl_tpch::queries::literals::listing1_cutoff()),
        QueryId::Adhoc => panic!("ad-hoc plans are compiled from SQL, not built here"),
    }
}

/// Nations belonging to a region, as an `IN` list for early pruning.
fn nations_of_region(db: &TpchDb, region: &str) -> Vec<i64> {
    let code = db.region_code(region);
    db.nation_region()
        .iter()
        .enumerate()
        .filter(|(_, &r)| r == code)
        .map(|(n, _)| n as i64)
        .collect()
}

/// `l_extendedprice * (1 - l_discount)` over slots (ext, disc).
fn volume_expr(ext: Slot, disc: Slot) -> Expr {
    Expr::slot(ext).dec_mul(Expr::lit(100).sub(Expr::slot(disc)))
}

fn build_stage(
    name: &str,
    driver: &str,
    loads: &[&str],
    filter: Option<Pred>,
    ht: HtId,
    key: Slot,
    payloads: Vec<Slot>,
) -> Stage {
    let mut ops = Vec::new();
    if let Some(p) = filter {
        ops.push(PipeOp::Filter(p));
    }
    Stage {
        name: name.to_string(),
        driver: driver.to_string(),
        loads: loads.iter().map(|s| s.to_string()).collect(),
        ops,
        terminal: Terminal::HashBuild { ht, key, payloads },
    }
}

/// Q5: ASIA revenue by nation, customer and supplier co-located.
pub fn q5_plan(db: &TpchDb) -> QueryPlan {
    let (olo, ohi) = gpl_tpch::queries::literals::q5_order_window();
    let asia = nations_of_region(db, "ASIA");
    let stages = vec![
        build_stage(
            "build_orders",
            "orders",
            &["o_orderkey", "o_custkey", "o_orderdate"],
            Some(Pred::between_half_open(
                Expr::slot(2),
                olo as i64,
                ohi as i64,
            )),
            0,
            0,
            vec![1],
        ),
        build_stage(
            "build_customer",
            "customer",
            &["c_custkey", "c_nationkey"],
            None,
            1,
            0,
            vec![1],
        ),
        build_stage(
            "build_supplier",
            "supplier",
            &["s_suppkey", "s_nationkey"],
            Some(Pred::InList(Expr::slot(1), asia)),
            2,
            0,
            vec![1],
        ),
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"]
                .map(str::to_string)
                .to_vec(),
            ops: vec![
                PipeOp::Probe {
                    ht: 0,
                    key: 0,
                    payloads: vec![4],
                }, // o_custkey
                PipeOp::Probe {
                    ht: 2,
                    key: 1,
                    payloads: vec![5],
                }, // s_nationkey (ASIA only)
                PipeOp::Probe {
                    ht: 1,
                    key: 4,
                    payloads: vec![6],
                }, // c_nationkey
                PipeOp::Filter(Pred::cmp(
                    crate::expr::CmpOp::Eq,
                    Expr::slot(5),
                    Expr::slot(6),
                )),
                PipeOp::Compute {
                    expr: volume_expr(2, 3),
                    out: 7,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![5], vec![Expr::slot(7)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q5,
        stages,
        num_hts: 3,
        output_columns: vec!["n_name".into(), "revenue".into()],
        order_by: gpl_tpch::order_spec(QueryId::Q5),
        limit: None,
        projection: None,
        display: None,
    }
}

/// Q7: France↔Germany shipping volume by year.
pub fn q7_plan(db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::Eq;
    let (slo, shi) = gpl_tpch::queries::literals::q7_ship_window();
    let fr = db.nation_code("FRANCE");
    let de = db.nation_code("GERMANY");
    let pair = |a: Slot, an: i64, b: Slot, bn: i64| {
        Pred::And(vec![
            Pred::cmp(Eq, Expr::slot(a), Expr::lit(an)),
            Pred::cmp(Eq, Expr::slot(b), Expr::lit(bn)),
        ])
    };
    let stages = vec![
        build_stage(
            "build_orders",
            "orders",
            &["o_orderkey", "o_custkey"],
            None,
            0,
            0,
            vec![1],
        ),
        build_stage(
            "build_customer",
            "customer",
            &["c_custkey", "c_nationkey"],
            Some(Pred::InList(Expr::slot(1), vec![fr, de])),
            1,
            0,
            vec![1],
        ),
        build_stage(
            "build_supplier",
            "supplier",
            &["s_suppkey", "s_nationkey"],
            Some(Pred::InList(Expr::slot(1), vec![fr, de])),
            2,
            0,
            vec![1],
        ),
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: [
                "l_orderkey",
                "l_suppkey",
                "l_shipdate",
                "l_extendedprice",
                "l_discount",
            ]
            .map(str::to_string)
            .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::between_inclusive(
                    Expr::slot(2),
                    slo as i64,
                    shi as i64,
                )),
                PipeOp::Probe {
                    ht: 2,
                    key: 1,
                    payloads: vec![5],
                }, // s_nationkey
                PipeOp::Probe {
                    ht: 0,
                    key: 0,
                    payloads: vec![6],
                }, // o_custkey
                PipeOp::Probe {
                    ht: 1,
                    key: 6,
                    payloads: vec![7],
                }, // c_nationkey
                PipeOp::Filter(Pred::Or(
                    Box::new(pair(5, fr, 7, de)),
                    Box::new(pair(5, de, 7, fr)),
                )),
                PipeOp::Compute {
                    expr: Expr::slot(2).year(),
                    out: 8,
                },
                PipeOp::Compute {
                    expr: volume_expr(3, 4),
                    out: 9,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![5, 7, 8], vec![Expr::slot(9)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q7,
        stages,
        num_hts: 3,
        output_columns: ["supp_nation", "cust_nation", "l_year", "revenue"]
            .map(str::to_string)
            .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q7),
        limit: None,
        projection: None,
        display: None,
    }
}

/// Q8: Brazil's market share of ECONOMY ANODIZED STEEL in AMERICA.
pub fn q8_plan(db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::Eq;
    let (olo, ohi) = gpl_tpch::queries::literals::q8_order_window();
    let steel = db.part_type_code("ECONOMY ANODIZED STEEL");
    let brazil = db.nation_code("BRAZIL");
    let america = nations_of_region(db, "AMERICA");
    let stages = vec![
        build_stage(
            "build_part",
            "part",
            &["p_partkey", "p_type"],
            Some(Pred::cmp(Eq, Expr::slot(1), Expr::lit(steel))),
            0,
            0,
            vec![],
        ),
        build_stage(
            "build_orders",
            "orders",
            &["o_orderkey", "o_custkey", "o_orderdate"],
            Some(Pred::between_inclusive(
                Expr::slot(2),
                olo as i64,
                ohi as i64,
            )),
            1,
            0,
            vec![1, 2],
        ),
        build_stage(
            "build_customer",
            "customer",
            &["c_custkey", "c_nationkey"],
            Some(Pred::InList(Expr::slot(1), america)),
            2,
            0,
            vec![],
        ),
        build_stage(
            "build_supplier",
            "supplier",
            &["s_suppkey", "s_nationkey"],
            None,
            3,
            0,
            vec![1],
        ),
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: [
                "l_partkey",
                "l_orderkey",
                "l_suppkey",
                "l_extendedprice",
                "l_discount",
            ]
            .map(str::to_string)
            .to_vec(),
            ops: vec![
                PipeOp::Probe {
                    ht: 0,
                    key: 0,
                    payloads: vec![],
                }, // steel parts only
                PipeOp::Probe {
                    ht: 1,
                    key: 1,
                    payloads: vec![5, 6],
                }, // o_custkey, o_orderdate
                PipeOp::Probe {
                    ht: 2,
                    key: 5,
                    payloads: vec![],
                }, // AMERICA customers
                PipeOp::Probe {
                    ht: 3,
                    key: 2,
                    payloads: vec![7],
                }, // s_nationkey
                PipeOp::Compute {
                    expr: Expr::slot(6).year(),
                    out: 8,
                },
                PipeOp::Compute {
                    expr: volume_expr(3, 4),
                    out: 9,
                },
                PipeOp::Compute {
                    expr: Expr::Case(
                        Box::new(Pred::cmp(Eq, Expr::slot(7), Expr::lit(brazil))),
                        Box::new(Expr::slot(9)),
                        Box::new(Expr::lit(0)),
                    ),
                    out: 10,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![8], vec![Expr::slot(10), Expr::slot(9)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q8,
        stages,
        num_hts: 4,
        output_columns: ["o_year", "brazil_volume", "total_volume"]
            .map(str::to_string)
            .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q8),
        limit: None,
        projection: None,
        display: None,
    }
}

/// Q9 (Appendix B variant): profit by nation and year, `p_partkey < 1000`.
pub fn q9_plan(_db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::Lt;
    let bound = gpl_tpch::queries::literals::Q9_PARTKEY_BOUND;
    let stages = vec![
        build_stage(
            "build_part",
            "part",
            &["p_partkey"],
            Some(Pred::cmp(Lt, Expr::slot(0), Expr::lit(bound))),
            0,
            0,
            vec![],
        ),
        Stage {
            name: "build_partsupp".to_string(),
            driver: "partsupp".to_string(),
            loads: ["ps_partkey", "ps_suppkey", "ps_supplycost"]
                .map(str::to_string)
                .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::cmp(Lt, Expr::slot(0), Expr::lit(bound))),
                PipeOp::Compute {
                    expr: Expr::slot(0)
                        .mul(Expr::lit(COMPOSITE_KEY_MUL))
                        .add(Expr::slot(1)),
                    out: 3,
                },
            ],
            terminal: Terminal::HashBuild {
                ht: 1,
                key: 3,
                payloads: vec![2],
            },
        },
        build_stage(
            "build_supplier",
            "supplier",
            &["s_suppkey", "s_nationkey"],
            None,
            2,
            0,
            vec![1],
        ),
        build_stage(
            "build_orders",
            "orders",
            &["o_orderkey", "o_orderdate"],
            None,
            3,
            0,
            vec![1],
        ),
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: [
                "l_partkey",
                "l_suppkey",
                "l_orderkey",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
            ]
            .map(str::to_string)
            .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::cmp(Lt, Expr::slot(0), Expr::lit(bound))),
                PipeOp::Probe {
                    ht: 0,
                    key: 0,
                    payloads: vec![],
                },
                PipeOp::Compute {
                    expr: Expr::slot(0)
                        .mul(Expr::lit(COMPOSITE_KEY_MUL))
                        .add(Expr::slot(1)),
                    out: 6,
                },
                PipeOp::Probe {
                    ht: 1,
                    key: 6,
                    payloads: vec![7],
                }, // ps_supplycost
                PipeOp::Probe {
                    ht: 2,
                    key: 1,
                    payloads: vec![8],
                }, // s_nationkey
                PipeOp::Probe {
                    ht: 3,
                    key: 2,
                    payloads: vec![9],
                }, // o_orderdate
                PipeOp::Compute {
                    expr: Expr::slot(9).year(),
                    out: 10,
                },
                PipeOp::Compute {
                    expr: volume_expr(4, 5).sub(Expr::slot(7).dec_mul(Expr::slot(3))),
                    out: 11,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![8, 10], vec![Expr::slot(11)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q9,
        stages,
        num_hts: 4,
        output_columns: ["nation", "o_year", "sum_profit"]
            .map(str::to_string)
            .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q9),
        limit: None,
        projection: None,
        display: None,
    }
}

/// Q14 with an explicit selectivity window (Figures 3, 4, 18).
pub fn q14_plan(db: &TpchDb, params: Q14Params) -> QueryPlan {
    let promo = db.promo_type_codes();
    let stages = vec![
        build_stage(
            "build_part",
            "part",
            &["p_partkey", "p_type"],
            None,
            0,
            0,
            vec![1],
        ),
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: ["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"]
                .map(str::to_string)
                .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::between_half_open(
                    Expr::slot(1),
                    params.lo as i64,
                    params.hi as i64,
                )),
                PipeOp::Probe {
                    ht: 0,
                    key: 0,
                    payloads: vec![4],
                }, // p_type
                PipeOp::Compute {
                    expr: volume_expr(2, 3),
                    out: 5,
                },
                PipeOp::Compute {
                    expr: Expr::Case(
                        Box::new(Pred::InList(Expr::slot(4), promo)),
                        Box::new(Expr::slot(5)),
                        Box::new(Expr::lit(0)),
                    ),
                    out: 6,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![], vec![Expr::slot(6), Expr::slot(5)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q14,
        stages,
        num_hts: 1,
        output_columns: ["promo_revenue", "total_revenue"]
            .map(str::to_string)
            .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q14),
        limit: None,
        projection: None,
        display: None,
    }
}

/// Listing 1: filtered scan + scalar sum over LINEITEM (Figure 7).
pub fn listing1_plan(cutoff: i32) -> QueryPlan {
    use crate::expr::CmpOp::Le;
    let charge = volume_expr(1, 2).dec_mul(Expr::lit(100).add(Expr::slot(3)));
    let stages = vec![Stage {
        name: "scan_lineitem".to_string(),
        driver: "lineitem".to_string(),
        loads: ["l_shipdate", "l_extendedprice", "l_discount", "l_tax"]
            .map(str::to_string)
            .to_vec(),
        ops: vec![
            PipeOp::Filter(Pred::cmp(Le, Expr::slot(0), Expr::lit(cutoff as i64))),
            PipeOp::Compute {
                expr: charge,
                out: 4,
            },
        ],
        terminal: Terminal::sum_aggregate(vec![], vec![Expr::slot(4)]),
    }];
    QueryPlan {
        query: QueryId::Listing1,
        stages,
        num_hts: 0,
        output_columns: vec!["sum_charge".into()],
        order_by: vec![],
        limit: None,
        projection: None,
        display: None,
    }
}

/// Q1 (extended set): the pricing summary report — a single segment with
/// a wide multi-aggregate group-by ending in `k_groupby*`.
pub fn q1_plan(_db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::Le;
    let cutoff = gpl_tpch::queries::literals::q1_cutoff();
    // Slots: 0 flag, 1 status, 2 qty, 3 ext, 4 disc, 5 tax, 6 shipdate.
    let vol = volume_expr(3, 4);
    let charge = vol.clone().dec_mul(Expr::lit(100).add(Expr::slot(5)));
    let stages = vec![Stage {
        name: "scan_lineitem".to_string(),
        driver: "lineitem".to_string(),
        loads: [
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_shipdate",
        ]
        .map(str::to_string)
        .to_vec(),
        ops: vec![
            PipeOp::Filter(Pred::cmp(Le, Expr::slot(6), Expr::lit(cutoff as i64))),
            PipeOp::Compute { expr: vol, out: 7 },
            PipeOp::Compute {
                expr: charge,
                out: 8,
            },
        ],
        terminal: Terminal::Aggregate {
            groups: vec![0, 1],
            aggs: vec![
                Agg::sum(Expr::slot(2)),
                Agg::sum(Expr::slot(3)),
                Agg::sum(Expr::slot(7)),
                Agg::sum(Expr::slot(8)),
                Agg::sum(Expr::slot(4)),
                Agg::count(),
            ],
        },
    }];
    QueryPlan {
        query: QueryId::Q1,
        stages,
        num_hts: 0,
        output_columns: [
            "l_returnflag",
            "l_linestatus",
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "sum_disc",
            "count_order",
        ]
        .map(str::to_string)
        .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q1),
        limit: None,
        projection: None,
        display: None,
    }
}

/// Q3 (extended set): top-10 unshipped BUILDING orders.
pub fn q3_plan(db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::{Gt, Lt};
    let date = gpl_tpch::queries::literals::q3_date() as i64;
    let building = db
        .customer
        .col("c_mktsegment")
        .dictionary()
        .expect("c_mktsegment is dict")
        .code_of("BUILDING")
        .expect("segment exists") as i64;
    let stages = vec![
        build_stage(
            "build_customer",
            "customer",
            &["c_custkey", "c_mktsegment"],
            Some(Pred::cmp(
                crate::expr::CmpOp::Eq,
                Expr::slot(1),
                Expr::lit(building),
            )),
            0,
            0,
            vec![],
        ),
        Stage {
            name: "build_orders".to_string(),
            driver: "orders".to_string(),
            loads: ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"]
                .map(str::to_string)
                .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::cmp(Lt, Expr::slot(2), Expr::lit(date))),
                PipeOp::Probe {
                    ht: 0,
                    key: 1,
                    payloads: vec![],
                }, // BUILDING only
            ],
            terminal: Terminal::HashBuild {
                ht: 1,
                key: 0,
                payloads: vec![2, 3],
            },
        },
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: ["l_orderkey", "l_shipdate", "l_extendedprice", "l_discount"]
                .map(str::to_string)
                .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::cmp(Gt, Expr::slot(1), Expr::lit(date))),
                PipeOp::Probe {
                    ht: 1,
                    key: 0,
                    payloads: vec![4, 5],
                }, // date, priority
                PipeOp::Compute {
                    expr: volume_expr(2, 3),
                    out: 6,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![0, 4, 5], vec![Expr::slot(6)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q3,
        stages,
        num_hts: 2,
        output_columns: ["l_orderkey", "o_orderdate", "o_shippriority", "revenue"]
            .map(str::to_string)
            .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q3),
        limit: Some(gpl_tpch::queries::literals::Q3_LIMIT),
        projection: None,
        display: None,
    }
}

/// Q10 (extended set): top-20 returned-item customers — a group-by on
/// the probe *payload* (customer attributes travel through the pipeline).
pub fn q10_plan(db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::Eq;
    let (olo, ohi) = gpl_tpch::queries::literals::q10_order_window();
    let returned = db
        .lineitem
        .col("l_returnflag")
        .dictionary()
        .expect("l_returnflag is dict")
        .code_of("R")
        .expect("flag exists") as i64;
    let stages = vec![
        build_stage(
            "build_orders",
            "orders",
            &["o_orderkey", "o_custkey", "o_orderdate"],
            Some(Pred::between_half_open(
                Expr::slot(2),
                olo as i64,
                ohi as i64,
            )),
            0,
            0,
            vec![1],
        ),
        build_stage(
            "build_customer",
            "customer",
            &["c_custkey", "c_nationkey", "c_acctbal"],
            None,
            1,
            0,
            vec![1, 2],
        ),
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: [
                "l_orderkey",
                "l_returnflag",
                "l_extendedprice",
                "l_discount",
            ]
            .map(str::to_string)
            .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::cmp(Eq, Expr::slot(1), Expr::lit(returned))),
                PipeOp::Probe {
                    ht: 0,
                    key: 0,
                    payloads: vec![4],
                }, // o_custkey
                PipeOp::Probe {
                    ht: 1,
                    key: 4,
                    payloads: vec![5, 6],
                }, // c_nationkey, c_acctbal
                PipeOp::Compute {
                    expr: volume_expr(2, 3),
                    out: 7,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![4, 5, 6], vec![Expr::slot(7)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q10,
        stages,
        num_hts: 2,
        output_columns: ["c_custkey", "c_nationkey", "c_acctbal", "revenue"]
            .map(str::to_string)
            .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q10),
        limit: Some(gpl_tpch::queries::literals::Q10_LIMIT),
        projection: None,
        display: None,
    }
}

/// Q12 (extended set): late-shipment counts by ship mode — slot-to-slot
/// date comparisons in the leaf filter and two CASE-counting sums.
pub fn q12_plan(db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::Lt;
    use gpl_tpch::queries::literals as lit;
    let (rlo, rhi) = lit::q12_receipt_window();
    let mode_dict = db
        .lineitem
        .col("l_shipmode")
        .dictionary()
        .expect("l_shipmode is dict");
    let modes: Vec<i64> = lit::Q12_SHIP_MODES
        .iter()
        .map(|m| mode_dict.code_of(m).expect("mode") as i64)
        .collect();
    let prio_dict = db
        .orders
        .col("o_orderpriority")
        .dictionary()
        .expect("o_orderpriority is dict");
    let high: Vec<i64> = lit::Q12_HIGH_PRIORITIES
        .iter()
        .map(|p| prio_dict.code_of(p).expect("priority") as i64)
        .collect();
    // Slots: 0 l_orderkey, 1 l_shipmode, 2 l_shipdate, 3 l_commitdate,
    // 4 l_receiptdate, 5 o_orderpriority, 6 high, 7 low.
    let is_high = Pred::InList(Expr::slot(5), high);
    let stages = vec![
        build_stage(
            "build_orders",
            "orders",
            &["o_orderkey", "o_orderpriority"],
            None,
            0,
            0,
            vec![1],
        ),
        Stage {
            name: "probe_lineitem".to_string(),
            driver: "lineitem".to_string(),
            loads: [
                "l_orderkey",
                "l_shipmode",
                "l_shipdate",
                "l_commitdate",
                "l_receiptdate",
            ]
            .map(str::to_string)
            .to_vec(),
            ops: vec![
                PipeOp::Filter(Pred::And(vec![
                    Pred::InList(Expr::slot(1), modes),
                    Pred::between_half_open(Expr::slot(4), rlo as i64, rhi as i64),
                    Pred::cmp(Lt, Expr::slot(3), Expr::slot(4)), // commit < receipt
                    Pred::cmp(Lt, Expr::slot(2), Expr::slot(3)), // ship < commit
                ])),
                PipeOp::Probe {
                    ht: 0,
                    key: 0,
                    payloads: vec![5],
                },
                PipeOp::Compute {
                    expr: Expr::Case(
                        Box::new(is_high.clone()),
                        Box::new(Expr::lit(1)),
                        Box::new(Expr::lit(0)),
                    ),
                    out: 6,
                },
                PipeOp::Compute {
                    expr: Expr::Case(
                        Box::new(is_high),
                        Box::new(Expr::lit(0)),
                        Box::new(Expr::lit(1)),
                    ),
                    out: 7,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![1], vec![Expr::slot(6), Expr::slot(7)]),
        },
    ];
    QueryPlan {
        query: QueryId::Q12,
        stages,
        num_hts: 1,
        output_columns: ["l_shipmode", "high_line_count", "low_line_count"]
            .map(str::to_string)
            .to_vec(),
        order_by: gpl_tpch::order_spec(QueryId::Q12),
        limit: None,
        projection: None,
        display: None,
    }
}

/// Q6 (extended set): the pure predicate scan — one map kernel feeding
/// `k_reduce*`, the simplest possible pipeline.
pub fn q6_plan(_db: &TpchDb) -> QueryPlan {
    use crate::expr::CmpOp::Lt;
    use gpl_tpch::queries::literals as lit;
    let (lo, hi) = lit::q6_ship_window();
    let stages = vec![Stage {
        name: "scan_lineitem".to_string(),
        driver: "lineitem".to_string(),
        loads: ["l_shipdate", "l_quantity", "l_extendedprice", "l_discount"]
            .map(str::to_string)
            .to_vec(),
        ops: vec![
            PipeOp::Filter(Pred::And(vec![
                Pred::between_half_open(Expr::slot(0), lo as i64, hi as i64),
                Pred::between_inclusive(Expr::slot(3), lit::Q6_DISCOUNT_LO, lit::Q6_DISCOUNT_HI),
                Pred::cmp(Lt, Expr::slot(1), Expr::lit(lit::Q6_QUANTITY_BOUND)),
            ])),
            PipeOp::Compute {
                expr: Expr::slot(2).dec_mul(Expr::slot(3)),
                out: 4,
            },
        ],
        terminal: Terminal::sum_aggregate(vec![], vec![Expr::slot(4)]),
    }];
    QueryPlan {
        query: QueryId::Q6,
        stages,
        num_hts: 0,
        output_columns: vec!["revenue".into()],
        order_by: vec![],
        limit: None,
        projection: None,
        display: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TpchDb {
        TpchDb::at_scale(0.002)
    }

    #[test]
    fn all_plans_validate() {
        let db = db();
        for q in QueryId::evaluation_set() {
            plan_for(&db, q).validate();
        }
        plan_for(&db, QueryId::Listing1).validate();
    }

    #[test]
    fn q8_first_build_segment_matches_paper_shape() {
        // Section 5.2: "the first query segment contains three kernels
        // (2 map kernels and 1 hashbuild)". Our fusion folds the scan and
        // its selection into one map kernel, so the same segment is
        // map -> hashbuild; the pipeline boundary (channel into a blocking
        // hash build) is preserved.
        let p = q8_plan(&db());
        let ks = p.stages[0].gpl_kernel_names();
        assert_eq!(ks.len(), 2, "{ks:?}");
        assert!(ks[0].starts_with("k_map"));
        assert!(ks[1].starts_with("k_hash_build"));
    }

    #[test]
    fn listing1_matches_figure7() {
        let p = listing1_plan(10_000);
        let gpl = p.stages[0].gpl_kernel_names();
        // Figure 7c: all non-blocking, map feeding reduce via channel.
        assert!(gpl.iter().any(|k| k.contains("k_map")));
        assert_eq!(gpl.last().unwrap(), "k_reduce*");
        // Figure 7b: KBE needs prefix-sum + scatter for the selection.
        let kbe = p.stages[0].kbe_kernel_names();
        assert!(kbe.contains(&"k_prefix_sum".to_string()));
        assert!(kbe.contains(&"k_scatter".to_string()));
    }

    #[test]
    fn slot_validation_catches_unfilled_reads() {
        let bad = Stage {
            name: "bad".into(),
            driver: "lineitem".into(),
            loads: vec!["l_partkey".into()],
            ops: vec![PipeOp::Compute {
                expr: Expr::slot(5),
                out: 6,
            }],
            terminal: Terminal::sum_aggregate(vec![], vec![Expr::slot(6)]),
        };
        let r = std::panic::catch_unwind(|| bad.validate());
        assert!(r.is_err());
    }

    #[test]
    fn probe_before_build_is_rejected() {
        let db = db();
        let mut p = q14_plan(&db, Q14Params::default());
        p.stages.swap(0, 1);
        let r = std::panic::catch_unwind(move || p.validate());
        assert!(r.is_err());
    }

    #[test]
    fn explain_mentions_both_modes() {
        let e = plan_for(&db(), QueryId::Q5).explain();
        assert!(e.contains("KBE kernels"));
        assert!(e.contains("GPL kernels"));
        assert!(e.contains("segment S3"), "Q5 has 4 segments:\n{e}");
    }

    #[test]
    fn composite_key_cannot_collide() {
        // suppkey < COMPOSITE_KEY_MUL for any generated scale.
        let db = TpchDb::at_scale(0.01);
        assert!((db.supplier.rows() as i64) < COMPOSITE_KEY_MUL);
    }
}
