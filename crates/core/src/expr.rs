//! Expressions and predicates over pipeline slots.
//!
//! Kernels operate on *slots* — positions in the row context that flows
//! through a pipeline (driver columns, probe payloads, computed values).
//! Expressions are evaluated identically by every engine, and their node
//! count doubles as the per-element instruction estimate (`c_inst` of the
//! cost model's program-analysis input).

use gpl_storage::{dec_mul, Date};

/// Index into the pipeline row context.
pub type Slot = usize;

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// Scalar expression over slots.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Value of a slot.
    Slot(Slot),
    /// Constant.
    Const(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    /// Plain integer multiply (key composition etc.).
    Mul(Box<Expr>, Box<Expr>),
    /// Fixed-point multiply: `(a × b) / 100`.
    DecMul(Box<Expr>, Box<Expr>),
    /// `extract(year from <date expr>)`.
    Year(Box<Expr>),
    /// `case when <pred> then <a> else <b> end`.
    Case(Box<Pred>, Box<Expr>, Box<Expr>),
}

/// Boolean predicate over slots.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Always true (an unfiltered scan).
    True,
    Cmp(CmpOp, Expr, Expr),
    And(Vec<Pred>),
    Or(Box<Pred>, Box<Pred>),
    /// `expr IN (v1, v2, ...)` over encoded values (e.g. promo type codes).
    InList(Expr, Vec<i64>),
}

/// One compiled conjunct of a flattened predicate: a slot tested
/// against constants. See [`Pred::as_atoms`].
#[derive(Debug, Clone, PartialEq)]
pub enum AtomPred {
    Cmp(CmpOp, Slot, i64),
    InList(Slot, Vec<i64>),
}

impl AtomPred {
    /// The slot this atom reads.
    pub fn slot(&self) -> Slot {
        match self {
            AtomPred::Cmp(_, s, _) | AtomPred::InList(s, _) => *s,
        }
    }

    /// Test one value from the atom's slot.
    #[inline]
    pub fn test(&self, v: i64) -> bool {
        match self {
            AtomPred::Cmp(op, _, c) => op.apply(v, *c),
            AtomPred::InList(_, list) => list.contains(&v),
        }
    }
}

// The builder methods deliberately shadow the `std::ops` names: they
// build AST nodes rather than evaluate, and implementing the operator
// traits would hide the Box allocations these construct.
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn slot(s: Slot) -> Expr {
        Expr::Slot(s)
    }
    pub fn lit(v: i64) -> Expr {
        Expr::Const(v)
    }
    pub fn add(self, o: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(o))
    }
    pub fn sub(self, o: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(o))
    }
    pub fn mul(self, o: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(o))
    }
    pub fn dec_mul(self, o: Expr) -> Expr {
        Expr::DecMul(Box::new(self), Box::new(o))
    }
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }

    /// Evaluate against one row of the chunk (`cols[slot][row]`).
    pub fn eval(&self, cols: &[Vec<i64>], row: usize) -> i64 {
        match self {
            Expr::Slot(s) => cols[*s][row],
            Expr::Const(v) => *v,
            Expr::Add(a, b) => a.eval(cols, row).wrapping_add(b.eval(cols, row)),
            Expr::Sub(a, b) => a.eval(cols, row).wrapping_sub(b.eval(cols, row)),
            Expr::Mul(a, b) => a.eval(cols, row).wrapping_mul(b.eval(cols, row)),
            Expr::DecMul(a, b) => dec_mul(a.eval(cols, row), b.eval(cols, row)),
            Expr::Year(d) => Date::year_of_days(d.eval(cols, row) as i32) as i64,
            Expr::Case(p, a, b) => {
                if p.eval(cols, row) {
                    a.eval(cols, row)
                } else {
                    b.eval(cols, row)
                }
            }
        }
    }

    /// Evaluate rows `0..rows` column-at-a-time: the enum match runs
    /// once per node per *chunk* instead of once per node per row, and
    /// the inner loops are flat i64 arithmetic. Exactly [`Expr::eval`]
    /// applied to every row; `Case` evaluates both branches and selects
    /// per element — identical results since branches are pure (and the
    /// cost model already charges both sides, matching SIMD execution).
    pub fn eval_vec(&self, cols: &[Vec<i64>], rows: usize) -> Vec<i64> {
        fn bin(
            a: &Expr,
            b: &Expr,
            cols: &[Vec<i64>],
            rows: usize,
            f: impl Fn(i64, i64) -> i64,
        ) -> Vec<i64> {
            // A constant operand folds into the other side's buffer —
            // no splat vector.
            if let Expr::Const(v) = b {
                let mut x = a.eval_vec(cols, rows);
                for xi in &mut x {
                    *xi = f(*xi, *v);
                }
                return x;
            }
            if let Expr::Const(v) = a {
                let mut x = b.eval_vec(cols, rows);
                for xi in &mut x {
                    *xi = f(*v, *xi);
                }
                return x;
            }
            let mut x = a.eval_vec(cols, rows);
            let y = b.eval_vec(cols, rows);
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi = f(*xi, *yi);
            }
            x
        }
        match self {
            Expr::Slot(s) => cols[*s][..rows].to_vec(),
            Expr::Const(v) => vec![*v; rows],
            Expr::Add(a, b) => bin(a, b, cols, rows, i64::wrapping_add),
            Expr::Sub(a, b) => bin(a, b, cols, rows, i64::wrapping_sub),
            Expr::Mul(a, b) => bin(a, b, cols, rows, i64::wrapping_mul),
            Expr::DecMul(a, b) => bin(a, b, cols, rows, dec_mul),
            Expr::Year(d) => {
                let mut x = d.eval_vec(cols, rows);
                for xi in &mut x {
                    *xi = Date::year_of_days(*xi as i32) as i64;
                }
                x
            }
            Expr::Case(p, a, b) => {
                let mask = p.eval_mask(cols, rows);
                let mut x = a.eval_vec(cols, rows);
                let y = b.eval_vec(cols, rows);
                for i in 0..rows {
                    if !mask[i] {
                        x[i] = y[i];
                    }
                }
                x
            }
        }
    }

    /// Per-element instruction estimate: one per node, plus the branches
    /// of a case (SIMD executes both sides).
    pub fn insts(&self) -> u64 {
        match self {
            Expr::Slot(_) | Expr::Const(_) => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::DecMul(a, b) => {
                1 + a.insts() + b.insts()
            }
            // Year is a handful of divisions in the civil-date algorithm.
            Expr::Year(d) => 8 + d.insts(),
            Expr::Case(p, a, b) => 1 + p.insts() + a.insts() + b.insts(),
        }
    }

    /// Slots this expression reads.
    pub fn slots(&self, out: &mut Vec<Slot>) {
        match self {
            Expr::Slot(s) => out.push(*s),
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::DecMul(a, b) => {
                a.slots(out);
                b.slots(out);
            }
            Expr::Year(d) => d.slots(out),
            Expr::Case(p, a, b) => {
                p.slots(out);
                a.slots(out);
                b.slots(out);
            }
        }
    }
}

impl Pred {
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Pred {
        Pred::Cmp(op, a, b)
    }
    /// `lo <= e < hi` (half-open window, the common date predicate).
    pub fn between_half_open(e: Expr, lo: i64, hi: i64) -> Pred {
        Pred::And(vec![
            Pred::Cmp(CmpOp::Ge, e.clone(), Expr::Const(lo)),
            Pred::Cmp(CmpOp::Lt, e, Expr::Const(hi)),
        ])
    }
    /// `lo <= e <= hi` (SQL BETWEEN).
    pub fn between_inclusive(e: Expr, lo: i64, hi: i64) -> Pred {
        Pred::And(vec![
            Pred::Cmp(CmpOp::Ge, e.clone(), Expr::Const(lo)),
            Pred::Cmp(CmpOp::Le, e, Expr::Const(hi)),
        ])
    }

    pub fn eval(&self, cols: &[Vec<i64>], row: usize) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp(op, a, b) => op.apply(a.eval(cols, row), b.eval(cols, row)),
            Pred::And(ps) => ps.iter().all(|p| p.eval(cols, row)),
            Pred::Or(a, b) => a.eval(cols, row) || b.eval(cols, row),
            Pred::InList(e, list) => list.contains(&e.eval(cols, row)),
        }
    }

    /// Flatten into a conjunction of *atomic* slot-vs-constant tests, if
    /// the whole predicate has that shape. Filters in the workload are
    /// overwhelmingly `slot CMP literal` chains (`l_shipdate >= d AND
    /// l_shipdate < d'`), and the per-row tree walk — a recursive enum
    /// match chasing `Box`es — is pure overhead for them. `apply_filter`
    /// compiles the predicate once per chunk and evaluates the atoms in
    /// a flat loop; anything that doesn't fit (ORs, cases, computed
    /// operands) returns `None` and takes the general interpreter.
    /// Semantics are identical: `&&` is commutative-free short-circuit
    /// over pure tests.
    pub fn as_atoms(&self) -> Option<Vec<AtomPred>> {
        fn push(p: &Pred, out: &mut Vec<AtomPred>) -> bool {
            match p {
                Pred::True => true,
                Pred::Cmp(op, Expr::Slot(s), Expr::Const(v)) => {
                    out.push(AtomPred::Cmp(*op, *s, *v));
                    true
                }
                Pred::Cmp(op, Expr::Const(v), Expr::Slot(s)) => {
                    // `lit CMP slot` mirrors to `slot CMP' lit`.
                    let flip = match op {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        CmpOp::Eq => CmpOp::Eq,
                        CmpOp::Ne => CmpOp::Ne,
                    };
                    out.push(AtomPred::Cmp(flip, *s, *v));
                    true
                }
                Pred::And(ps) => ps.iter().all(|p| push(p, out)),
                Pred::InList(Expr::Slot(s), list) => {
                    out.push(AtomPred::InList(*s, list.clone()));
                    true
                }
                _ => false,
            }
        }
        let mut out = Vec::new();
        push(self, &mut out).then_some(out)
    }

    /// Evaluate rows `0..rows` into a boolean mask — the vectorized
    /// counterpart of [`Expr::eval_vec`]. Atom-shaped predicates run as
    /// flat per-atom column sweeps; the rest fall back to the per-row
    /// interpreter. `&&` over pure tests is order-insensitive, so the
    /// sweep keeps exactly the rows the interpreter would.
    pub fn eval_mask(&self, cols: &[Vec<i64>], rows: usize) -> Vec<bool> {
        match self.as_atoms() {
            Some(atoms) => {
                let mut mask = vec![true; rows];
                for a in &atoms {
                    let col = &cols[a.slot()];
                    for (m, &v) in mask.iter_mut().zip(&col[..rows]) {
                        *m = *m && a.test(v);
                    }
                }
                mask
            }
            None => (0..rows).map(|r| self.eval(cols, r)).collect(),
        }
    }

    pub fn insts(&self) -> u64 {
        match self {
            Pred::True => 0,
            Pred::Cmp(_, a, b) => 1 + a.insts() + b.insts(),
            Pred::And(ps) => ps.iter().map(Pred::insts).sum::<u64>() + ps.len() as u64,
            Pred::Or(a, b) => 1 + a.insts() + b.insts(),
            Pred::InList(e, list) => e.insts() + list.len() as u64,
        }
    }

    pub fn slots(&self, out: &mut Vec<Slot>) {
        match self {
            Pred::True => {}
            Pred::Cmp(_, a, b) => {
                a.slots(out);
                b.slots(out);
            }
            Pred::And(ps) => ps.iter().for_each(|p| p.slots(out)),
            Pred::Or(a, b) => {
                a.slots(out);
                b.slots(out);
            }
            Pred::InList(e, _) => e.slots(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<Vec<i64>> {
        vec![vec![10, 20], vec![3, 5], vec![9374, 9404]]
    }

    #[test]
    fn arithmetic_eval() {
        let c = cols();
        let e = Expr::slot(0).add(Expr::slot(1)).mul(Expr::lit(2));
        assert_eq!(e.eval(&c, 0), 26);
        assert_eq!(e.eval(&c, 1), 50);
        let d = Expr::lit(1999).dec_mul(Expr::lit(50));
        assert_eq!(d.eval(&c, 0), 999);
    }

    #[test]
    fn year_extracts_from_day_numbers() {
        let c = cols();
        // 9374 = 1995-09-01, 9404 = 1995-10-01.
        assert_eq!(Expr::slot(2).year().eval(&c, 0), 1995);
        assert_eq!(Expr::slot(2).year().eval(&c, 1), 1995);
    }

    #[test]
    fn case_selects_branch() {
        let c = cols();
        let e = Expr::Case(
            Box::new(Pred::cmp(CmpOp::Gt, Expr::slot(0), Expr::lit(15))),
            Box::new(Expr::slot(1)),
            Box::new(Expr::lit(0)),
        );
        assert_eq!(e.eval(&c, 0), 0);
        assert_eq!(e.eval(&c, 1), 5);
    }

    #[test]
    fn predicates() {
        let c = cols();
        assert!(Pred::True.eval(&c, 0));
        assert!(Pred::between_half_open(Expr::slot(0), 10, 20).eval(&c, 0));
        assert!(!Pred::between_half_open(Expr::slot(0), 10, 20).eval(&c, 1));
        assert!(Pred::between_inclusive(Expr::slot(0), 10, 20).eval(&c, 1));
        assert!(Pred::InList(Expr::slot(1), vec![1, 3, 7]).eval(&c, 0));
        assert!(!Pred::InList(Expr::slot(1), vec![1, 3, 7]).eval(&c, 1));
        let or = Pred::Or(
            Box::new(Pred::cmp(CmpOp::Eq, Expr::slot(1), Expr::lit(5))),
            Box::new(Pred::cmp(CmpOp::Eq, Expr::slot(1), Expr::lit(3))),
        );
        assert!(or.eval(&c, 0) && or.eval(&c, 1));
    }

    #[test]
    fn instruction_counts_grow_with_size() {
        assert_eq!(Expr::slot(0).insts(), 1);
        assert!(Expr::slot(0).add(Expr::lit(1)).insts() > Expr::slot(0).insts());
        assert!(Pred::True.insts() == 0);
        let big = Pred::And(vec![
            Pred::cmp(CmpOp::Ge, Expr::slot(0), Expr::lit(0)),
            Pred::cmp(CmpOp::Lt, Expr::slot(0), Expr::lit(9)),
        ]);
        assert!(big.insts() > 4);
    }

    #[test]
    fn slot_collection() {
        let mut s = Vec::new();
        Expr::slot(3).add(Expr::slot(1)).slots(&mut s);
        assert_eq!(s, vec![3, 1]);
        s.clear();
        Pred::InList(Expr::slot(2), vec![1]).slots(&mut s);
        assert_eq!(s, vec![2]);
    }
}
