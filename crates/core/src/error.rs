//! Structured execution errors.
//!
//! A single-query CLI can afford to abort on a stalled pipeline; a query
//! *server* cannot — one bad query must fail alone, with enough context
//! to debug it, while the worker that ran it moves on to the next
//! request. [`ExecError`] is that boundary: the simulator's deadlock
//! diagnostic is preserved verbatim, and the serving layer's per-query
//! cycle budget and cancellation surface here too.

use std::fmt;

/// Why a query execution stopped without producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The simulated pipeline stalled: every kernel blocked (or drained)
    /// with no completion event pending. Carries the device clock and
    /// the simulator's per-kernel / per-channel state dump.
    Deadlock { cycle: u64, diagnostic: String },
    /// The query exceeded its simulated-cycle budget. Deterministic by
    /// construction: the same query under the same budget always times
    /// out at the same stage boundary, regardless of wall-clock speed.
    Timeout {
        budget_cycles: u64,
        spent_cycles: u64,
    },
    /// The query's cancellation flag was raised between stages.
    Cancelled,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Deadlock { cycle, diagnostic } => {
                write!(f, "simulator deadlock at cycle {cycle}:{diagnostic}")
            }
            ExecError::Timeout {
                budget_cycles,
                spent_cycles,
            } => write!(
                f,
                "query exceeded its cycle budget: {spent_cycles} spent of {budget_cycles} allowed"
            ),
            ExecError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<gpl_sim::DeadlockError> for ExecError {
    fn from(e: gpl_sim::DeadlockError) -> Self {
        ExecError::Deadlock {
            cycle: e.cycle,
            diagnostic: e.diagnostic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_deadlock_diagnostic() {
        let e = ExecError::from(gpl_sim::DeadlockError {
            cycle: 618,
            diagnostic: "\n  kernel k_map blocked".into(),
        });
        let s = e.to_string();
        assert!(s.contains("cycle 618"));
        assert!(s.contains("k_map"), "{s}");
    }

    #[test]
    fn timeout_and_cancel_render() {
        let t = ExecError::Timeout {
            budget_cycles: 10,
            spent_cycles: 25,
        };
        assert!(t.to_string().contains("25 spent of 10"));
        assert_eq!(ExecError::Cancelled.to_string(), "query cancelled");
    }
}
