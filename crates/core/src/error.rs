//! Structured execution errors.
//!
//! A single-query CLI can afford to abort on a stalled pipeline; a query
//! *server* cannot — one bad query must fail alone, with enough context
//! to debug it, while the worker that ran it moves on to the next
//! request. [`ExecError`] is that boundary: the simulator's deadlock
//! diagnostic is preserved verbatim, and the serving layer's per-query
//! cycle budget and cancellation surface here too.

use gpl_sim::{FaultKind, FaultRecord};
use std::fmt;

/// Why a query execution stopped without producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The simulated pipeline stalled: every kernel blocked (or drained)
    /// with no completion event pending. Carries the device clock and
    /// the simulator's per-kernel / per-channel state dump.
    Deadlock { cycle: u64, diagnostic: String },
    /// The query exceeded its simulated-cycle budget. Deterministic by
    /// construction: the same query under the same budget always times
    /// out at the same stage boundary, regardless of wall-clock speed.
    Timeout {
        budget_cycles: u64,
        spent_cycles: u64,
    },
    /// The query's cancellation flag was raised between stages.
    Cancelled,
    /// A transient device fault (injected kernel fault or
    /// checksum-detected channel corruption) exhausted every retry and
    /// fallback. Carries the *last* structured fault record.
    Fault(FaultRecord),
    /// The device was lost mid-query and no fallback was available.
    DeviceLost(FaultRecord),
    /// A simulated allocation failed under memory pressure and retries
    /// / fallbacks were exhausted.
    Oom(FaultRecord),
    /// Load shedding: the admission queue was over its configured bound,
    /// so the request was rejected before execution (fast-fail instead
    /// of unbounded queueing latency).
    Rejected { queue_depth: u64, bound: u64 },
    /// A [`StageConfig`](crate::exec::StageConfig) does not fit the
    /// segment it configures (wg-count arity mismatch against the
    /// lowered IR). A caller bug, not a device fault — never retried.
    InvalidConfig(crate::segment::ConfigError),
}

impl ExecError {
    /// Map an injected [`FaultRecord`] to its error variant.
    pub fn from_fault(record: FaultRecord) -> Self {
        match record.kind {
            FaultKind::Oom => ExecError::Oom(record),
            FaultKind::DeviceLost => ExecError::DeviceLost(record),
            _ => ExecError::Fault(record),
        }
    }

    /// The structured fault record, for the device-fault variants.
    pub fn fault_record(&self) -> Option<&FaultRecord> {
        match self {
            ExecError::Fault(r) | ExecError::DeviceLost(r) | ExecError::Oom(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this error indicates device misbehaviour (the class the
    /// serving layer's circuit breaker counts). Timeouts, cancellations
    /// and deadlocks are query problems, not device problems.
    pub fn is_device_fault(&self) -> bool {
        matches!(
            self,
            ExecError::Fault(_) | ExecError::DeviceLost(_) | ExecError::Oom(_)
        )
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Deadlock { cycle, diagnostic } => {
                write!(f, "simulator deadlock at cycle {cycle}:{diagnostic}")
            }
            ExecError::Timeout {
                budget_cycles,
                spent_cycles,
            } => write!(
                f,
                "query exceeded its cycle budget: {spent_cycles} spent of {budget_cycles} allowed"
            ),
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::Fault(r) => write!(f, "transient device fault: {r}"),
            ExecError::DeviceLost(r) => write!(f, "device lost: {r}"),
            ExecError::Oom(r) => write!(f, "device out of memory: {r}"),
            ExecError::Rejected { queue_depth, bound } => write!(
                f,
                "admission rejected: queue depth {queue_depth} over bound {bound}"
            ),
            ExecError::InvalidConfig(e) => write!(f, "invalid stage config: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<gpl_sim::DeadlockError> for ExecError {
    fn from(e: gpl_sim::DeadlockError) -> Self {
        ExecError::Deadlock {
            cycle: e.cycle,
            diagnostic: e.diagnostic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_deadlock_diagnostic() {
        let e = ExecError::from(gpl_sim::DeadlockError {
            cycle: 618,
            diagnostic: "\n  kernel k_map blocked".into(),
        });
        let s = e.to_string();
        assert!(s.contains("cycle 618"));
        assert!(s.contains("k_map"), "{s}");
    }

    /// One representative of every variant — kept exhaustive by the
    /// match below, so adding a variant without extending this test
    /// fails to compile.
    fn all_variants() -> Vec<ExecError> {
        let record = |kind| gpl_sim::FaultRecord {
            kind,
            kernel: matches!(kind, FaultKind::KernelFault).then(|| "k_map".to_string()),
            cycle: 4242,
            launch: 3,
        };
        vec![
            ExecError::Deadlock {
                cycle: 618,
                diagnostic: "\n  kernel k_map blocked".into(),
            },
            ExecError::Timeout {
                budget_cycles: 10,
                spent_cycles: 25,
            },
            ExecError::Cancelled,
            ExecError::Fault(record(FaultKind::KernelFault)),
            ExecError::DeviceLost(record(FaultKind::DeviceLost)),
            ExecError::Oom(record(FaultKind::Oom)),
            ExecError::Rejected {
                queue_depth: 9,
                bound: 8,
            },
            ExecError::InvalidConfig(crate::segment::ConfigError {
                stage: "probe_lineitem".into(),
                kernels: 3,
                wg_counts: 2,
            }),
        ]
    }

    /// Round-trip: every variant's display text is non-empty, unique,
    /// stable across repeated formatting, and carries its structured
    /// payload (cycle counts, fault records) verbatim.
    #[test]
    fn display_is_exhaustive_and_round_trips() {
        let all = all_variants();
        let mut seen = std::collections::HashSet::new();
        for e in &all {
            // Exhaustiveness guard: a new variant must be added above.
            match e {
                ExecError::Deadlock { .. }
                | ExecError::Timeout { .. }
                | ExecError::Cancelled
                | ExecError::Fault(_)
                | ExecError::DeviceLost(_)
                | ExecError::Oom(_)
                | ExecError::Rejected { .. }
                | ExecError::InvalidConfig(_) => {}
            }
            let s = e.to_string();
            assert!(!s.is_empty());
            assert_eq!(s, e.to_string(), "formatting must be pure");
            assert!(seen.insert(s.clone()), "duplicate display text: {s}");
            if let Some(r) = e.fault_record() {
                assert!(s.contains(&r.to_string()), "{s} must embed {r}");
                assert!(e.is_device_fault());
            }
        }
        assert!(all_variants()
            .iter()
            .any(|e| e.to_string().contains("queue depth 9 over bound 8")));
    }

    /// The satellite contract: `ExecError` composes with `?` outside
    /// the workspace via `std::error::Error`.
    #[test]
    fn composes_with_question_mark_as_dyn_error() {
        fn fails() -> Result<(), Box<dyn std::error::Error>> {
            Err(ExecError::Cancelled)?;
            Ok(())
        }
        let e = fails().unwrap_err();
        assert_eq!(e.to_string(), "query cancelled");
    }

    #[test]
    fn fault_records_map_to_their_variants() {
        let mk = |kind| gpl_sim::FaultRecord {
            kind,
            kernel: None,
            cycle: 1,
            launch: 0,
        };
        assert!(matches!(
            ExecError::from_fault(mk(FaultKind::Oom)),
            ExecError::Oom(_)
        ));
        assert!(matches!(
            ExecError::from_fault(mk(FaultKind::DeviceLost)),
            ExecError::DeviceLost(_)
        ));
        assert!(matches!(
            ExecError::from_fault(mk(FaultKind::KernelFault)),
            ExecError::Fault(_)
        ));
        assert!(matches!(
            ExecError::from_fault(mk(FaultKind::ChannelCorrupt)),
            ExecError::Fault(_)
        ));
    }

    #[test]
    fn timeout_and_cancel_render() {
        let t = ExecError::Timeout {
            budget_cycles: 10,
            spent_cycles: 25,
        };
        assert!(t.to_string().contains("25 spent of 10"));
        assert_eq!(ExecError::Cancelled.to_string(), "query cancelled");
    }
}
