//! Multi-device sharding: split the driving relation into per-shard
//! tile streams, run each shard's `SegmentIr` launch on a device of a
//! simulated heterogeneous pool, and merge the blocking-terminal state
//! deterministically.
//!
//! The shard/merge seam exploits two structural facts of the engine:
//!
//! * **Builds are key-unique.** Every TPC-H build side here is a
//!   key–FK join ([`SimHashTable::insert`] panics on duplicates), so
//!   the union of disjoint shard builds is exactly the unsharded table
//!   — probes cannot tell the difference.
//! * **Aggregates are commutative monoids.** [`AggKind::combine`](crate::ht::AggKind::combine)
//!   merges partial accumulators group-by-group in `BTreeMap` order,
//!   so merged state is independent of shard completion order.
//!
//! The final `ORDER BY` (or the canonical full-row sort) then fixes
//! row order, making sharded output bit-identical to the single-device
//! oracle for every shard count — the invariant
//! `tests/shard_equivalence.rs` pins.
//!
//! Cost model of the pool: devices simulate independently (one
//! `Simulator` each, sharing the immutable `Arc<TpchDb>`); shards
//! assigned to the same device serialize on its clock; a stage's wall
//! time is the *maximum* per-device clock advance, since devices run
//! concurrently; merged build state is broadcast to every live device
//! at its copy bandwidth before the next stage probes it. Heterogeneous
//! CPU/GPU placement (He et al., arXiv:1307.1955) picks, per stage, the
//! device class whose Eq. 8 estimate is lowest — `gpl_model`'s
//! placement pass produces the [`ShardAssignment`] consumed here.

use crate::error::ExecError;
use crate::exec::{
    make_blocking_outputs, run_sort_kernel, ExecContext, ExecLimits, ExecMode, QueryConfig,
    StageConfig,
};
use crate::gpl;
use crate::ht::{mix64, GroupStore, SimHashTable};
use crate::kbe;
use crate::ops::sort_rows;
use crate::plan::{QueryPlan, Stage, Terminal};
use crate::recover::{RecoveryPolicy, RecoveryStats};
use crate::segment::SegmentIr;
use gpl_sim::{DeviceSpec, FaultPlan, FaultSpec, LaunchProfile};
use gpl_storage::Tiling;
use gpl_tpch::{QueryOutput, TpchDb};
use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;
use std::sync::Arc;

/// Coarse device class used for placement and shard scheduling: shards
/// of a stage run on devices of the *same* class so per-shard tuned
/// configs stay meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    Gpu,
    Cpu,
}

impl DeviceKind {
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Gpu => "gpu",
            DeviceKind::Cpu => "cpu",
        }
    }
}

/// One device of the pool.
#[derive(Debug, Clone)]
pub struct PoolDevice {
    pub spec: DeviceSpec,
    pub kind: DeviceKind,
}

/// A fixed, ordered set of simulated devices. Order is part of the
/// contract: shard→device assignment, merge order, and telemetry keys
/// all index into it, so two pools with the same devices in the same
/// order behave identically.
#[derive(Debug, Clone)]
pub struct DevicePool {
    devices: Vec<PoolDevice>,
}

impl DevicePool {
    pub fn new(devices: Vec<PoolDevice>) -> Self {
        assert!(!devices.is_empty(), "a pool needs at least one device");
        let mut names: Vec<&str> = devices.iter().map(|d| d.spec.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), devices.len(), "duplicate device names");
        DevicePool { devices }
    }

    /// The reference heterogeneous pool: both GPU classes of the paper
    /// plus the host-CPU profile.
    pub fn default_pool() -> Self {
        DevicePool::new(vec![
            PoolDevice {
                spec: gpl_sim::amd_a10(),
                kind: DeviceKind::Gpu,
            },
            PoolDevice {
                spec: gpl_sim::nvidia_k40(),
                kind: DeviceKind::Gpu,
            },
            PoolDevice {
                spec: gpl_sim::cpu_host(),
                kind: DeviceKind::Cpu,
            },
        ])
    }

    pub fn devices(&self) -> &[PoolDevice] {
        &self.devices
    }

    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Stable cache-key component: device names in pool order.
    pub fn key(&self) -> String {
        self.devices
            .iter()
            .map(|d| d.spec.name.as_str())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// How the driving relation splits into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sharder {
    /// Contiguous balanced row ranges (one range per shard).
    Range,
    /// Fixed-size row blocks dealt to shards by a key mix of the block
    /// index — models hash partitioning's skew tolerance while staying
    /// a pure function of (rows, shards).
    Hash { block_rows: usize },
}

impl Sharder {
    /// Split `rows` into `shards` disjoint, covering range lists —
    /// shard `i` scans exactly the ranges of `partition(..)[i]`, in
    /// order. Total/disjointness for arbitrary inputs is property-
    /// tested in `tests/property_invariants.rs`.
    pub fn partition(&self, rows: usize, shards: usize) -> Vec<Vec<Range<usize>>> {
        let shards = shards.max(1);
        let mut parts = vec![Vec::new(); shards];
        match self {
            Sharder::Range => {
                let q = rows / shards;
                let r = rows % shards;
                let mut start = 0;
                for (i, p) in parts.iter_mut().enumerate() {
                    let len = q + usize::from(i < r);
                    if len > 0 {
                        p.push(start..start + len);
                    }
                    start += len;
                }
            }
            Sharder::Hash { block_rows } => {
                let block = (*block_rows).max(1);
                let mut b = 0;
                while b * block < rows {
                    let range = b * block..((b + 1) * block).min(rows);
                    let s = (mix64(b as u64) % shards as u64) as usize;
                    // Coalesce blocks that land adjacently in one shard.
                    match parts[s].last_mut() {
                        Some(last) if last.end == range.start => last.end = range.end,
                        _ => parts[s].push(range),
                    }
                    b += 1;
                }
            }
        }
        parts
    }

    /// Stable cache-key component.
    pub fn key(&self) -> String {
        match self {
            Sharder::Range => "range".to_string(),
            Sharder::Hash { block_rows } => format!("hash{block_rows}"),
        }
    }
}

/// The `ExecMode`-orthogonal sharding decision carried in plan-cache
/// keys: how many shards, split how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    pub shards: usize,
    pub sharder: Sharder,
}

impl ShardPlan {
    /// The degenerate single-shard plan (still runs through the pool).
    pub fn single() -> Self {
        ShardPlan {
            shards: 1,
            sharder: Sharder::Range,
        }
    }

    pub fn range(shards: usize) -> Self {
        ShardPlan {
            shards,
            sharder: Sharder::Range,
        }
    }

    /// Stable plan-cache key component, e.g. `range:4`.
    pub fn cache_key(&self) -> String {
        format!("{}:{}", self.sharder.key(), self.shards)
    }
}

/// Per-stage device placement plus per-device searched configs — the
/// output of `gpl_model`'s placement pass (or a hand-rolled test
/// assignment). `stage_device[s]` anchors stage `s` on a pool device;
/// shards of the stage round-robin over live devices of the anchor's
/// *class*, each using its own device's `configs` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAssignment {
    /// Pool-device index per plan stage.
    pub stage_device: Vec<usize>,
    /// One tuned `QueryConfig` per pool device (pool order).
    pub configs: Vec<QueryConfig>,
}

impl ShardAssignment {
    /// Everything on device 0 with default configs — the no-model
    /// baseline assignment.
    pub fn default_for(pool: &DevicePool, plan: &QueryPlan) -> Self {
        ShardAssignment {
            stage_device: vec![0; plan.stages.len()],
            configs: pool
                .devices()
                .iter()
                .map(|d| QueryConfig::default_for(&d.spec, plan))
                .collect(),
        }
    }

    /// Stages dealt round-robin across the pool with default configs —
    /// exercises every device class without a model in the loop (the
    /// differential tests' assignment).
    pub fn round_robin(pool: &DevicePool, plan: &QueryPlan) -> Self {
        let mut a = Self::default_for(pool, plan);
        for (i, d) in a.stage_device.iter_mut().enumerate() {
            *d = i % pool.len();
        }
        a
    }

    /// Stable cache-key component: anchor indices in stage order.
    pub fn key(&self) -> String {
        self.stage_device
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Fault-injection configuration for a sharded run: one seeded plan per
/// device, derived from `seed` and the pool index so per-device fault
/// streams are independent but reproducible.
#[derive(Debug, Clone)]
pub struct ShardFaults {
    pub spec: FaultSpec,
    pub seed: u64,
}

const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl ShardFaults {
    /// The per-device fault seed (device pool index mixed in).
    pub fn seed_for(&self, device: usize) -> u64 {
        self.seed ^ (device as u64 + 1).wrapping_mul(SEED_MIX)
    }
}

/// Straggler-hedging policy for a sharded run (DESIGN.md §11):
/// modeled per-stage per-device cycle estimates plus a lateness
/// threshold. A shard whose observed cycles exceed the *whole stage's*
/// modeled cost on its device times `threshold` is treated as a
/// straggler: a speculative backup launches on the modeled-cheapest
/// other live device, the first *verified* finisher wins, and the
/// loser's clock is capped at the winner's finish. The deadline is
/// deliberately not scaled down to the shard's row fraction — a shard
/// is a fraction of its stage, so one that exceeds the full stage's
/// model is pathological (slowdown window, retry storm) rather than
/// merely mis-modeled. Both attempts' blocking outputs must be
/// bit-identical — hedging trades duplicate cycles (charged against
/// [`ExecLimits`]) for tail latency, never correctness.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgePlan {
    /// `modeled[stage][device]`: modeled cycles for the whole stage on
    /// that pool device, pool order (`f64::INFINITY` = the device is
    /// not a candidate). Typically `gpl_model::hedge_plan` lifts this
    /// from a placement's estimate matrix.
    pub modeled: Vec<Vec<f64>>,
    /// Hedge once observed cycles exceed `modeled × frac × threshold`.
    /// Must be `>= 1`; larger values hedge later (fewer duplicate
    /// launches, longer tails survive).
    pub threshold: f64,
}

impl HedgePlan {
    /// The default lateness threshold: a shard 3× over its model is a
    /// straggler. Conservative enough that model error alone (bounded
    /// by the calibration gates at well under 2×) never trips it.
    pub const DEFAULT_THRESHOLD: f64 = 3.0;

    pub fn new(modeled: Vec<Vec<f64>>, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 1.0,
            "hedge threshold must be finite and >= 1, got {threshold}"
        );
        HedgePlan { modeled, threshold }
    }
}

/// Content digest of a shard attempt's blocking output — what hedging
/// compares to verify a backup reproduced the primary bit-identically
/// before either is allowed to win the race.
fn shard_out_digest(out: &ShardOut) -> (Option<(usize, u64)>, Option<u64>) {
    (
        out.1.as_ref().map(|(slot, t)| (*slot, t.fingerprint())),
        out.2.as_ref().map(GroupStore::fingerprint),
    )
}

/// One device's view of a sharded run.
#[derive(Debug, Clone)]
pub struct DeviceRun {
    /// `DeviceSpec::name` of the pool device.
    pub device: String,
    pub kind: DeviceKind,
    /// This device's final simulated clock: launches it ran, backoff it
    /// charged, and merge broadcasts it received.
    pub cycles: u64,
    /// Per plan stage, the merged profile of the shard launches this
    /// device ran for that stage (`LaunchProfile::default()` when it
    /// did not participate); the final sort, if this device ran it, is
    /// appended as one extra entry. Positionally joinable against the
    /// stage models, like `QueryRun::per_stage`.
    pub per_stage: Vec<LaunchProfile>,
    /// Whether the device was lost to a sticky fault during the run.
    pub lost: bool,
}

/// The result of a sharded pool run.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    pub output: QueryOutput,
    /// Observed simulated cycles for the whole query: the sum over
    /// stages of the *maximum* per-device clock advance (devices run
    /// concurrently; shards on one device serialize), plus merge
    /// broadcasts and the final sort.
    pub cycles: u64,
    /// Wall cycles per plan stage (the max-over-devices terms), with
    /// the final sort appended when the plan orders.
    pub stage_cycles: Vec<u64>,
    pub per_device: Vec<DeviceRun>,
    pub recovery: RecoveryStats,
}

impl ShardedRun {
    /// FNV-1a over the result rows — same digest shape as the serve
    /// report and bench artifacts.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(&(self.output.rows.len() as u64).to_le_bytes());
        for row in &self.output.rows {
            for v in row {
                mix(&v.to_le_bytes());
            }
        }
        h
    }
}

/// A shard attempt's blocking output: the launch profile plus the
/// *owned* terminal state (unwrapped from its `Rc` so the merge can
/// consume it).
pub(crate) type ShardOut = (
    LaunchProfile,
    Option<(usize, SimHashTable)>,
    Option<GroupStore>,
);

/// Run `plan` sharded across `pool` under `mode`.
///
/// Shards execute sequentially on the host (the simulation is
/// deterministic regardless of serve worker count); concurrency across
/// devices is modeled by the per-stage max-over-devices wall. Faults,
/// when configured, inject per device with independent seeded streams;
/// a shard whose device suffers a sticky loss is reassigned to the
/// next live device (same class first), falling back to a disarmed KBE
/// attempt on the last candidate when the pool is exhausted — rows
/// stay bit-identical throughout, mirroring the single-device ladder.
///
/// `excluded` (pool order) lets a caller with per-device breakers keep
/// a device out of admission; it is ignored when it would exclude
/// everything. `hedge` arms straggler defense: shards observed past
/// their modeled deadline get a speculative backup on the
/// modeled-cheapest other live device (see [`HedgePlan`]).
/// `GplPipelined` runs its stages per shard like `Gpl`: the
/// cross-shard merge is a barrier between stages, so there is no
/// build→probe pair left to fuse inside one shard launch.
#[allow(clippy::too_many_arguments)]
pub fn try_run_query_sharded(
    pool: &DevicePool,
    db: &Arc<TpchDb>,
    plan: &QueryPlan,
    mode: ExecMode,
    shard: &ShardPlan,
    assignment: &ShardAssignment,
    limits: &ExecLimits,
    recovery: Option<&RecoveryPolicy>,
    faults: Option<&ShardFaults>,
    hedge: Option<&HedgePlan>,
    excluded: Option<&[bool]>,
) -> Result<ShardedRun, ExecError> {
    plan.validate();
    let n = pool.len();
    assert_eq!(assignment.configs.len(), n, "one config per pool device");
    assert_eq!(
        assignment.stage_device.len(),
        plan.stages.len(),
        "one anchor per stage"
    );
    for cfg in &assignment.configs {
        assert_eq!(cfg.stages.len(), plan.stages.len(), "config/stage mismatch");
    }
    assert!(
        assignment.stage_device.iter().all(|&d| d < n),
        "anchor out of range"
    );

    let mut ctxs: Vec<ExecContext> = pool
        .devices()
        .iter()
        .map(|d| ExecContext::with_shared(d.spec.clone(), db.clone()))
        .collect();
    if let Some(f) = faults {
        for (i, ctx) in ctxs.iter_mut().enumerate() {
            ctx.sim
                .attach_faults(FaultPlan::new(f.spec.clone(), f.seed_for(i)));
        }
    }

    let mut alive: Vec<bool> = match excluded {
        Some(ex) if ex.len() == n && ex.iter().any(|&e| !e) => ex.iter().map(|&e| !e).collect(),
        _ => vec![true; n],
    };
    // Per device, per plan stage (plus sort), the merged launch profile.
    let mut dev_stages: Vec<Vec<LaunchProfile>> = vec![Vec::new(); n];
    let mut hts: Vec<Vec<Option<Rc<RefCell<SimHashTable>>>>> = vec![vec![None; plan.num_hts]; n];
    let mut agg_store: Option<GroupStore> = None;
    let mut stats = RecoveryStats::default();
    let mut stage_cycles = Vec::new();
    let mut total = 0u64;
    let mut primary = assignment.stage_device[plan.stages.len() - 1];

    for (sidx, stage) in plan.stages.iter().enumerate() {
        limits.check(total + stats.wasted_cycles)?;
        let anchor = assignment.stage_device[sidx];
        let kind = pool.devices()[anchor].kind;
        // Devices eligible for this stage: live devices of the anchor's
        // class, anchor first; any live device if the class died out.
        let mut class: Vec<usize> = (0..n)
            .filter(|&d| alive[d] && pool.devices()[d].kind == kind)
            .collect();
        if class.is_empty() {
            class = (0..n).filter(|&d| alive[d]).collect();
        }
        let exhausted = class.is_empty();
        if exhausted {
            // Every device lost: the disarmed last resort runs on the
            // anchor, like the single-device ladder's hardened path.
            class = vec![anchor];
        }
        if let Some(pos) = class.iter().position(|&d| d == anchor) {
            class.rotate_left(pos);
        }
        primary = class[0];

        let rows = db.table(&stage.driver).rows();
        let parts = shard.sharder.partition(rows, shard.shards);
        let c_start: Vec<u64> = ctxs.iter().map(|c| c.sim.clock()).collect();

        // Per-device lowering: the IR depends on the wavefront size.
        let irs: Vec<SegmentIr> = ctxs
            .iter()
            .map(|c| SegmentIr::lower(stage, db.table(&stage.driver), c.sim.spec().wavefront_size))
            .collect();

        let mut stage_profiles: Vec<LaunchProfile> = vec![LaunchProfile::default(); n];
        let mut shard_builds: Vec<SimHashTable> = Vec::new();
        let mut shard_aggs: Vec<GroupStore> = Vec::new();
        let mut ht_slot = None;

        for (si, part) in parts.iter().enumerate() {
            // Candidate devices for this shard: the class rotated so
            // shard si starts at class[si % len], then (on loss) the
            // remaining live devices outside the class.
            let mut cands: Vec<usize> = {
                let len = class.len();
                (0..len).map(|o| class[(si + o) % len]).collect()
            };
            let extra: Vec<usize> = (0..n)
                .filter(|&d| alive[d] && !cands.contains(&d))
                .collect();
            cands.extend(extra);
            let mut last_err: Option<ExecError> = None;
            // (device, output, observed cycles, clock at attempt start)
            let mut winner: Option<(usize, ShardOut, u64, u64)> = None;
            for (ci, &dev) in cands.iter().enumerate() {
                let reassigned = ci > 0;
                if reassigned {
                    stats.fallbacks += 1;
                }
                let dev_is_last = ci + 1 == cands.len();
                let a0 = ctxs[dev].sim.clock();
                match run_shard_on_device(
                    &mut ctxs[dev],
                    plan,
                    &irs[dev],
                    stage,
                    &assignment.configs[dev].stages[sidx],
                    mode,
                    &hts[dev],
                    part,
                    recovery,
                    limits,
                    total,
                    &mut stats,
                    // The disarmed last resort belongs to the final
                    // candidate only; earlier losses reassign instead.
                    dev_is_last || exhausted,
                ) {
                    Ok(out) => {
                        let observed = ctxs[dev].sim.clock().saturating_sub(a0);
                        winner = Some((dev, out, observed, a0));
                        break;
                    }
                    Err(e @ ExecError::DeviceLost(_)) => {
                        alive[dev] = false;
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
            let Some((mut wdev, mut out, observed, p0)) = winner else {
                return Err(last_err.expect("at least one candidate attempted"));
            };

            // Straggler hedging: the shard finished, but did it finish
            // *late*? The deadline is the *whole stage's* modeled cost
            // on this device times the lateness threshold — deliberately
            // unscaled by the shard's row fraction, so neither ordinary
            // model error nor the fixed per-launch overhead (which does
            // not shrink with shard size) can trip it; only a genuinely
            // pathological shard (slowdown window, retry storm) can. A
            // straggler gets a speculative re-execution on the
            // modeled-cheapest other live device; the race resolves in
            // modeled-parallel time — the backup launches the moment the
            // primary crossed its deadline, so it finishes at `deadline
            // + d_backup` — and the loser's clock is capped at the
            // winner's finish (cancellation). Duplicate cycles land in
            // `wasted_cycles`, charged against `limits` like retry
            // waste.
            if let Some(h) = hedge {
                let part_rows: usize = part.iter().map(|r| r.len()).sum();
                let modeled_row = h.modeled.get(sidx);
                let modeled_p = modeled_row
                    .and_then(|row| row.get(wdev))
                    .copied()
                    .unwrap_or(f64::INFINITY);
                let deadline = modeled_p * h.threshold;
                if part_rows > 0 && modeled_p.is_finite() && (observed as f64) > deadline {
                    let backup = (0..n)
                        .filter(|&d| d != wdev && alive[d])
                        .filter(|&d| modeled_row.is_some_and(|row| row[d].is_finite()))
                        .min_by(|&a, &b| {
                            let row = modeled_row.expect("filtered on modeled_row");
                            row[a].total_cmp(&row[b])
                        });
                    let affordable = backup.is_some_and(|b| {
                        let modeled_b = (modeled_row.expect("backup implies row")[b]).ceil() as u64;
                        limits
                            .max_cycles
                            .is_none_or(|budget| total + stats.wasted_cycles + modeled_b <= budget)
                    });
                    if let (Some(b), true) = (backup, affordable) {
                        stats.hedges += 1;
                        let b0 = ctxs[b].sim.clock();
                        match run_shard_on_device(
                            &mut ctxs[b],
                            plan,
                            &irs[b],
                            stage,
                            &assignment.configs[b].stages[sidx],
                            mode,
                            &hts[b],
                            part,
                            recovery,
                            limits,
                            total,
                            &mut stats,
                            false,
                        ) {
                            Ok(bout) => {
                                let d_backup = ctxs[b].sim.clock().saturating_sub(b0);
                                let launch = deadline.ceil() as u64;
                                assert_eq!(
                                    shard_out_digest(&out),
                                    shard_out_digest(&bout),
                                    "hedged backup diverged from primary"
                                );
                                if launch + d_backup < observed {
                                    // Backup wins: cancel the straggling
                                    // primary at the backup's finish.
                                    stats.hedge_wins += 1;
                                    ctxs[wdev].sim.cap_clock(p0 + launch + d_backup);
                                    stats.wasted_cycles +=
                                        ctxs[wdev].sim.clock().saturating_sub(p0);
                                    wdev = b;
                                    out = bout;
                                } else {
                                    // Primary wins: cancel the backup at
                                    // the primary's finish.
                                    let spent_b = d_backup.min(observed.saturating_sub(launch));
                                    ctxs[b].sim.cap_clock(b0 + spent_b);
                                    stats.wasted_cycles += spent_b;
                                }
                            }
                            Err(ExecError::DeviceLost(_)) => {
                                // The backup's device died mid-
                                // speculation; the primary stands.
                                alive[b] = false;
                                stats.wasted_cycles += ctxs[b].sim.clock().saturating_sub(b0);
                            }
                            Err(e @ (ExecError::Timeout { .. } | ExecError::Cancelled)) => {
                                return Err(e)
                            }
                            Err(_) => {
                                // Any other backup failure leaves the
                                // verified primary result standing.
                                stats.wasted_cycles += ctxs[b].sim.clock().saturating_sub(b0);
                            }
                        }
                    }
                }
            }

            let (profile, built, agg) = out;
            stage_profiles[wdev].merge(&profile);
            if let Some((slot, t)) = built {
                ht_slot = Some(slot);
                shard_builds.push(t);
            }
            if let Some(a) = agg {
                shard_aggs.push(a);
            }
        }

        // Deterministic merge of the blocking-terminal state.
        match &stage.terminal {
            Terminal::HashBuild { payloads, .. } => {
                let slot = ht_slot.expect("build stage produced tables");
                let mut entries: Vec<(i64, Vec<i64>)> = shard_builds
                    .drain(..)
                    .flat_map(SimHashTable::into_entries)
                    .collect();
                entries.sort_unstable_by_key(|(k, _)| *k);
                for w in entries.windows(2) {
                    assert_ne!(w[0].0, w[1].0, "build key in two shards");
                }
                // Broadcast the merged table to every live device at its
                // copy bandwidth so the next stage can probe locally.
                let mut sink = Vec::new();
                for d in (0..n).filter(|&d| alive[d]) {
                    let mut t = SimHashTable::new(
                        &mut ctxs[d].sim.mem,
                        entries.len().max(1),
                        payloads.len(),
                        format!("{}::ht{}@{d}", plan.query.name(), slot),
                    );
                    for (k, p) in &entries {
                        sink.clear();
                        t.insert(*k, p, &mut sink);
                    }
                    let bw = broadcast_bandwidth(ctxs[d].sim.spec());
                    ctxs[d].sim.advance(t.bytes() / bw + 64);
                    hts[d][slot] = Some(Rc::new(RefCell::new(t)));
                }
            }
            Terminal::Aggregate { .. } => {
                let mut it = shard_aggs.drain(..);
                let mut merged = it.next().expect("aggregate stage produced stores");
                let mut gathered = 0u64;
                for s in it {
                    gathered += s.bytes();
                    merged.absorb(s);
                }
                // Gather charge on the stage's primary device.
                let bw = broadcast_bandwidth(ctxs[primary].sim.spec());
                ctxs[primary].sim.advance(gathered / bw);
                agg_store = Some(merged);
            }
        }

        let wall = ctxs
            .iter()
            .zip(&c_start)
            .map(|(c, &s)| c.sim.clock().saturating_sub(s))
            .max()
            .unwrap_or(0);
        total += wall;
        stage_cycles.push(wall);
        for (d, p) in stage_profiles.into_iter().enumerate() {
            dev_stages[d].push(p);
        }
    }

    let store = agg_store.expect("plan must end in an aggregate stage");
    let mut rows = store.into_rows();
    limits.check(total + stats.wasted_cycles)?;
    if !plan.order_by.is_empty() {
        // The sort runs on the final stage's primary device, disarmed
        // like the single-device path: the output path cannot fault.
        let ctx = &mut ctxs[primary];
        let c0 = ctx.sim.clock();
        let was_armed = ctx.sim.faults_armed();
        ctx.sim.set_faults_armed(false);
        let prof = run_sort_kernel(ctx, &mut rows, &plan.order_by);
        ctx.sim.set_faults_armed(was_armed);
        let wall = ctx.sim.clock().saturating_sub(c0);
        total += wall;
        stage_cycles.push(wall);
        dev_stages[primary].push(prof);
    } else {
        sort_rows(&mut rows, &[]);
    }
    limits.check(total + stats.wasted_cycles)?;
    if let Some(limit) = plan.limit {
        rows.truncate(limit);
    }
    if let Some(proj) = &plan.projection {
        rows = rows
            .into_iter()
            .map(|r| proj.iter().map(|&i| r[i]).collect())
            .collect();
    }

    let output = QueryOutput::new(
        plan.output_columns.iter().map(String::as_str).collect(),
        rows,
    );
    let per_device = ctxs
        .iter()
        .enumerate()
        .map(|(d, c)| DeviceRun {
            device: pool.devices()[d].spec.name.clone(),
            kind: pool.devices()[d].kind,
            cycles: c.sim.clock(),
            per_stage: std::mem::take(&mut dev_stages[d]),
            lost: !alive[d],
        })
        .collect();
    Ok(ShardedRun {
        output,
        cycles: total,
        stage_cycles,
        per_device,
        recovery: stats,
    })
}

/// Device-level copy bandwidth used to charge merge broadcasts/gathers:
/// the per-CU miss-path stream rate times the CU count.
fn broadcast_bandwidth(spec: &DeviceSpec) -> u64 {
    (spec.mem_bytes_per_cycle * spec.num_cus as u64).max(1)
}

/// One shard on one device, through the recovery ladder: `1 +
/// max_retries` attempts per mode down the degradation chain with
/// deterministic backoff on this device's clock, then — when this is
/// the shard's last candidate device — a disarmed last-resort KBE
/// attempt. Device loss returns early so the caller can reassign.
#[allow(clippy::too_many_arguments)]
fn run_shard_on_device(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    ir: &SegmentIr,
    stage: &Stage,
    cfg: &StageConfig,
    mode: ExecMode,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    part: &[Range<usize>],
    recovery: Option<&RecoveryPolicy>,
    limits: &ExecLimits,
    spent: u64,
    stats: &mut RecoveryStats,
    last_resort_here: bool,
) -> Result<ShardOut, ExecError> {
    let Some(policy) = recovery else {
        return run_shard_attempt(ctx, plan, ir, stage, cfg, mode, hts, part);
    };
    let ladder = policy.ladder(mode);
    let mut last_err: Option<ExecError> = None;
    let mut first = true;
    'modes: for &m in &ladder {
        for attempt in 0..=policy.max_retries {
            if !first {
                if attempt == 0 {
                    stats.fallbacks += 1;
                    stats.degraded_to = Some(m);
                } else {
                    stats.retries += 1;
                    let delay = policy.backoff_for(attempt);
                    ctx.sim.advance(delay);
                    stats.backoff_cycles += delay;
                    stats.wasted_cycles += delay;
                }
            }
            first = false;
            limits.check(spent + stats.wasted_cycles)?;
            let c0 = ctx.sim.clock();
            match run_shard_attempt(ctx, plan, ir, stage, cfg, m, hts, part) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    let device_lost = matches!(e, ExecError::DeviceLost(_));
                    match &e {
                        ExecError::Fault(record)
                        | ExecError::Oom(record)
                        | ExecError::DeviceLost(record) => {
                            stats.wasted_cycles += ctx.sim.clock().saturating_sub(c0);
                            stats.faults.push(record.clone());
                            last_err = Some(e);
                        }
                        // Query problems, not device problems.
                        _ => return Err(e),
                    }
                    if device_lost {
                        break 'modes;
                    }
                }
            }
        }
    }
    let lost = matches!(last_err, Some(ExecError::DeviceLost(_)));
    if policy.fallback && (last_resort_here || !lost) {
        stats.fallbacks += 1;
        stats.degraded_to = Some(ExecMode::Kbe);
        let was_armed = ctx.sim.faults_armed();
        ctx.sim.set_faults_armed(false);
        let result = run_shard_attempt(ctx, plan, ir, stage, cfg, ExecMode::Kbe, hts, part);
        ctx.sim.set_faults_armed(was_armed);
        return result;
    }
    Err(last_err.expect("at least one attempt ran"))
}

/// One attempt at one shard: fresh blocking outputs, every range of the
/// shard's partition accumulated into them, terminal state handed back
/// *owned* for the merge. Mirrors `exec::run_stage_attempt` with the
/// leaf scan restricted to the shard's ranges. `GplPipelined` executes
/// like `Gpl` (see [`try_run_query_sharded`]). Also the slice-attempt
/// primitive of checkpoint resume (`exec::run_stage_checkpointed`),
/// with `part` a single checkpoint slice.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shard_attempt(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    ir: &SegmentIr,
    stage: &Stage,
    cfg: &StageConfig,
    mode: ExecMode,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    part: &[Range<usize>],
) -> Result<ShardOut, ExecError> {
    debug_assert!(!ctx.sim.fault_pending(), "stale fault entering a shard");
    let (build, agg) = make_blocking_outputs(ctx, plan, stage);
    let build_rc = build.as_ref().map(|(_, t)| t);
    let mut profile = LaunchProfile::default();
    for range in part {
        let p = match mode {
            ExecMode::Kbe => {
                kbe::run_stage_range(ctx, ir, stage, hts, build_rc, agg.as_ref(), range.clone())
            }
            ExecMode::GplNoCe => {
                let tiling = Tiling::by_bytes(range.len(), ir.row_bytes, cfg.tile_bytes);
                let mut p = LaunchProfile::default();
                for tile in tiling.iter() {
                    p.merge(&kbe::run_stage_range(
                        ctx,
                        ir,
                        stage,
                        hts,
                        build_rc,
                        agg.as_ref(),
                        range.start + tile.start..range.start + tile.end,
                    ));
                }
                p
            }
            ExecMode::Gpl | ExecMode::GplPipelined => gpl::run_stage_range(
                ctx,
                ir,
                stage,
                hts,
                build_rc,
                agg.as_ref(),
                cfg,
                range.clone(),
            )?,
        };
        profile.merge(&p);
        if let Some(record) = ctx.sim.take_fault() {
            return Err(ExecError::from_fault(record));
        }
    }
    let built = build.map(|(slot, rc)| {
        (
            slot,
            Rc::try_unwrap(rc)
                .expect("hash table still shared")
                .into_inner(),
        )
    });
    let agg_store = agg.map(|a| {
        Rc::try_unwrap(a)
            .expect("aggregate store still shared")
            .into_inner()
    });
    Ok((profile, built, agg_store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_query, ExecContext};
    use crate::plan::plan_for;
    use gpl_tpch::QueryId;

    #[test]
    fn range_partition_is_balanced_total_disjoint() {
        let parts = Sharder::Range.partition(10, 3);
        assert_eq!(parts, vec![vec![0..4], vec![4..7], vec![7..10]]);
        assert!(Sharder::Range.partition(2, 7)[3..]
            .iter()
            .all(Vec::is_empty));
        assert_eq!(Sharder::Range.partition(0, 4), vec![vec![]; 4]);
    }

    #[test]
    fn hash_partition_covers_and_coalesces() {
        let s = Sharder::Hash { block_rows: 8 };
        let parts = s.partition(100, 3);
        let mut rows: Vec<usize> = parts.iter().flatten().flat_map(|r| r.clone()).collect();
        rows.sort_unstable();
        assert_eq!(rows, (0..100).collect::<Vec<_>>());
        // Coalescing: no shard holds two adjacent ranges.
        for p in &parts {
            for w in p.windows(2) {
                assert!(w[0].end < w[1].start);
            }
        }
    }

    #[test]
    fn pool_keys_and_cache_keys_are_stable() {
        let pool = DevicePool::default_pool();
        assert_eq!(pool.key(), "AMD A10 APU+NVIDIA Tesla K40+Host CPU x86");
        assert_eq!(ShardPlan::range(4).cache_key(), "range:4");
        assert_eq!(
            ShardPlan {
                shards: 2,
                sharder: Sharder::Hash { block_rows: 512 }
            }
            .cache_key(),
            "hash512:2"
        );
    }

    #[test]
    fn sharded_q14_matches_single_device_oracle() {
        let db = Arc::new(gpl_tpch::TpchDb::at_scale(0.002));
        let plan = plan_for(&db, QueryId::Q14);
        let pool = DevicePool::default_pool();
        let assignment = ShardAssignment::round_robin(&pool, &plan);
        let mut ctx = ExecContext::with_shared(gpl_sim::amd_a10(), db.clone());
        let cfg = QueryConfig::default_for(&gpl_sim::amd_a10(), &plan);
        let oracle = run_query(&mut ctx, &plan, ExecMode::Gpl, &cfg);
        for shards in [1, 3] {
            let run = try_run_query_sharded(
                &pool,
                &db,
                &plan,
                ExecMode::Gpl,
                &ShardPlan::range(shards),
                &assignment,
                &ExecLimits::none(),
                None,
                None,
                None,
                None,
            )
            .expect("sharded run succeeds");
            assert_eq!(run.output.rows, oracle.output.rows, "shards={shards}");
            assert!(run.cycles > 0);
            assert_eq!(run.per_device.len(), 3);
        }
    }
}
