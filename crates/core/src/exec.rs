//! Query execution: context, configuration, and the three execution
//! modes of Section 5.1 — KBE, GPL (w/o CE), and full GPL.

use crate::error::ExecError;
use crate::gpl;
use crate::ht::{GroupStore, SimHashTable};
use crate::kbe;
use crate::ops::sort_rows;
use crate::plan::{QueryPlan, Stage, Terminal};
use crate::recover::{RecoveryPolicy, RecoveryStats};
use crate::segment::{overlap_pairs, InterSegmentEdge, SegmentIr};
use gpl_sim::{DeviceSpec, KernelDesc, LaunchProfile, ResourceUsage, Simulator, Work, WorkUnit};
use gpl_storage::{TableLayout, Tiling};
use gpl_tpch::{QueryOutput, TpchDb};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How a plan is executed (Section 5.1's three systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Kernel-based execution: one kernel at a time over the whole input,
    /// intermediates materialized in global memory.
    Kbe,
    /// GPL with tiling but neither concurrent kernels nor channels:
    /// kernels run one at a time per tile (the ablation of Figure 16).
    GplNoCe,
    /// Full GPL: concurrent kernels connected by channels, tiled input.
    Gpl,
    /// Full GPL plus cross-segment pipelining: an eligible build→probe
    /// stage pair runs as one fused launch, the shared hash table
    /// installed and published slice by slice so the probe segment's
    /// leaf (and the early slices' probes) overlap the build terminal.
    /// Stages outside an eligible pair — or pairs whose
    /// [`StageConfig::overlap_slices`] is 0 — run exactly as [`Gpl`].
    GplPipelined,
}

impl ExecMode {
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Kbe => "KBE",
            ExecMode::GplNoCe => "GPL (w/o CE)",
            ExecMode::Gpl => "GPL",
            ExecMode::GplPipelined => "GPL (pipelined)",
        }
    }
}

/// Tunable parameters for one stage's pipelined execution — the knobs the
/// analytical model of Section 4 optimizes.
#[derive(Debug, Clone, PartialEq)]
pub struct StageConfig {
    /// Tile size Δ in bytes of the driving relation.
    pub tile_bytes: u64,
    /// Channels per producer→consumer edge (`n`).
    pub n_channels: u32,
    /// Packet size in bytes (`p`; fixed on NVIDIA).
    pub packet_bytes: u32,
    /// Work-groups per GPL kernel (scan, ops…, terminal). Must have one
    /// entry per kernel of [`Stage::gpl_kernel_names`].
    pub wg_counts: Vec<u32>,
    /// Cross-segment overlap slices (K) when this stage's hash-build
    /// terminal is the producer of an eligible [`InterSegmentEdge`] and
    /// the query runs under [`ExecMode::GplPipelined`]: 0 disables the
    /// overlap (the pair runs sequentially — the default), K ≥ 1 splits
    /// the installation into K published slices. Ignored elsewhere.
    pub overlap_slices: u32,
}

impl StageConfig {
    /// The paper's default configuration: 1 MB tiles (Section 5.2 notes
    /// the default tile size is 1 MB), 4 channels, 16-byte packets, and a
    /// uniform work-group allocation.
    pub fn default_for(spec: &DeviceSpec, stage: &Stage) -> Self {
        let kernels = stage.gpl_kernel_names().len();
        StageConfig {
            tile_bytes: 1 << 20,
            n_channels: 4,
            packet_bytes: spec.channel.fixed_packet_bytes,
            wg_counts: vec![4 * spec.num_cus; kernels],
            overlap_slices: 0,
        }
    }
}

/// Per-stage configuration for a whole plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryConfig {
    pub stages: Vec<StageConfig>,
}

impl QueryConfig {
    pub fn default_for(spec: &DeviceSpec, plan: &QueryPlan) -> Self {
        QueryConfig {
            stages: plan
                .stages
                .iter()
                .map(|s| StageConfig::default_for(spec, s))
                .collect(),
        }
    }

    /// Set the overlap-slice knob on every stage (the scheduler only
    /// reads it on the build stage of an eligible pair). Builder-style,
    /// for tests and benchmarks.
    pub fn with_overlap_slices(mut self, k: u32) -> Self {
        for s in &mut self.stages {
            s.overlap_slices = k;
        }
        self
    }
}

/// Device + installed database: the execution context shared by all
/// engines. Table columns are mapped into simulated memory once.
pub struct ExecContext {
    pub sim: Simulator,
    pub db: Arc<TpchDb>,
    layouts: HashMap<String, TableLayout>,
}

impl ExecContext {
    pub fn new(spec: DeviceSpec, db: TpchDb) -> Self {
        Self::with_shared(spec, Arc::new(db))
    }

    /// Build a context over an already-shared database. Worker threads in
    /// the serving layer each call this with a clone of one `Arc<TpchDb>`:
    /// the (large, immutable) column data is shared, while the simulator
    /// and its memory map — the mutable, per-query state — stay private
    /// to the worker. `TableLayout::install` only allocates simulated
    /// regions; it copies no data, so per-worker setup is cheap.
    pub fn with_shared(spec: DeviceSpec, db: Arc<TpchDb>) -> Self {
        let mut sim = Simulator::new(spec);
        let mut layouts = HashMap::new();
        for t in db.tables() {
            layouts.insert(t.name().to_string(), TableLayout::install(&mut sim.mem, t));
        }
        ExecContext { sim, db, layouts }
    }

    pub fn layout(&self, table: &str) -> &TableLayout {
        self.layouts
            .get(table)
            .unwrap_or_else(|| panic!("table {table:?} not installed"))
    }

    pub fn spec(&self) -> DeviceSpec {
        self.sim.spec().clone()
    }

    /// Launch a set of kernels on this context's simulator, surfacing a
    /// pipeline stall as a structured [`ExecError::Deadlock`] instead of
    /// panicking. This is the seam the GPL engine and the failure-mode
    /// tests use to exercise the error path.
    pub fn run_kernels(&mut self, kernels: Vec<KernelDesc>) -> Result<LaunchProfile, ExecError> {
        self.sim.try_run(kernels).map_err(ExecError::from)
    }
}

/// Runtime limits for one query execution, checked at stage boundaries.
///
/// Both limits are expressed in *deterministic* units — simulated device
/// cycles and an explicit flag — never wall-clock time, so a limited run
/// produces the same outcome on a loaded laptop and an idle server.
#[derive(Debug, Clone, Default)]
pub struct ExecLimits {
    /// Abort with [`ExecError::Timeout`] once the query's simulated
    /// cycles exceed this budget. `None` = unlimited.
    pub max_cycles: Option<u64>,
    /// Abort with [`ExecError::Cancelled`] when this flag is raised.
    /// Checked before every stage, so cancellation latency is bounded by
    /// one stage, not one query.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl ExecLimits {
    pub fn none() -> Self {
        Self::default()
    }

    pub fn with_max_cycles(max_cycles: u64) -> Self {
        ExecLimits {
            max_cycles: Some(max_cycles),
            cancel: None,
        }
    }

    pub(crate) fn check(&self, spent: u64) -> Result<(), ExecError> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(ExecError::Cancelled);
            }
        }
        if let Some(budget) = self.max_cycles {
            if spent > budget {
                return Err(ExecError::Timeout {
                    budget_cycles: budget,
                    spent_cycles: spent,
                });
            }
        }
        Ok(())
    }
}

/// The result of running a query on the simulator.
#[derive(Debug, Clone)]
pub struct QueryRun {
    pub output: QueryOutput,
    /// Simulated cycles for the whole query: all successful launches
    /// plus any cycles wasted on failed attempts and backoff
    /// (`recovery.wasted_cycles`; zero on a fault-free run).
    pub cycles: u64,
    /// Merged profile across all successful launches.
    pub profile: LaunchProfile,
    /// Per-stage merged profiles, in stage order (the final sort, if any,
    /// is appended as an extra entry).
    pub per_stage: Vec<LaunchProfile>,
    /// What the recovery stack did (default on a fault-free run).
    pub recovery: RecoveryStats,
}

impl QueryRun {
    /// Wall-clock milliseconds at the device clock rate.
    pub fn ms(&self, spec: &DeviceSpec) -> f64 {
        spec.cycles_to_ms(self.cycles)
    }
}

/// Run `plan` under `mode` with `config`, panicking on execution errors.
///
/// This is the single-query entry point used by benchmarks and tests,
/// where a deadlock is a bug worth aborting on. Servers should call
/// [`try_run_query`], which keeps the process alive and the diagnostic
/// intact.
pub fn run_query(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    mode: ExecMode,
    config: &QueryConfig,
) -> QueryRun {
    try_run_query(ctx, plan, mode, config, &ExecLimits::none()).unwrap_or_else(|e| panic!("{e}"))
}

/// Run `plan` under `mode` with `config`, subject to `limits`, with no
/// recovery: the first injected fault (if a fault plan is attached)
/// surfaces as an error. See [`try_run_query_recovering`].
///
/// Errors leave the context usable for the next query: the simulator's
/// clock and memory map survive, and the serving layer discards the
/// per-query state (hash tables, aggregate stores) with the locals here.
pub fn try_run_query(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    mode: ExecMode,
    config: &QueryConfig,
    limits: &ExecLimits,
) -> Result<QueryRun, ExecError> {
    try_run_query_recovering(ctx, plan, mode, config, limits, None)
}

/// A stage's blocking output, handed back only on success so a retried
/// attempt can never observe (or double-apply into) a failed attempt's
/// partial state.
type StageOut = (
    LaunchProfile,
    Option<(usize, Rc<RefCell<SimHashTable>>)>,
    Option<Vec<Vec<i64>>>,
);

/// [`try_run_query`] with the recovery stack enabled: per-stage retries
/// with deterministic exponential backoff, graceful degradation down the
/// GPL → GPL-w/o-CE → KBE ladder, and a disarmed last-resort KBE attempt
/// (see [`crate::recover`]). `recovery: None` disables recovery.
///
/// Recovered runs return bit-identical rows to fault-free runs — faults
/// cost cycles (`QueryRun::recovery.wasted_cycles`), never correctness.
pub fn try_run_query_recovering(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    mode: ExecMode,
    config: &QueryConfig,
    limits: &ExecLimits,
    recovery: Option<&RecoveryPolicy>,
) -> Result<QueryRun, ExecError> {
    plan.validate();
    assert_eq!(
        config.stages.len(),
        plan.stages.len(),
        "config/stage count mismatch"
    );
    ctx.sim.reset_footprint();
    // Observability: one query span, with a child span per stage carrying
    // the chosen StageConfig. Timestamped in device cycles; gated on the
    // simulator's recorder so disabled runs pay a branch, not allocations.
    let rec = ctx.sim.recorder().cloned();
    let query_span = rec.as_ref().map(|r| {
        let t = r.track("exec");
        let s = r.begin(t, "exec", plan.query.name(), ctx.sim.clock());
        r.arg(s, "mode", mode.name());
        r.arg(s, "stages", plan.stages.len());
        s
    });
    let mut hts: Vec<Option<Rc<RefCell<SimHashTable>>>> = vec![None; plan.num_hts];
    let mut agg_rows: Option<Vec<Vec<i64>>> = None;
    let mut per_stage = Vec::new();
    let mut merged = LaunchProfile::default();
    let mut stats = RecoveryStats::default();

    // Under GPL-pipelined, eligible build→probe pairs with a non-zero
    // overlap knob run fused; everything else takes the per-stage path.
    let pairs = if mode == ExecMode::GplPipelined {
        overlap_pairs(&plan.stages)
    } else {
        Vec::new()
    };
    let mut idx = 0;
    while idx < plan.stages.len() {
        limits.check(merged.elapsed_cycles + stats.wasted_cycles)?;
        if let Some(pair) = pairs
            .iter()
            .find(|p| p.build_stage == idx && config.stages[p.build_stage].overlap_slices > 0)
        {
            run_pair_recovering(
                ctx,
                plan,
                pair,
                config,
                &mut hts,
                &mut agg_rows,
                recovery,
                limits,
                &mut stats,
                rec.as_ref(),
                &mut merged,
                &mut per_stage,
            )?;
            idx += 2;
            continue;
        }
        let (stage, cfg) = (&plan.stages[idx], &config.stages[idx]);
        // Lower the stage once; every consumer below — mode dispatch,
        // span naming, both executors — reads this one IR.
        let ir = SegmentIr::lower(
            stage,
            ctx.db.table(&stage.driver),
            ctx.sim.spec().wavefront_size,
        );
        let stage_span = rec.as_ref().map(|r| {
            let t = r.track("exec");
            let s = r.begin(
                t,
                "stage",
                format!("stage{idx}:{}", ir.driver),
                ctx.sim.clock(),
            );
            r.arg(s, "tile_bytes", cfg.tile_bytes);
            r.arg(s, "n_channels", cfg.n_channels);
            r.arg(s, "packet_bytes", cfg.packet_bytes);
            r.arg(s, "kernels", ir.nodes.len());
            s
        });
        let spent = merged.elapsed_cycles;
        let ((profile, built, rows_out), ran_on) = run_stage_recovering(
            ctx,
            plan,
            &ir,
            stage,
            cfg,
            mode,
            &hts,
            recovery,
            limits,
            spent,
            &mut stats,
            rec.as_ref(),
        )?;
        // Install the blocking outputs only now, on success: a failed
        // attempt's partial hash table or aggregate store is dropped
        // with its locals and can never leak into a retry.
        if let Some((slot, ht)) = built {
            hts[slot] = Some(ht);
        }
        if let Some(rows) = rows_out {
            agg_rows = Some(rows);
        }
        if let (Some(r), Some(s)) = (rec.as_ref(), stage_span) {
            if ran_on != mode {
                r.arg(s, "degraded_to", ran_on.name());
            }
            r.arg(s, "stage_cycles", profile.elapsed_cycles);
            r.end(s, ctx.sim.clock());
        }
        merged.merge(&profile);
        per_stage.push(profile);
        idx += 1;
    }

    let mut rows = agg_rows.expect("plan must end in an aggregate stage");
    limits.check(merged.elapsed_cycles + stats.wasted_cycles)?;
    // Final ORDER BY, as a (blocking) sort kernel, then LIMIT. The sort
    // runs over host-side result rows, outside the fault domain: disarm
    // injection so the output path cannot strand a pending fault.
    if !plan.order_by.is_empty() {
        let was_armed = ctx.sim.faults_armed();
        ctx.sim.set_faults_armed(false);
        let prof = run_sort_kernel(ctx, &mut rows, &plan.order_by);
        ctx.sim.set_faults_armed(was_armed);
        merged.merge(&prof);
        per_stage.push(prof);
    } else {
        sort_rows(&mut rows, &[]);
    }
    // The final budget check: a query landing *exactly* on its budget
    // succeeds (`spent > budget` times out, `spent == budget` passes) —
    // the boundary `tests/fault_recovery.rs` pins at 1/2/8 workers.
    limits.check(merged.elapsed_cycles + stats.wasted_cycles)?;
    if let Some(limit) = plan.limit {
        rows.truncate(limit);
    }
    if let Some(proj) = &plan.projection {
        rows = rows
            .into_iter()
            .map(|r| proj.iter().map(|&i| r[i]).collect())
            .collect();
    }

    if let (Some(r), Some(s)) = (rec.as_ref(), query_span) {
        r.arg(s, "cycles", merged.elapsed_cycles);
        if stats.eventful() {
            r.arg(s, "faults", stats.faults.len());
            r.arg(s, "retries", stats.retries);
            r.arg(s, "fallbacks", stats.fallbacks);
            r.arg(s, "wasted_cycles", stats.wasted_cycles);
        }
        r.end(s, ctx.sim.clock());
    }
    let output = QueryOutput::new(
        plan.output_columns.iter().map(String::as_str).collect(),
        rows,
    );
    Ok(QueryRun {
        output,
        cycles: merged.elapsed_cycles + stats.wasted_cycles,
        profile: merged,
        per_stage,
        recovery: stats,
    })
}

/// One attempt at one stage on one mode. Fresh blocking outputs (hash
/// table / aggregate store) are created *per attempt*; the caller
/// installs them into the query's state only on success. An injected
/// fault surfaces as the corresponding [`ExecError`] variant.
fn run_stage_attempt(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    ir: &SegmentIr,
    stage: &Stage,
    cfg: &StageConfig,
    mode: ExecMode,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
) -> Result<StageOut, ExecError> {
    debug_assert!(!ctx.sim.fault_pending(), "stale fault entering a stage");
    let (build, agg) = make_blocking_outputs(ctx, plan, stage);

    let rows = ctx.db.table(&stage.driver).rows();
    let build_rc = build.as_ref().map(|(_, t)| t);
    let profile = match mode {
        ExecMode::Kbe => kbe::run_stage_range(ctx, ir, stage, hts, build_rc, agg.as_ref(), 0..rows),
        ExecMode::GplNoCe => {
            let tiling = Tiling::by_bytes(rows, ir.row_bytes, cfg.tile_bytes);
            let mut p = LaunchProfile::default();
            for tile in tiling.iter() {
                p.merge(&kbe::run_stage_range(
                    ctx,
                    ir,
                    stage,
                    hts,
                    build_rc,
                    agg.as_ref(),
                    tile,
                ));
            }
            p
        }
        // A lone stage has no pair to overlap with: pipelined mode runs
        // the plain GPL pipeline.
        ExecMode::Gpl | ExecMode::GplPipelined => {
            gpl::run_stage(ctx, ir, stage, hts, build_rc, agg.as_ref(), cfg)?
        }
    };
    if let Some(record) = ctx.sim.take_fault() {
        return Err(ExecError::from_fault(record));
    }
    let agg_rows = agg.map(|a| {
        Rc::try_unwrap(a)
            .expect("aggregate store still shared")
            .into_inner()
            .into_rows()
    });
    Ok((profile, build, agg_rows))
}

/// Fresh blocking outputs (hash table / aggregate store) for one attempt
/// at `stage` — created per attempt so a failed attempt's partial state
/// drops with its locals.
#[allow(clippy::type_complexity)]
pub(crate) fn make_blocking_outputs(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    stage: &Stage,
) -> (
    Option<(usize, Rc<RefCell<SimHashTable>>)>,
    Option<Rc<RefCell<GroupStore>>>,
) {
    let build = match &stage.terminal {
        Terminal::HashBuild { ht, payloads, .. } => {
            let expected = estimate_build_rows(ctx, stage);
            Some((
                *ht,
                Rc::new(RefCell::new(SimHashTable::new(
                    &mut ctx.sim.mem,
                    expected,
                    payloads.len(),
                    format!("{}::ht{}", plan.query.name(), ht),
                ))),
            ))
        }
        Terminal::Aggregate { .. } => None,
    };
    let agg = match &stage.terminal {
        Terminal::Aggregate { groups, aggs } => {
            Some(Rc::new(RefCell::new(GroupStore::with_kinds(
                &mut ctx.sim.mem,
                if groups.is_empty() { 1 } else { 4096 },
                groups.len(),
                aggs.iter().map(|a| a.kind).collect(),
                format!("{}::agg", plan.query.name()),
            ))))
        }
        Terminal::HashBuild { .. } => None,
    };
    (build, agg)
}

/// One fused attempt at an overlapped pair: both segments' kernels in a
/// single launch, the shared hash table installed slice by slice and
/// published through the inter-segment channel. Fresh blocking outputs
/// per attempt, exactly like [`run_stage_attempt`] — so a mid-overlap
/// fault can never double-publish or drop a slice: the retried attempt
/// starts from nothing installed and nothing published.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_pair_attempt(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    edge: &InterSegmentEdge,
    ir_b: &SegmentIr,
    cfg_b: &StageConfig,
    ir_p: &SegmentIr,
    cfg_p: &StageConfig,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
) -> Result<
    (
        LaunchProfile,
        Vec<(usize, Rc<RefCell<SimHashTable>>)>,
        Option<Vec<Vec<i64>>>,
    ),
    ExecError,
> {
    debug_assert!(!ctx.sim.fault_pending(), "stale fault entering a pair");
    let (stage_b, stage_p) = (
        &plan.stages[edge.build_stage],
        &plan.stages[edge.probe_stage],
    );
    let (shared_build, _) = make_blocking_outputs(ctx, plan, stage_b);
    let (slot, shared) = shared_build.expect("pair build stage ends in a hash build");
    debug_assert_eq!(slot, edge.ht, "pair edge names the built table");
    let (build_p, agg) = make_blocking_outputs(ctx, plan, stage_p);
    let profile = gpl::run_overlapped_pair(
        ctx,
        edge,
        ir_b,
        stage_b,
        cfg_b,
        ir_p,
        stage_p,
        cfg_p,
        hts,
        &shared,
        build_p.as_ref().map(|(_, t)| t),
        agg.as_ref(),
    )?;
    if let Some(record) = ctx.sim.take_fault() {
        return Err(ExecError::from_fault(record));
    }
    let mut built = vec![(slot, shared)];
    if let Some((s, t)) = build_p {
        built.push((s, t));
    }
    let agg_rows = agg.map(|a| {
        Rc::try_unwrap(a)
            .expect("aggregate store still shared")
            .into_inner()
            .into_rows()
    });
    Ok((profile, built, agg_rows))
}

/// Drive one eligible pair through the pipelined scheduler: fused
/// attempts with the policy's retry budget and deterministic backoff,
/// then degradation to the *sequential* pair — the two stages run one
/// after the other through the normal recovery ladder starting at GPL.
/// Installs blocking outputs into `hts`/`agg_rows` only on success, and
/// merges profiles (the fused launch is split back into per-stage views
/// by segment tag so `QueryRun::per_stage` keeps one entry per stage).
#[allow(clippy::too_many_arguments)]
fn run_pair_recovering(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    pair: &InterSegmentEdge,
    config: &QueryConfig,
    hts: &mut [Option<Rc<RefCell<SimHashTable>>>],
    agg_rows: &mut Option<Vec<Vec<i64>>>,
    recovery: Option<&RecoveryPolicy>,
    limits: &ExecLimits,
    stats: &mut RecoveryStats,
    rec: Option<&gpl_obs::Recorder>,
    merged: &mut LaunchProfile,
    per_stage: &mut Vec<LaunchProfile>,
) -> Result<ExecMode, ExecError> {
    let (bi, pi) = (pair.build_stage, pair.probe_stage);
    let (stage_b, stage_p) = (&plan.stages[bi], &plan.stages[pi]);
    let (cfg_b, cfg_p) = (&config.stages[bi], &config.stages[pi]);
    let wf = ctx.sim.spec().wavefront_size;
    let ir_b = SegmentIr::lower(stage_b, ctx.db.table(&stage_b.driver), wf);
    let ir_p = SegmentIr::lower(stage_p, ctx.db.table(&stage_p.driver), wf);
    // Slice volume: the expected table size split K ways.
    let Terminal::HashBuild { payloads, .. } = &stage_b.terminal else {
        unreachable!("pair build stage must end in a hash build");
    };
    let expected = estimate_build_rows(ctx, stage_b) as u64;
    let table_bytes = expected * 8 * (1 + payloads.len() as u64);
    let edge = pair.clone().with_slices(cfg_b.overlap_slices, table_bytes);

    let span = rec.map(|r| {
        let t = r.track("exec");
        let s = r.begin(
            t,
            "stage",
            format!("stage{bi}+{pi}:{}+{}", ir_b.driver, ir_p.driver),
            ctx.sim.clock(),
        );
        r.arg(s, "overlap_slices", edge.slices);
        r.arg(s, "slice_bytes", edge.slice_bytes);
        r.arg(s, "kernels", ir_b.nodes.len() + ir_p.nodes.len());
        s
    });
    let instant = |name: &str, args: Vec<(&'static str, gpl_obs::Value)>, ctx: &ExecContext| {
        if let Some(r) = rec {
            let t = r.track("recover");
            r.instant(t, "recover", name, ctx.sim.clock(), args);
        }
    };
    let spent = merged.elapsed_cycles;
    let max_retries = recovery.map(|p| p.max_retries).unwrap_or(0);
    for attempt in 0..=max_retries {
        if attempt > 0 {
            let policy = recovery.expect("retries imply a policy");
            stats.retries += 1;
            let delay = policy.backoff_for(attempt);
            ctx.sim.advance(delay);
            stats.backoff_cycles += delay;
            stats.wasted_cycles += delay;
            instant(
                "retry",
                vec![
                    ("attempt", gpl_obs::Value::from(attempt)),
                    ("backoff_cycles", gpl_obs::Value::from(delay)),
                ],
                ctx,
            );
        }
        limits.check(spent + stats.wasted_cycles)?;
        let c0 = ctx.sim.clock();
        match run_pair_attempt(ctx, plan, &edge, &ir_b, cfg_b, &ir_p, cfg_p, hts) {
            Ok((profile, built, rows)) => {
                for (slot, t) in built {
                    hts[slot] = Some(t);
                }
                if let Some(rows) = rows {
                    *agg_rows = Some(rows);
                }
                if let Some(r) = rec {
                    // The measured overlap window: where the two
                    // segments' kernel activity intersects.
                    if let (Some((a0, a1)), Some((b0, b1))) =
                        (profile.segment_window(0), profile.segment_window(1))
                    {
                        let (lo, hi) = (a0.max(b0), a1.min(b1));
                        if lo < hi {
                            let t = r.track("exec");
                            r.span(
                                t,
                                "overlap",
                                format!("overlap:slices={}", edge.slices),
                                lo,
                                hi,
                                vec![("cycles", gpl_obs::Value::from(hi - lo))],
                            );
                        }
                    }
                    if let Some(s) = span {
                        r.arg(s, "stage_cycles", profile.elapsed_cycles);
                        r.end(s, ctx.sim.clock());
                    }
                }
                merged.merge(&profile);
                per_stage.extend(profile.split_by_segment(&[0, 1]));
                return Ok(ExecMode::GplPipelined);
            }
            Err(e) => {
                let (record, lost) = match &e {
                    ExecError::Fault(r) | ExecError::Oom(r) => (r.clone(), false),
                    ExecError::DeviceLost(r) => (r.clone(), true),
                    // Query problems, not device problems: propagate.
                    _ => return Err(e),
                };
                stats.wasted_cycles += ctx.sim.clock().saturating_sub(c0);
                instant(
                    "fault",
                    vec![
                        ("kind", gpl_obs::Value::from(record.kind.name())),
                        ("launch", gpl_obs::Value::from(record.launch)),
                    ],
                    ctx,
                );
                stats.faults.push(record);
                if recovery.is_none() {
                    return Err(e);
                }
                if lost {
                    break;
                }
            }
        }
    }
    let policy = recovery.expect("fused attempts exhausted implies a policy");
    // Degrade to the sequential pair: both stages one after the other,
    // each down the normal ladder starting at GPL.
    stats.fallbacks += 1;
    stats.degraded_to = Some(ExecMode::Gpl);
    instant(
        "fallback",
        vec![("to", gpl_obs::Value::from("GPL (sequential pair)"))],
        ctx,
    );
    let mut ran = ExecMode::Gpl;
    for (ir, stage, cfg) in [(&ir_b, stage_b, cfg_b), (&ir_p, stage_p, cfg_p)] {
        let spent = merged.elapsed_cycles;
        let ((profile, built, rows), ran_on) = run_stage_recovering(
            ctx,
            plan,
            ir,
            stage,
            cfg,
            ExecMode::Gpl,
            hts,
            Some(policy),
            limits,
            spent,
            stats,
            rec,
        )?;
        if let Some((slot, t)) = built {
            hts[slot] = Some(t);
        }
        if let Some(rows) = rows {
            *agg_rows = Some(rows);
        }
        merged.merge(&profile);
        per_stage.push(profile);
        ran = ran_on;
    }
    if let (Some(r), Some(s)) = (rec, span) {
        r.arg(s, "degraded_to", ran.name());
        r.end(s, ctx.sim.clock());
    }
    Ok(ran)
}

/// Drive one stage through the recovery ladder (see [`crate::recover`]):
/// `1 + max_retries` attempts per mode down the degradation chain, with
/// deterministic backoff between same-mode attempts, then one disarmed
/// last-resort KBE attempt. Device loss skips what is left of the armed
/// ladder. Timeouts, cancellations and deadlocks propagate immediately.
#[allow(clippy::too_many_arguments)]
fn run_stage_recovering(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    ir: &SegmentIr,
    stage: &Stage,
    cfg: &StageConfig,
    mode: ExecMode,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    recovery: Option<&RecoveryPolicy>,
    limits: &ExecLimits,
    spent: u64,
    stats: &mut RecoveryStats,
    rec: Option<&gpl_obs::Recorder>,
) -> Result<(StageOut, ExecMode), ExecError> {
    let Some(policy) = recovery else {
        return Ok((
            run_stage_attempt(ctx, plan, ir, stage, cfg, mode, hts)?,
            mode,
        ));
    };
    if policy.checkpoint_slices >= 2 {
        return run_stage_checkpointed(
            ctx, plan, ir, stage, cfg, mode, hts, policy, limits, spent, stats, rec,
        );
    }
    let instant = |name: &str, args: Vec<(&'static str, gpl_obs::Value)>, ctx: &ExecContext| {
        if let Some(r) = rec {
            let t = r.track("recover");
            r.instant(t, "recover", name, ctx.sim.clock(), args);
        }
    };
    let ladder = policy.ladder(mode);
    let mut last_err: Option<ExecError> = None;
    let mut first = true;
    'modes: for &m in &ladder {
        for attempt in 0..=policy.max_retries {
            if !first {
                if attempt == 0 {
                    // Entering a degraded mode.
                    stats.fallbacks += 1;
                    stats.degraded_to = Some(m);
                    instant(
                        "fallback",
                        vec![("to", gpl_obs::Value::from(m.name()))],
                        ctx,
                    );
                } else {
                    stats.retries += 1;
                    let delay = policy.backoff_for(attempt);
                    ctx.sim.advance(delay);
                    stats.backoff_cycles += delay;
                    stats.wasted_cycles += delay;
                    instant(
                        "retry",
                        vec![
                            ("attempt", gpl_obs::Value::from(attempt)),
                            ("backoff_cycles", gpl_obs::Value::from(delay)),
                        ],
                        ctx,
                    );
                }
            }
            first = false;
            limits.check(spent + stats.wasted_cycles)?;
            let c0 = ctx.sim.clock();
            match run_stage_attempt(ctx, plan, ir, stage, cfg, m, hts) {
                Ok(out) => return Ok((out, m)),
                Err(e) => {
                    let device_lost = matches!(e, ExecError::DeviceLost(_));
                    match &e {
                        ExecError::Fault(record)
                        | ExecError::Oom(record)
                        | ExecError::DeviceLost(record) => {
                            stats.wasted_cycles += ctx.sim.clock().saturating_sub(c0);
                            instant(
                                "fault",
                                vec![
                                    ("kind", gpl_obs::Value::from(record.kind.name())),
                                    ("launch", gpl_obs::Value::from(record.launch)),
                                ],
                                ctx,
                            );
                            stats.faults.push(record.clone());
                            last_err = Some(e);
                        }
                        // Query problems, not device problems: propagate.
                        _ => return Err(e),
                    }
                    if device_lost {
                        // Retrying a lost device is futile; go straight
                        // to the disarmed last resort (if any).
                        break 'modes;
                    }
                }
            }
        }
    }
    if policy.fallback {
        // Last resort: KBE with injection disarmed — the hardened path
        // outside the faulty device's blast radius (the CPU-fallback
        // analogue). Guarantees termination even at fault rate 1.
        stats.fallbacks += 1;
        stats.degraded_to = Some(ExecMode::Kbe);
        instant(
            "fallback",
            vec![("to", gpl_obs::Value::from("KBE (disarmed)"))],
            ctx,
        );
        let was_armed = ctx.sim.faults_armed();
        ctx.sim.set_faults_armed(false);
        let result = run_stage_attempt(ctx, plan, ir, stage, cfg, ExecMode::Kbe, hts);
        ctx.sim.set_faults_armed(was_armed);
        return Ok((result?, ExecMode::Kbe));
    }
    Err(last_err.expect("at least one attempt ran"))
}

/// Slice-checkpoint execution of one stage (DESIGN.md §11): the driving
/// relation splits into `RecoveryPolicy::checkpoint_slices` contiguous
/// row slices, each run through the per-slice recovery ladder into
/// *fresh* per-slice blocking outputs that merge into the stage's
/// accumulated state only on success — the launch-admission invariant
/// applied per slice. After every merge, a content checkpoint (the
/// accumulated hash-table / group-store fingerprint) is recorded; a
/// faulted slice re-verifies the accumulated state against the last
/// checkpoint and retries *only itself*, so a mid-stage fault resumes
/// from the last verified slice instead of row 0. Rows are
/// bit-identical to the unsliced stage (disjoint ranges union exactly —
/// the same facts the shard merge relies on); only cycles differ.
#[allow(clippy::too_many_arguments)]
fn run_stage_checkpointed(
    ctx: &mut ExecContext,
    plan: &QueryPlan,
    ir: &SegmentIr,
    stage: &Stage,
    cfg: &StageConfig,
    mode: ExecMode,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    policy: &RecoveryPolicy,
    limits: &ExecLimits,
    spent: u64,
    stats: &mut RecoveryStats,
    rec: Option<&gpl_obs::Recorder>,
) -> Result<(StageOut, ExecMode), ExecError> {
    let instant = |name: &str, args: Vec<(&'static str, gpl_obs::Value)>, ctx: &ExecContext| {
        if let Some(r) = rec {
            let t = r.track("recover");
            r.instant(t, "recover", name, ctx.sim.clock(), args);
        }
    };
    let rows = ctx.db.table(&stage.driver).rows();
    let slices: Vec<std::ops::Range<usize>> = crate::shard::Sharder::Range
        .partition(rows, policy.checkpoint_slices as usize)
        .into_iter()
        .flatten()
        .collect();
    // Accumulated blocking state: created ONCE and kept across slice
    // attempts — sound because a faulted slice attempt only ever built
    // its own (dropped) per-slice outputs.
    let (build, agg) = make_blocking_outputs(ctx, plan, stage);
    let acc_fingerprint = |build: &Option<(usize, Rc<RefCell<SimHashTable>>)>,
                           agg: &Option<Rc<RefCell<GroupStore>>>| {
        match (build, agg) {
            (Some((_, t)), _) => t.borrow().fingerprint(),
            (_, Some(a)) => a.borrow().fingerprint(),
            _ => unreachable!("a stage ends in a build or an aggregate"),
        }
    };
    let mut checkpoint = acc_fingerprint(&build, &agg);
    let mut verified = 0u64; // slices merged and checksummed
    let mut kept_cycles = 0u64; // useful cycles the checkpoints protect
    let mut profile = LaunchProfile::default();
    let mut ran_on = mode;
    let full_ladder = policy.ladder(mode);

    for slice in &slices {
        let part = [slice.clone()];
        let mut last_err: Option<ExecError> = None;
        let mut first = true;
        let mut slice_done = false;
        'modes: for &m in &full_ladder {
            for attempt in 0..=policy.max_retries {
                if !first {
                    if attempt == 0 {
                        stats.fallbacks += 1;
                        stats.degraded_to = Some(m);
                        instant(
                            "fallback",
                            vec![("to", gpl_obs::Value::from(m.name()))],
                            ctx,
                        );
                    } else {
                        stats.retries += 1;
                        let delay = policy.backoff_for(attempt);
                        ctx.sim.advance(delay);
                        stats.backoff_cycles += delay;
                        stats.wasted_cycles += delay;
                        instant(
                            "retry",
                            vec![
                                ("attempt", gpl_obs::Value::from(attempt)),
                                ("backoff_cycles", gpl_obs::Value::from(delay)),
                            ],
                            ctx,
                        );
                    }
                }
                first = false;
                limits.check(spent + stats.wasted_cycles)?;
                let c0 = ctx.sim.clock();
                match crate::shard::run_shard_attempt(ctx, plan, ir, stage, cfg, m, hts, &part) {
                    Ok((sp, sbuilt, sagg)) => {
                        merge_slice(&build, &agg, sbuilt, sagg);
                        checkpoint = acc_fingerprint(&build, &agg);
                        verified += 1;
                        kept_cycles += ctx.sim.clock().saturating_sub(c0);
                        profile.merge(&sp);
                        if m != mode {
                            ran_on = m;
                        }
                        slice_done = true;
                        break 'modes;
                    }
                    Err(e) => {
                        let device_lost = matches!(e, ExecError::DeviceLost(_));
                        match &e {
                            ExecError::Fault(record)
                            | ExecError::Oom(record)
                            | ExecError::DeviceLost(record) => {
                                stats.wasted_cycles += ctx.sim.clock().saturating_sub(c0);
                                instant(
                                    "fault",
                                    vec![
                                        ("kind", gpl_obs::Value::from(record.kind.name())),
                                        ("launch", gpl_obs::Value::from(record.launch)),
                                    ],
                                    ctx,
                                );
                                stats.faults.push(record.clone());
                                last_err = Some(e);
                                // Partial-progress resume: the completed
                                // slices stay. Verify them against the
                                // last checkpoint before continuing —
                                // a failed attempt must not have touched
                                // the accumulated state.
                                if verified > 0 {
                                    assert_eq!(
                                        acc_fingerprint(&build, &agg),
                                        checkpoint,
                                        "accumulated state diverged from its checkpoint"
                                    );
                                    stats.resumed_slices += verified;
                                    stats.checkpoint_saved_cycles += kept_cycles;
                                    instant(
                                        "resume",
                                        vec![
                                            ("from_slice", gpl_obs::Value::from(verified)),
                                            ("saved_cycles", gpl_obs::Value::from(kept_cycles)),
                                        ],
                                        ctx,
                                    );
                                }
                            }
                            _ => return Err(e),
                        }
                        if device_lost {
                            break 'modes;
                        }
                    }
                }
            }
        }
        if !slice_done {
            if !policy.fallback {
                return Err(last_err.expect("at least one attempt ran"));
            }
            stats.fallbacks += 1;
            stats.degraded_to = Some(ExecMode::Kbe);
            instant(
                "fallback",
                vec![("to", gpl_obs::Value::from("KBE (disarmed)"))],
                ctx,
            );
            let was_armed = ctx.sim.faults_armed();
            ctx.sim.set_faults_armed(false);
            let result = crate::shard::run_shard_attempt(
                ctx,
                plan,
                ir,
                stage,
                cfg,
                ExecMode::Kbe,
                hts,
                &part,
            );
            ctx.sim.set_faults_armed(was_armed);
            let (sp, sbuilt, sagg) = result?;
            merge_slice(&build, &agg, sbuilt, sagg);
            checkpoint = acc_fingerprint(&build, &agg);
            verified += 1;
            profile.merge(&sp);
            ran_on = ExecMode::Kbe;
        }
    }

    let agg_rows = agg.map(|a| {
        Rc::try_unwrap(a)
            .expect("aggregate store still shared")
            .into_inner()
            .into_rows()
    });
    Ok(((profile, build, agg_rows), ran_on))
}

/// Merge one verified slice's owned blocking outputs into the stage's
/// accumulated state: build entries insert (key-unique across disjoint
/// slices, like shard merges), aggregate stores absorb group-by-group.
fn merge_slice(
    build: &Option<(usize, Rc<RefCell<SimHashTable>>)>,
    agg: &Option<Rc<RefCell<GroupStore>>>,
    sbuilt: Option<(usize, SimHashTable)>,
    sagg: Option<GroupStore>,
) {
    if let (Some((_, acc)), Some((_, t))) = (build, sbuilt) {
        let mut acc = acc.borrow_mut();
        let mut sink = Vec::new();
        for (key, payload) in t.into_entries() {
            sink.clear();
            acc.insert(key, &payload, &mut sink);
        }
    }
    if let (Some(acc), Some(s)) = (agg, sagg) {
        acc.borrow_mut().absorb(s);
    }
}

/// Estimate a build stage's output cardinality by evaluating its filters
/// on a small driver sample (the role a query optimizer's estimate plays
/// when an engine sizes a hash table). Stages with probes fall back to
/// the driver cardinality.
fn estimate_build_rows(ctx: &ExecContext, stage: &Stage) -> usize {
    use crate::plan::PipeOp;
    let total = ctx.db.table(&stage.driver).rows();
    if stage
        .ops
        .iter()
        .any(|op| matches!(op, PipeOp::Probe { .. }))
        || total == 0
    {
        return total.max(1);
    }
    const SAMPLE: usize = 1024;
    let rows: Vec<usize> = if total <= SAMPLE {
        (0..total).collect()
    } else {
        let step = total as f64 / SAMPLE as f64;
        (0..SAMPLE).map(|i| (i as f64 * step) as usize).collect()
    };
    let t = ctx.db.table(&stage.driver);
    let mut chunk = crate::ops::Chunk::new(stage.num_slots());
    for (s, name) in stage.loads.iter().enumerate() {
        let col = t.col(name);
        chunk.fill(s, col.gather_i64(&rows));
    }
    for op in &stage.ops {
        match op {
            PipeOp::Filter(p) => chunk = crate::ops::apply_filter(&chunk, p),
            PipeOp::Compute { expr, out } => crate::ops::apply_compute(&mut chunk, expr, *out),
            PipeOp::Probe { .. } => unreachable!("filtered above"),
        }
    }
    let sel = chunk.rows as f64 / rows.len().max(1) as f64;
    // Head-room so under-sampled selective builds still fit comfortably.
    ((total as f64 * sel * 1.25) as usize).clamp(16, total.max(16))
}

/// Simulate the final sort: a blocking bitonic-style kernel over the
/// (small) aggregate output.
pub(crate) fn run_sort_kernel(
    ctx: &mut ExecContext,
    rows: &mut [Vec<i64>],
    order: &[(usize, bool)],
) -> LaunchProfile {
    sort_rows(rows, order);
    let n = rows.len().max(1) as u64;
    let width = rows.first().map(|r| r.len()).unwrap_or(1) as u64 * 8;
    let region = ctx
        .sim
        .mem
        .alloc(n * width, gpl_sim::RegionClass::Output, "sort-output");
    let base = ctx.sim.mem.base(region);
    // Bitonic sort: log^2(n) passes, each reading and writing everything.
    let passes = {
        let lg = 64 - n.leading_zeros() as u64;
        (lg * lg).max(1)
    };
    let mut pass = 0u64;
    let src = move |_: &dyn gpl_sim::ChannelView| {
        if pass == passes {
            return Work::Done;
        }
        pass += 1;
        Work::Unit(WorkUnit {
            compute_insts: 4 * n,
            mem_insts: 2 * n,
            accesses: vec![
                gpl_sim::MemRange::read(base, n * width),
                gpl_sim::MemRange::write(base, n * width),
            ],
            ..Default::default()
        })
    };
    let k = KernelDesc::new("k_sort", ResourceUsage::new(64, 64, 2048), 8, Box::new(src));
    ctx.sim.run(vec![k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_sim::amd_a10;

    #[test]
    fn context_installs_all_tables() {
        let ctx = ExecContext::new(amd_a10(), TpchDb::at_scale(0.002));
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert_eq!(ctx.layout(t).table(), t);
        }
    }

    #[test]
    fn default_config_covers_all_stages() {
        let db = TpchDb::at_scale(0.002);
        let plan = crate::plan::plan_for(&db, gpl_tpch::QueryId::Q5);
        let cfg = QueryConfig::default_for(&amd_a10(), &plan);
        assert_eq!(cfg.stages.len(), plan.stages.len());
        for (s, c) in plan.stages.iter().zip(&cfg.stages) {
            assert_eq!(c.wg_counts.len(), s.gpl_kernel_names().len());
            let ir = SegmentIr::lower(s, db.table(&s.driver), amd_a10().wavefront_size);
            ir.validate_config(c).expect("default config fits the IR");
        }
    }

    #[test]
    fn cycle_budget_trips_at_a_stage_boundary() {
        let db = TpchDb::at_scale(0.002);
        let plan = crate::plan::plan_for(&db, gpl_tpch::QueryId::Q5);
        let mut ctx = ExecContext::new(amd_a10(), db);
        let cfg = QueryConfig::default_for(&amd_a10(), &plan);
        let err = try_run_query(
            &mut ctx,
            &plan,
            ExecMode::Kbe,
            &cfg,
            &ExecLimits::with_max_cycles(1),
        )
        .unwrap_err();
        match err {
            ExecError::Timeout {
                budget_cycles,
                spent_cycles,
            } => {
                assert_eq!(budget_cycles, 1);
                assert!(spent_cycles > 1);
            }
            e => panic!("expected timeout, got {e}"),
        }
    }

    #[test]
    fn raised_cancel_flag_stops_before_the_first_stage() {
        let db = TpchDb::at_scale(0.002);
        let plan = crate::plan::plan_for(&db, gpl_tpch::QueryId::Q6);
        let mut ctx = ExecContext::new(amd_a10(), db);
        let cfg = QueryConfig::default_for(&amd_a10(), &plan);
        let flag = Arc::new(AtomicBool::new(true));
        let limits = ExecLimits {
            max_cycles: None,
            cancel: Some(flag),
        };
        let err = try_run_query(&mut ctx, &plan, ExecMode::Kbe, &cfg, &limits).unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
    }

    #[test]
    fn sort_kernel_sorts_and_costs() {
        let mut ctx = ExecContext::new(amd_a10(), TpchDb::at_scale(0.002));
        let mut rows = vec![vec![3, 1], vec![1, 9], vec![2, 4]];
        let p = run_sort_kernel(&mut ctx, &mut rows, &[(1, true)]);
        assert_eq!(rows, vec![vec![1, 9], vec![2, 4], vec![3, 1]]);
        assert!(p.elapsed_cycles > 0);
    }
}
