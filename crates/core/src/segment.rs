//! The shared segment IR (Section 3.1's *segment* as data).
//!
//! A [`SegmentIr`] is lowered once per [`Stage`] and describes the
//! kernel DAG every downstream layer agrees on: kernel nodes (name,
//! fused op indices, [`ResourceUsage`], per-row instruction counts, λ)
//! connected by channel edges (shipped slot set, row width), plus the
//! eager/lazy split of the leaf's loaded columns.
//!
//! Before this module existed, three components derived that structure
//! independently by hand — [`crate::gpl`] built `KernelDesc`s, and the
//! cost model's analyzer mirrored the fusion groups and column splits
//! with "must match gpl.rs" comments — a drift bomb where the optimizer
//! could silently model a different pipeline than the one that runs.
//! Now [`crate::gpl`] builds its kernels and channels from IR nodes and
//! edges, [`crate::kbe`] derives its expanded kernel sequence from the
//! same nodes, and `gpl_model`'s analyzer reads its `KernelModel`
//! fields straight off the IR: executor/model agreement holds by
//! construction.
//!
//! Lowering rules (all byte-identical to the pre-IR derivations):
//!
//! * **Fusion** ([`fusion_groups`], Section 3.2): the leaf `k_map*`
//!   absorbs the scan and every leading non-probe op; each hash probe
//!   starts a new kernel and absorbs the non-probe ops after it; a
//!   probe that *is* the first op fuses into the scan kernel. The
//!   blocking terminal is one more node.
//! * **Edges**: edge `e` follows node `e` and ships the slots live into
//!   the first op of node `e+1` (into the terminal for the last edge);
//!   its row width is `8 * |ship|`, floored at 8 bytes.
//! * **Leaf columns**: loads read by the leaf's fused ops stream
//!   *eagerly*; loads only shipped onward gather *lazily* post-filter;
//!   loads neither read nor shipped are dead. A pass-through leaf with
//!   no eager column promotes its first lazy column to drive the scan
//!   (recorded in [`SegmentIr::promoted_leaf`]).

use crate::exec::StageConfig;
use crate::expr::Slot;
use crate::ops::{self, live_slots, Chunk};
use crate::plan::{PipeOp, Stage, Terminal};
use gpl_sim::ResourceUsage;
use gpl_storage::Table;
use std::fmt;
use std::fmt::Write as _;

/// What a kernel node fundamentally does — the key into the shared
/// resource table of [`KernelFlavour::resources`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFlavour {
    /// The fused leaf `k_map*` (scan + leading non-probe ops).
    Map,
    /// A fused `k_hash_probe*` (probe + trailing non-probe ops).
    Probe,
    /// The blocking `k_hash_build` terminal.
    Build,
    /// The blocking `k_reduce*` / `k_groupby*` terminal.
    Aggregate,
}

impl KernelFlavour {
    /// Program-analysis resource usage (Table 2) — the *single* copy of
    /// the per-flavour declarations both executors and the cost model
    /// consume.
    pub fn resources(self, wavefront: u32) -> ResourceUsage {
        match self {
            KernelFlavour::Map => ResourceUsage::new(wavefront, 64, 0),
            KernelFlavour::Probe => ResourceUsage::new(wavefront, 96, 0),
            KernelFlavour::Build => ResourceUsage::new(wavefront, 96, 2048),
            KernelFlavour::Aggregate => ResourceUsage::new(wavefront, 64, 8192),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            KernelFlavour::Map => "map",
            KernelFlavour::Probe => "probe",
            KernelFlavour::Build => "build",
            KernelFlavour::Aggregate => "aggregate",
        }
    }
}

/// One kernel of the segment's GPL pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelNode {
    /// Display name ([`Stage::gpl_kernel_names`] reads these). Interned
    /// once at lowering; launches and profiles share the allocation.
    pub name: std::sync::Arc<str>,
    pub flavour: KernelFlavour,
    /// Indices into `stage.ops` fused into this kernel, in execution
    /// order (empty for the terminal node).
    pub ops: Vec<usize>,
    /// Resource usage at the device's wavefront size.
    pub resources: ResourceUsage,
    /// Per input row: compute instructions of the fused ops (the leaf's
    /// additional eager/lazy load-issue cost is λ-dependent and derived
    /// from [`SegmentIr::eager`] / [`SegmentIr::lazy`] by the consumer).
    pub per_row_compute: u64,
    /// Per input row: memory instructions of the fused ops.
    pub per_row_mem: u64,
    /// Output rows / input rows. Lowering cannot estimate
    /// selectivities (that needs table statistics), so nodes start at
    /// `None`; the cost model attaches its estimates via
    /// [`SegmentIr::attach_lambdas`]. Executors never read this.
    pub lambda: Option<f64>,
}

/// One loaded driver column of the leaf kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafColumn {
    /// Destination slot (`0..loads.len()`).
    pub slot: Slot,
    /// Column name in the driving table.
    pub name: String,
    /// Column index in the driving table.
    pub col: usize,
    /// Storage width in bytes.
    pub width: u64,
}

/// The channel between two kernel nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelEdge {
    /// Slots shipped across the edge (live into the consumer), sorted.
    pub ship: Vec<Slot>,
    /// Bytes per shipped row: `8 * |ship|`, floored at 8.
    pub row_bytes: u64,
}

/// A [`StageConfig`] that does not fit the segment it configures — the
/// structured form of the scattered `wg_counts.len() == kernels` panics
/// this IR consolidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Stage (segment) name.
    pub stage: String,
    /// Kernels the segment launches (one wg count needed per kernel).
    pub kernels: usize,
    /// Entries the rejected config supplied.
    pub wg_counts: usize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {} needs {} wg counts, config has {}",
            self.stage, self.kernels, self.wg_counts
        )
    }
}

impl std::error::Error for ConfigError {}

/// The lowered form of one [`Stage`]: the kernel DAG that executors,
/// the cost model, and observability all consume. See the module docs
/// for the lowering rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentIr {
    /// Stage (segment) name.
    pub stage: String,
    /// Driving table.
    pub driver: String,
    /// Driver cardinality at lowering time.
    pub driver_rows: u64,
    /// Bytes per driver row across loaded columns (tiling input),
    /// floored at 1.
    pub row_bytes: u64,
    /// Kernel nodes in pipeline order; the last is the terminal.
    pub nodes: Vec<KernelNode>,
    /// Edge `e` connects node `e` to node `e + 1`
    /// (`edges.len() == nodes.len() - 1`).
    pub edges: Vec<ChannelEdge>,
    /// Leaf columns streamed eagerly (read by the leaf's fused ops), in
    /// load order.
    pub eager: Vec<LeafColumn>,
    /// Leaf columns gathered lazily for surviving rows only (shipped
    /// onward but not read by the leaf), in load order.
    pub lazy: Vec<LeafColumn>,
    /// True when `eager` holds a promoted lazy column (pass-through
    /// leaf): the column drives the scan but no leaf op reads it.
    pub promoted_leaf: bool,
}

impl SegmentIr {
    /// Lower `stage` over its driving `table`, sizing resources at the
    /// target device's `wavefront`. Pure and deterministic: the same
    /// inputs always lower to the same IR.
    pub fn lower(stage: &Stage, table: &Table, wavefront: u32) -> SegmentIr {
        assert_eq!(
            table.name(),
            stage.driver,
            "stage {} lowered over the wrong table",
            stage.name
        );
        let live = live_slots(stage);
        let groups = fusion_groups(stage);
        // Intern the kernel names once at lowering: every launch built
        // from this IR (and every profile/span downstream) clones Arcs.
        let names: Vec<std::sync::Arc<str>> = gpl_kernel_names(stage)
            .into_iter()
            .map(std::sync::Arc::from)
            .collect();

        // Edge e sits after kernel group e; it carries the slots live
        // into the first op of group e+1 (or into the terminal for the
        // last edge).
        let edges: Vec<ChannelEdge> = (0..groups.len())
            .map(|e| {
                let ship = if e + 1 < groups.len() {
                    live[groups[e + 1][0]].clone()
                } else {
                    live[stage.ops.len()].clone()
                };
                let row_bytes = Chunk::row_bytes(&ship).max(8);
                ChannelEdge { ship, row_bytes }
            })
            .collect();

        // Split the loads: columns read by the fused leading ops stream
        // eagerly; columns only shipped onward gather lazily post-filter;
        // the rest are dead.
        let mut eager_slots: Vec<Slot> = Vec::new();
        for &i in &groups[0] {
            match &stage.ops[i] {
                PipeOp::Filter(p) => p.slots(&mut eager_slots),
                PipeOp::Probe { key, .. } => eager_slots.push(*key),
                PipeOp::Compute { expr, .. } => expr.slots(&mut eager_slots),
            }
        }
        let mut eager = Vec::new();
        let mut lazy = Vec::new();
        for (slot, name) in stage.loads.iter().enumerate() {
            let col = table.col_index(name).expect("load column exists");
            let width = table.col_at(col).data_type().width();
            let lc = LeafColumn {
                slot,
                name: name.clone(),
                col,
                width,
            };
            if eager_slots.contains(&slot) {
                eager.push(lc);
            } else if edges[0].ship.contains(&slot) {
                lazy.push(lc);
            }
        }
        let mut promoted_leaf = false;
        if eager.is_empty() && !lazy.is_empty() {
            // A pure pass-through leaf still needs one streamed column
            // to drive the scan; promote the first lazy column.
            eager.push(lazy.remove(0));
            promoted_leaf = true;
        }

        let mut nodes = Vec::with_capacity(groups.len() + 1);
        for (g, ops_idx) in groups.iter().enumerate() {
            let flavour = if g == 0 {
                KernelFlavour::Map
            } else {
                KernelFlavour::Probe
            };
            nodes.push(KernelNode {
                name: names[g].clone(),
                flavour,
                ops: ops_idx.clone(),
                resources: flavour.resources(wavefront),
                per_row_compute: ops_idx
                    .iter()
                    .map(|&i| ops::op_compute_insts(&stage.ops[i]))
                    .sum(),
                per_row_mem: ops_idx
                    .iter()
                    .map(|&i| ops::op_mem_insts(&stage.ops[i]))
                    .sum(),
                lambda: None,
            });
        }
        let term_flavour = match &stage.terminal {
            Terminal::HashBuild { .. } => KernelFlavour::Build,
            Terminal::Aggregate { .. } => KernelFlavour::Aggregate,
        };
        nodes.push(KernelNode {
            name: names.last().expect("terminal name").clone(),
            flavour: term_flavour,
            ops: Vec::new(),
            resources: term_flavour.resources(wavefront),
            per_row_compute: ops::terminal_compute_insts(&stage.terminal),
            per_row_mem: ops::terminal_mem_insts(&stage.terminal),
            lambda: None,
        });

        let row_bytes = stage
            .loads
            .iter()
            .map(|c| table.col(c).data_type().width())
            .sum::<u64>()
            .max(1);

        SegmentIr {
            stage: stage.name.clone(),
            driver: stage.driver.clone(),
            driver_rows: table.rows() as u64,
            row_bytes,
            nodes,
            edges,
            eager,
            lazy,
            promoted_leaf,
        }
    }

    /// Attach the cost model's per-group selectivity estimates:
    /// `lambdas[g]` becomes node `g`'s λ, and the terminal gets 0.0
    /// (it emits no channel rows).
    pub fn attach_lambdas(&mut self, lambdas: &[f64]) {
        assert_eq!(
            lambdas.len(),
            self.nodes.len() - 1,
            "segment {} has {} non-terminal nodes",
            self.stage,
            self.nodes.len() - 1
        );
        for (n, &l) in self.nodes.iter_mut().zip(lambdas) {
            n.lambda = Some(l);
        }
        self.nodes.last_mut().expect("terminal").lambda = Some(0.0);
    }

    /// Op execution order for kernel-at-a-time engines: the nodes'
    /// fused op indices, flattened. [`crate::kbe`] derives its expanded
    /// map / prefix-sum / scatter sequence from this.
    pub fn op_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes.iter().flat_map(|n| n.ops.iter().copied())
    }

    /// Kernel names in launch order (equals [`Stage::gpl_kernel_names`]
    /// by construction).
    pub fn kernel_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| &*n.name).collect()
    }

    /// Check that `cfg` supplies one work-group count per kernel node —
    /// the single implementation behind what used to be three scattered
    /// `wg_counts.len() == gpl_kernel_names().len()` panics (GPL
    /// launch, cost evaluation, config construction).
    pub fn validate_config(&self, cfg: &StageConfig) -> Result<(), ConfigError> {
        if cfg.wg_counts.len() == self.nodes.len() {
            Ok(())
        } else {
            Err(ConfigError {
                stage: self.stage.clone(),
                kernels: self.nodes.len(),
                wg_counts: cfg.wg_counts.len(),
            })
        }
    }

    /// Deterministic plain-text dump of the lowered segment, pinned by
    /// the golden tests in `tests/determinism.rs`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "segment {} over {} (rows={}, row_bytes={})",
            self.stage, self.driver, self.driver_rows, self.row_bytes
        );
        let col_list = |cols: &[LeafColumn]| {
            cols.iter()
                .map(|c| format!("s{} {}(col {}, {}B)", c.slot, c.name, c.col, c.width))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if !self.eager.is_empty() {
            let tag = if self.promoted_leaf {
                "eager(promoted)"
            } else {
                "eager"
            };
            let _ = writeln!(s, "  {tag}: {}", col_list(&self.eager));
        }
        if !self.lazy.is_empty() {
            let _ = writeln!(s, "  lazy: {}", col_list(&self.lazy));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let ops_str = n
                .ops
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                s,
                "  k{i}: {} [{}] ops=[{ops_str}] per_row(c={}, m={})",
                n.name,
                n.flavour.tag(),
                n.per_row_compute,
                n.per_row_mem
            );
            if let Some(e) = self.edges.get(i) {
                let ship_str = e
                    .ship
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(s, "  e{i}: ship=[{ship_str}] row_bytes={}", e.row_bytes);
            }
        }
        s
    }
}

/// An inter-segment channel (the cross-segment pipelining extension):
/// the blocking hash-build terminal of `build_stage` publishes its hash
/// table in `slices` deterministic slices, and the paired probe kernel
/// of `probe_stage` admits rows against published slices only — so the
/// consumer segment's leaf can start tiling while later slices are still
/// installing. Sits *alongside* [`ChannelEdge`]: channel edges connect
/// kernels within a segment, inter-segment edges connect the terminal of
/// one segment to a probe of the next.
///
/// Slice assignment is [`crate::ht::SimHashTable::slice_of`] (splitmix64
/// over the key, mod `slices`) on both ends, so publisher and gate agree
/// on slice membership by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterSegmentEdge {
    /// Stage whose hash-build terminal produces the shared table.
    pub build_stage: usize,
    /// Stage whose probe consumes it (always `build_stage + 1`).
    pub probe_stage: usize,
    /// The shared hash-table slot.
    pub ht: usize,
    /// Index (into the probe stage's `ops`) of the paired probe. Always
    /// `> 0`: the probe starts its own kernel, which is the gated one.
    pub probe_op: usize,
    /// Number of deterministic installation slices (K). `overlap_pairs`
    /// leaves this at 1; the scheduler re-slices from the build stage's
    /// configured `overlap_slices` knob.
    pub slices: u32,
    /// Estimated bytes published per slice (`ht bytes / slices`), filled
    /// in by [`InterSegmentEdge::with_slices`].
    pub slice_bytes: u64,
}

impl InterSegmentEdge {
    /// Re-slice the edge: `slices = k`, `slice_bytes = table_bytes / k`.
    pub fn with_slices(mut self, k: u32, table_bytes: u64) -> Self {
        let k = k.max(1);
        self.slices = k;
        self.slice_bytes = table_bytes.div_ceil(k as u64);
        self
    }
}

/// Detect the build→probe stage pairs eligible for cross-segment
/// overlap. A pair is two *adjacent* stages where stage `i` ends in a
/// `HashBuild{ht}` terminal and stage `i + 1` probes that `ht` exactly
/// once, at an op index `> 0` (so the paired probe starts its own
/// kernel under [`fusion_groups`] and can be slice-gated without
/// touching the leaf's tile loop). Every other hash table stage `i + 1`
/// probes was built *before* stage `i`, so overlapping the pair is
/// always safe. Pairs are chosen greedily left to right and never
/// share a stage.
///
/// This is the single structural derivation the scheduler, the cost
/// model's overlap predicate, and the IR drift guard all consume —
/// agreement by construction, like the rest of the segment IR.
pub fn overlap_pairs(stages: &[Stage]) -> Vec<InterSegmentEdge> {
    let mut pairs = Vec::new();
    let mut i = 0;
    while i + 1 < stages.len() {
        let Terminal::HashBuild { ht, .. } = &stages[i].terminal else {
            i += 1;
            continue;
        };
        let probes: Vec<usize> = stages[i + 1]
            .ops
            .iter()
            .enumerate()
            .filter_map(|(op, p)| match p {
                PipeOp::Probe { ht: h, .. } if h == ht => Some(op),
                _ => None,
            })
            .collect();
        match probes.as_slice() {
            [op] if *op > 0 => {
                pairs.push(InterSegmentEdge {
                    build_stage: i,
                    probe_stage: i + 1,
                    ht: *ht,
                    probe_op: *op,
                    slices: 1,
                    slice_bytes: 0,
                });
                i += 2;
            }
            _ => i += 1,
        }
    }
    pairs
}

/// GPL kernel fusion (Section 3.2): the leaf `k_map` kernel absorbs the
/// scan and every leading non-probe op; each hash probe starts a new
/// kernel and absorbs the non-probe ops that follow it — except the
/// very first op: a pipeline with no leading selection fuses its first
/// probe into the scan kernel, so the first channel carries only
/// surviving rows. Returns the op indices of each kernel; the blocking
/// terminal is an additional kernel not listed here.
pub fn fusion_groups(stage: &Stage) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new()];
    for (i, op) in stage.ops.iter().enumerate() {
        if matches!(op, PipeOp::Probe { .. }) && !groups[0].is_empty() {
            groups.push(Vec::new());
        }
        groups.last_mut().expect("non-empty").push(i);
    }
    groups
}

/// Kernel names of `stage` under GPL decomposition (Figure 7c): the
/// fused leaf map kernel, one kernel per probe (with fused trailing
/// maps), and the terminal kernel.
pub fn gpl_kernel_names(stage: &Stage) -> Vec<String> {
    let mut v = Vec::new();
    for (g, ops) in fusion_groups(stage).into_iter().enumerate() {
        if g == 0 {
            v.push(format!("k_map*(scan {})", stage.driver));
        } else {
            let PipeOp::Probe { ht, .. } = &stage.ops[ops[0]] else {
                unreachable!("group {g} must start with a probe");
            };
            let fused = if ops.len() > 1 { "+map" } else { "" };
            v.push(format!("k_hash_probe*(ht{ht}{fused})"));
        }
    }
    v.push(match &stage.terminal {
        Terminal::HashBuild { ht, .. } => format!("k_hash_build(ht{ht})"),
        Terminal::Aggregate { groups, .. } if groups.is_empty() => "k_reduce*".to_string(),
        Terminal::Aggregate { .. } => "k_groupby*".to_string(),
    });
    v
}

/// Kernel names of `stage` under KBE decomposition: selections and
/// probes expand to map + prefix-sum + scatter (Figure 7b, the GDB
/// selection \[13\]).
pub fn kbe_kernel_names(stage: &Stage) -> Vec<String> {
    let mut v = Vec::new();
    for op in &stage.ops {
        match op {
            PipeOp::Filter(_) => {
                v.extend(["k_map", "k_prefix_sum", "k_scatter"].map(str::to_string));
            }
            PipeOp::Probe { ht, .. } => {
                v.push(format!("k_hash_probe(ht{ht})"));
                v.extend(["k_prefix_sum", "k_scatter"].map(str::to_string));
            }
            PipeOp::Compute { .. } => v.push("k_map".to_string()),
        }
    }
    v.push(match &stage.terminal {
        Terminal::HashBuild { ht, .. } => format!("k_hash_build(ht{ht})"),
        Terminal::Aggregate { .. } => "k_aggregate".to_string(),
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_for, q14_plan, q8_plan};
    use gpl_tpch::{Q14Params, QueryId, TpchDb};

    fn db() -> TpchDb {
        TpchDb::at_scale(0.002)
    }

    #[test]
    fn lowering_matches_stage_name_derivations() {
        let db = db();
        for q in QueryId::evaluation_set() {
            let plan = plan_for(&db, q);
            for stage in &plan.stages {
                let ir = SegmentIr::lower(stage, db.table(&stage.driver), 64);
                assert_eq!(ir.kernel_names(), stage.gpl_kernel_names());
                assert_eq!(ir.edges.len() + 1, ir.nodes.len());
                let flat: Vec<usize> = ir.op_order().collect();
                assert_eq!(flat, (0..stage.ops.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn q14_leaf_split_is_one_eager_three_lazy() {
        let db = db();
        let plan = q14_plan(&db, Q14Params::default());
        let ir = SegmentIr::lower(&plan.stages[1], db.table("lineitem"), 64);
        // Only l_shipdate is read by the leaf's filter; the other three
        // loads ship onward and gather lazily.
        assert_eq!(ir.eager.len(), 1);
        assert_eq!(ir.eager[0].name, "l_shipdate");
        assert_eq!(ir.lazy.len(), 3);
        assert!(!ir.promoted_leaf);
    }

    #[test]
    fn pass_through_build_promotes_a_lazy_column() {
        let db = db();
        // Q14's build_part has no ops: both loads ship straight into the
        // hash build, so the scan promotes the first.
        let plan = q14_plan(&db, Q14Params::default());
        let ir = SegmentIr::lower(&plan.stages[0], db.table("part"), 64);
        assert!(ir.promoted_leaf);
        assert_eq!(ir.eager.len(), 1);
        assert_eq!(ir.eager[0].slot, 0);
        assert_eq!(ir.lazy.len(), 1);
    }

    #[test]
    fn q8_probe_stage_fuses_like_the_executor_expects() {
        let db = db();
        let plan = q8_plan(&db);
        let stage = plan.stages.last().unwrap();
        let ir = SegmentIr::lower(stage, db.table("lineitem"), 64);
        assert_eq!(ir.nodes.len(), 5, "4 pipeline kernels + terminal");
        assert_eq!(ir.nodes[0].ops, vec![0], "leaf absorbs the semi-probe");
        assert_eq!(ir.nodes[3].ops.len(), 4, "last probe absorbs 3 computes");
        assert!(ir.nodes[0].flavour == KernelFlavour::Map);
        assert!(ir.nodes[4].flavour == KernelFlavour::Aggregate);
    }

    #[test]
    fn validate_config_rejects_wrong_wg_count_with_structured_error() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q14);
        let stage = &plan.stages[1];
        let ir = SegmentIr::lower(stage, db.table("lineitem"), 64);
        let mut cfg = StageConfig::default_for(&gpl_sim::amd_a10(), stage);
        assert!(ir.validate_config(&cfg).is_ok());
        cfg.wg_counts.pop();
        let err = ir.validate_config(&cfg).unwrap_err();
        assert_eq!(err.kernels, 3);
        assert_eq!(err.wg_counts, 2);
        assert!(err.to_string().contains("needs 3 wg counts"));
    }

    #[test]
    fn render_is_pure_and_mentions_every_node_and_edge() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q9);
        let stage = plan.stages.last().unwrap();
        let ir = SegmentIr::lower(stage, db.table("lineitem"), 64);
        let r = ir.render();
        assert_eq!(r, ir.render(), "render must be deterministic");
        for n in &ir.nodes {
            assert!(r.contains(&*n.name), "missing node {}: {r}", n.name);
        }
        for (i, _) in ir.edges.iter().enumerate() {
            assert!(r.contains(&format!("e{i}:")), "missing edge {i}: {r}");
        }
    }

    #[test]
    fn q14_pairs_build_part_with_probe_lineitem() {
        let db = db();
        let plan = q14_plan(&db, Q14Params::default());
        let pairs = overlap_pairs(&plan.stages);
        assert_eq!(pairs.len(), 1);
        let p = &pairs[0];
        assert_eq!((p.build_stage, p.probe_stage), (0, 1));
        assert_eq!(p.ht, 0);
        assert!(p.probe_op > 0, "paired probe must start its own kernel");
        assert!(matches!(
            plan.stages[1].ops[p.probe_op],
            PipeOp::Probe { ht: 0, .. }
        ));
    }

    #[test]
    fn overlap_pairs_never_share_a_stage() {
        let db = db();
        for q in QueryId::all() {
            let plan = crate::plan::plan_for(&db, q);
            let pairs = overlap_pairs(&plan.stages);
            let mut used = std::collections::HashSet::new();
            for p in &pairs {
                assert_eq!(p.probe_stage, p.build_stage + 1, "{}", q.name());
                assert!(used.insert(p.build_stage), "{}", q.name());
                assert!(used.insert(p.probe_stage), "{}", q.name());
                assert!(matches!(
                    plan.stages[p.build_stage].terminal,
                    Terminal::HashBuild { ht, .. } if ht == p.ht
                ));
            }
        }
    }

    #[test]
    fn with_slices_divides_the_table_volume() {
        let e = InterSegmentEdge {
            build_stage: 0,
            probe_stage: 1,
            ht: 0,
            probe_op: 1,
            slices: 1,
            slice_bytes: 0,
        }
        .with_slices(8, 1000);
        assert_eq!(e.slices, 8);
        assert_eq!(e.slice_bytes, 125);
        assert_eq!(e.clone().with_slices(0, 1000).slices, 1, "K floors at 1");
    }

    #[test]
    fn attach_lambdas_fills_every_node() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q14);
        let mut ir = SegmentIr::lower(&plan.stages[1], db.table("lineitem"), 64);
        assert!(ir.nodes.iter().all(|n| n.lambda.is_none()));
        ir.attach_lambdas(&[0.02, 1.0]);
        assert_eq!(ir.nodes[0].lambda, Some(0.02));
        assert_eq!(ir.nodes[2].lambda, Some(0.0), "terminal emits no rows");
    }
}
