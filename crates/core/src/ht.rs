//! Simulated-placement hash tables and group-aggregation stores.
//!
//! Functionally these are ordinary Rust maps; *architecturally* each
//! insert/probe reports a random-access touch on the table's simulated
//! region, so the cache simulator sees realistic hash-join traffic. Hash
//! tables live in `HashTable` regions — the paper counts them among the
//! intermediates that blocking kernels must materialize (Section 5.3.2).

use gpl_sim::mem::{MemRange, MemoryMap, RegionClass, RegionId};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Mixer from splitmix64 — deterministic, well-spread bucket indexes.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic single-`mix64` hasher for the i64-keyed simulated
/// tables. SipHash's DoS resistance buys nothing against synthetic
/// TPC-H keys and costs several times more per probe — and the probe
/// path runs once per input row of every join in the workload.
#[derive(Debug, Default)]
pub struct Mix64Hasher(u64);

impl Hasher for Mix64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = mix64(self.0 ^ u64::from(b));
        }
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.0 = mix64(self.0 ^ v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(self.0 ^ v);
    }
}

/// `HashMap` build-hasher wrapper for [`Mix64Hasher`] — shared with the
/// model plane's estimator tables, which face the same synthetic keys.
pub type BuildMix64 = BuildHasherDefault<Mix64Hasher>;

/// A unique-key hash table (all TPC-H joins here are key–FK joins).
///
/// Payloads live in one flat arena (`payload_width` values per entry,
/// indexed by insertion order) rather than one heap `Vec` per entry:
/// probes — once per input row of every join — read a contiguous
/// slice, and the cross-shard merge's per-device rebuild does one
/// arena append per entry instead of an allocation.
#[derive(Debug)]
pub struct SimHashTable {
    map: HashMap<i64, u32, BuildMix64>,
    pay: Vec<i64>,
    payload_width: usize,
    base: u64,
    buckets: u64,
    entry_bytes: u64,
    pub region: RegionId,
}

impl SimHashTable {
    /// Allocate a table sized for `expected` keys with `payload_width`
    /// payload values per key.
    pub fn new(
        mem: &mut MemoryMap,
        expected: usize,
        payload_width: usize,
        label: impl Into<String>,
    ) -> Self {
        let buckets = (expected.max(1) * 2).next_power_of_two() as u64;
        let entry_bytes = 8 * (1 + payload_width as u64);
        let region = mem.alloc(buckets * entry_bytes, RegionClass::HashTable, label);
        SimHashTable {
            map: HashMap::with_capacity_and_hasher(expected, BuildMix64::default()),
            pay: Vec::with_capacity(expected * payload_width),
            payload_width,
            base: mem.base(region),
            buckets,
            entry_bytes,
            region,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn payload_width(&self) -> usize {
        self.payload_width
    }

    /// Simulated bytes the table occupies (its materialization footprint).
    pub fn bytes(&self) -> u64 {
        self.buckets * self.entry_bytes
    }

    fn bucket_access(&self, key: i64) -> MemRange {
        let b = mix64(key as u64) & (self.buckets - 1);
        MemRange::read(self.base + b * self.entry_bytes, self.entry_bytes)
    }

    /// Insert a key; reports the bucket write into `acc`. Panics on
    /// duplicate keys — the workload's build sides are all unique.
    pub fn insert(&mut self, key: i64, payload: &[i64], acc: &mut Vec<MemRange>) {
        assert_eq!(payload.len(), self.payload_width, "payload width mismatch");
        let mut a = self.bucket_access(key);
        a.write = true;
        acc.push(a);
        let idx = u32::try_from(self.map.len()).expect("build side exceeds u32 entries");
        let prev = self.map.insert(key, idx);
        assert!(prev.is_none(), "duplicate build key {key}");
        self.pay.extend_from_slice(payload);
    }

    /// Probe a key; reports the bucket read into `acc`.
    pub fn probe(&self, key: i64, acc: &mut Vec<MemRange>) -> Option<&[i64]> {
        acc.push(self.bucket_access(key));
        let w = self.payload_width;
        self.map
            .get(&key)
            .map(|&i| &self.pay[i as usize * w..i as usize * w + w])
    }

    /// Which of `slices` deterministic installation slices `key` belongs
    /// to. Both ends of an inter-segment edge (the publishing build
    /// terminal and the slice-gated probe) call this one function, so
    /// slice membership agrees by construction.
    #[inline]
    pub fn slice_of(key: i64, slices: u32) -> u32 {
        (mix64(key as u64) % slices.max(1) as u64) as u32
    }

    /// Drain into `(key, payload)` entries in sorted key order — the
    /// canonical form a shard merge unions before re-inserting into the
    /// merged table. Keys are unique per table (insert panics on
    /// duplicates), so the union of disjoint shard builds is exact.
    pub fn into_entries(self) -> Vec<(i64, Vec<i64>)> {
        let w = self.payload_width;
        let pay = self.pay;
        let mut entries: Vec<(i64, Vec<i64>)> = self
            .map
            .into_iter()
            .map(|(k, i)| (k, pay[i as usize * w..i as usize * w + w].to_vec()))
            .collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries
    }

    /// FNV-1a over the `(key, payload)` entries of `slice`, in sorted
    /// key order — the per-slice content checksum the overlap protocol
    /// publishes with each installed slice and re-derives at the gate.
    /// A mismatch means the shared table diverged from what the build
    /// terminal installed (a dropped or double-published slice).
    pub fn slice_checksum(&self, slice: u32, slices: u32) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut keys: Vec<i64> = self
            .map
            .keys()
            .copied()
            .filter(|&k| Self::slice_of(k, slices) == slice)
            .collect();
        keys.sort_unstable();
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        let w = self.payload_width;
        for k in keys {
            mix(k as u64);
            let i = self.map[&k] as usize;
            for &p in &self.pay[i * w..i * w + w] {
                mix(p as u64);
            }
        }
        h
    }

    /// Content fingerprint of the whole table: [`Self::slice_checksum`]
    /// with every key in one slice. Two tables holding the same entries
    /// agree regardless of how they were built — the equality check
    /// speculative hedging and checkpoint resume verify results with.
    pub fn fingerprint(&self) -> u64 {
        self.slice_checksum(0, 1)
    }
}

/// Aggregate function kinds supported by the group store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    Sum,
    /// Counts rows; the evaluated input value is ignored.
    Count,
    Min,
    Max,
}

impl AggKind {
    /// Identity element of the fold.
    pub fn init(self) -> i64 {
        match self {
            AggKind::Sum | AggKind::Count => 0,
            AggKind::Min => i64::MAX,
            AggKind::Max => i64::MIN,
        }
    }

    /// Fold one value into the accumulator.
    #[inline]
    pub fn fold(self, acc: i64, v: i64) -> i64 {
        match self {
            AggKind::Sum => acc + v,
            AggKind::Count => acc + 1,
            AggKind::Min => acc.min(v),
            AggKind::Max => acc.max(v),
        }
    }

    /// Merge two *accumulators* of this kind (shard merge). Unlike
    /// [`AggKind::fold`], both sides are partial aggregate states: a
    /// COUNT merge adds the partial counts rather than counting the
    /// right-hand side as one more row. Every kind here is commutative
    /// and associative, which is what makes the cross-shard merge
    /// order-independent.
    #[inline]
    pub fn combine(self, a: i64, b: i64) -> i64 {
        match self {
            AggKind::Sum | AggKind::Count => a + b,
            AggKind::Min => a.min(b),
            AggKind::Max => a.max(b),
        }
    }
}

/// Hash-aggregation store: `groups → running aggregates`, with simulated
/// read-modify-write traffic per update.
#[derive(Debug)]
pub struct GroupStore {
    groups: BTreeMap<Vec<i64>, Vec<i64>>,
    kinds: Vec<AggKind>,
    key_width: usize,
    base: u64,
    buckets: u64,
    entry_bytes: u64,
    pub region: RegionId,
}

impl GroupStore {
    /// A store whose aggregates are all sums (the common case).
    pub fn new(
        mem: &mut MemoryMap,
        expected_groups: usize,
        key_width: usize,
        num_sums: usize,
        label: impl Into<String>,
    ) -> Self {
        Self::with_kinds(
            mem,
            expected_groups,
            key_width,
            vec![AggKind::Sum; num_sums],
            label,
        )
    }

    pub fn with_kinds(
        mem: &mut MemoryMap,
        expected_groups: usize,
        key_width: usize,
        kinds: Vec<AggKind>,
        label: impl Into<String>,
    ) -> Self {
        let buckets = (expected_groups.max(1) * 2).next_power_of_two() as u64;
        let entry_bytes = 8 * (key_width.max(1) + kinds.len()) as u64;
        let region = mem.alloc(buckets * entry_bytes, RegionClass::Intermediate, label);
        GroupStore {
            groups: BTreeMap::new(),
            kinds,
            key_width,
            base: mem.base(region),
            buckets,
            entry_bytes,
            region,
        }
    }

    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Simulated bytes the store occupies (its materialization footprint).
    pub fn bytes(&self) -> u64 {
        self.buckets * self.entry_bytes
    }

    /// Merge another shard's partial aggregate state into this store,
    /// combining accumulators group-by-group with [`AggKind::combine`].
    /// Both stores must have the same shape (key width + kinds). The
    /// groups live in `BTreeMap`s, so the merged state — and therefore
    /// [`GroupStore::into_rows`] — is independent of the order shards
    /// complete in.
    pub fn absorb(&mut self, other: GroupStore) {
        assert_eq!(self.key_width, other.key_width, "key width mismatch");
        assert_eq!(self.kinds, other.kinds, "aggregate kinds mismatch");
        for (keys, aggs) in other.groups {
            match self.groups.entry(keys) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(aggs);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    for ((a, b), k) in e.get_mut().iter_mut().zip(aggs).zip(&self.kinds) {
                        *a = k.combine(*a, b);
                    }
                }
            }
        }
    }

    /// Content fingerprint of the partial aggregate state: FNV-1a over
    /// the shape (key width + kinds) and every `(keys, accumulators)`
    /// group in `BTreeMap` order. Two stores that would produce the
    /// same rows agree — the checkpoint-verification digest of
    /// slice-resume, mirroring [`SimHashTable::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.key_width as u64);
        mix(self.kinds.len() as u64);
        for (keys, aggs) in &self.groups {
            for &k in keys {
                mix(k as u64);
            }
            for &a in aggs {
                mix(a as u64);
            }
        }
        h
    }

    /// Fold `values` into the aggregates of group `keys`; reports the
    /// read-modify-write on the group's bucket.
    pub fn update(&mut self, keys: &[i64], values: &[i64], acc: &mut Vec<MemRange>) {
        debug_assert_eq!(values.len(), self.kinds.len());
        let mut h = 0u64;
        for &k in keys {
            h = mix64(h ^ k as u64);
        }
        let b = h & (self.buckets - 1);
        let addr = self.base + b * self.entry_bytes;
        acc.push(MemRange::read(addr, self.entry_bytes));
        acc.push(MemRange::write(addr, self.entry_bytes));
        // Per-row fast path: look the group up by slice so the common
        // case (group already exists) allocates nothing. `Vec<i64>`
        // borrows as `[i64]`, so no owned key is built until a group is
        // first seen.
        if let Some(aggs) = self.groups.get_mut(keys) {
            for ((a, v), k) in aggs.iter_mut().zip(values).zip(&self.kinds) {
                *a = k.fold(*a, *v);
            }
        } else {
            let aggs: Vec<i64> = self
                .kinds
                .iter()
                .zip(values)
                .map(|(k, &v)| k.fold(k.init(), v))
                .collect();
            self.groups.insert(keys.to_vec(), aggs);
        }
    }

    /// Drain into result rows `keys ++ aggregates`, in deterministic key
    /// order. A *scalar* aggregate (no group keys) with no input yields
    /// one row of fold identities (0 for SUM/COUNT, the sentinels for
    /// MIN/MAX); a grouped aggregate over no input yields no rows, as in
    /// SQL.
    pub fn into_rows(mut self) -> Vec<Vec<i64>> {
        if self.groups.is_empty() && self.key_width == 0 && !self.kinds.is_empty() {
            self.groups
                .insert(Vec::new(), self.kinds.iter().map(|k| k.init()).collect());
        }
        self.groups
            .into_iter()
            .map(|(mut k, s)| {
                k.extend(s);
                k
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_probe_roundtrips() {
        let mut mem = MemoryMap::new();
        let mut ht = SimHashTable::new(&mut mem, 10, 2, "t");
        let mut acc = Vec::new();
        ht.insert(5, &[50, 55], &mut acc);
        ht.insert(-7, &[70, 77], &mut acc);
        assert_eq!(ht.probe(5, &mut acc), Some(&[50i64, 55][..]));
        assert_eq!(ht.probe(-7, &mut acc), Some(&[70i64, 77][..]));
        assert_eq!(ht.probe(8, &mut acc), None);
        assert_eq!(ht.len(), 2);
        // Every operation touched the table's region.
        assert_eq!(acc.len(), 5);
        let region_base = mem.base(ht.region);
        for a in &acc {
            assert!(a.addr >= region_base && a.addr < region_base + ht.bytes());
        }
        // Inserts write, probes read.
        assert!(acc[0].write && acc[1].write);
        assert!(!acc[2].write && !acc[3].write && !acc[4].write);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_key_panics() {
        let mut mem = MemoryMap::new();
        let mut ht = SimHashTable::new(&mut mem, 4, 0, "t");
        let mut acc = Vec::new();
        ht.insert(1, &[], &mut acc);
        ht.insert(1, &[], &mut acc);
    }

    #[test]
    fn group_store_sums_per_group() {
        let mut mem = MemoryMap::new();
        let mut g = GroupStore::new(&mut mem, 8, 1, 2, "agg");
        let mut acc = Vec::new();
        g.update(&[1], &[10, 1], &mut acc);
        g.update(&[2], &[20, 2], &mut acc);
        g.update(&[1], &[5, 1], &mut acc);
        let rows = g.into_rows();
        assert_eq!(rows, vec![vec![1, 15, 2], vec![2, 20, 2]]);
        // Each update is a read + a write.
        assert_eq!(acc.len(), 6);
        assert!(acc.iter().step_by(2).all(|a| !a.write));
        assert!(acc.iter().skip(1).step_by(2).all(|a| a.write));
    }

    #[test]
    fn scalar_aggregate_yields_zero_row_when_empty() {
        let mut mem = MemoryMap::new();
        let g = GroupStore::new(&mut mem, 1, 0, 2, "agg");
        assert_eq!(g.into_rows(), vec![vec![0, 0]]);
    }

    #[test]
    fn grouped_aggregate_yields_no_rows_when_empty() {
        let mut mem = MemoryMap::new();
        let g = GroupStore::new(&mut mem, 8, 1, 2, "agg");
        assert!(
            g.into_rows().is_empty(),
            "grouped empty input has no groups"
        );
    }

    #[test]
    fn slices_partition_the_table_and_checksums_pin_content() {
        let mut mem = MemoryMap::new();
        let mut ht = SimHashTable::new(&mut mem, 64, 1, "t");
        let mut acc = Vec::new();
        for k in 0..64i64 {
            ht.insert(k, &[k * 10], &mut acc);
        }
        // Every key lands in exactly one of K slices.
        for slices in [1u32, 2, 8] {
            let mut count = 0usize;
            for s in 0..slices {
                count += (0..64i64)
                    .filter(|&k| SimHashTable::slice_of(k, slices) == s)
                    .count();
            }
            assert_eq!(count, 64);
        }
        // Checksums are pure, slice-local, and content-sensitive.
        let sum = ht.slice_checksum(0, 2);
        assert_eq!(sum, ht.slice_checksum(0, 2));
        assert_ne!(sum, ht.slice_checksum(1, 2), "slices differ in content");
        let mut ht2 = SimHashTable::new(&mut mem, 64, 1, "t2");
        for k in 0..64i64 {
            let pay = if k == 7 { 999 } else { k * 10 };
            ht2.insert(k, &[pay], &mut acc);
        }
        let s7 = SimHashTable::slice_of(7, 2);
        assert_ne!(ht.slice_checksum(s7, 2), ht2.slice_checksum(s7, 2));
        assert_eq!(
            ht.slice_checksum(1 - s7, 2),
            ht2.slice_checksum(1 - s7, 2),
            "the untouched slice checksums identically"
        );
    }

    #[test]
    fn combine_merges_partial_accumulators() {
        assert_eq!(AggKind::Sum.combine(3, 4), 7);
        // COUNT merges partial counts — it does not count the rhs as a row.
        assert_eq!(AggKind::Count.combine(3, 4), 7);
        assert_eq!(AggKind::Min.combine(3, 4), 3);
        assert_eq!(AggKind::Max.combine(3, 4), 4);
        // Identities are neutral under combine.
        for k in [AggKind::Sum, AggKind::Count, AggKind::Min, AggKind::Max] {
            assert_eq!(k.combine(k.init(), 42), 42);
        }
    }

    #[test]
    fn into_entries_is_sorted_and_complete() {
        let mut mem = MemoryMap::new();
        let mut ht = SimHashTable::new(&mut mem, 8, 1, "t");
        let mut acc = Vec::new();
        for k in [9i64, -3, 4, 0] {
            ht.insert(k, &[k * 2], &mut acc);
        }
        let entries = ht.into_entries();
        assert_eq!(
            entries,
            vec![(-3, vec![-6]), (0, vec![0]), (4, vec![8]), (9, vec![18]),]
        );
    }

    #[test]
    fn absorb_merges_shard_states_like_one_store() {
        let kinds = vec![AggKind::Sum, AggKind::Count, AggKind::Min, AggKind::Max];
        let mut mem = MemoryMap::new();
        let mut acc = Vec::new();
        // Oracle: every row folded into one store.
        let rows: Vec<(i64, i64)> = vec![(1, 10), (2, 7), (1, -4), (3, 0), (2, 9)];
        let mut whole = GroupStore::with_kinds(&mut mem, 8, 1, kinds.clone(), "w");
        for &(g, v) in &rows {
            whole.update(&[g], &[v, v, v, v], &mut acc);
        }
        // Shards: rows split 2/3, folded separately, then absorbed.
        let mut a = GroupStore::with_kinds(&mut mem, 8, 1, kinds.clone(), "a");
        let mut b = GroupStore::with_kinds(&mut mem, 8, 1, kinds.clone(), "b");
        for &(g, v) in &rows[..2] {
            a.update(&[g], &[v, v, v, v], &mut acc);
        }
        for &(g, v) in &rows[2..] {
            b.update(&[g], &[v, v, v, v], &mut acc);
        }
        a.absorb(b);
        assert_eq!(a.into_rows(), whole.into_rows());
    }

    #[test]
    fn absorb_keeps_scalar_identity_row_semantics() {
        let mut mem = MemoryMap::new();
        let mut a = GroupStore::new(&mut mem, 1, 0, 2, "a");
        let b = GroupStore::new(&mut mem, 1, 0, 2, "b");
        // Two empty scalar shards merge to the single identity row.
        a.absorb(b);
        assert_eq!(a.into_rows(), vec![vec![0, 0]]);
    }

    #[test]
    fn mix64_spreads_consecutive_keys() {
        let buckets = 1024u64;
        let mut hit = std::collections::HashSet::new();
        for k in 0..512u64 {
            hit.insert(mix64(k) & (buckets - 1));
        }
        assert!(
            hit.len() > 300,
            "consecutive keys must spread: {}",
            hit.len()
        );
    }
}
