//! # gpl-core — the GPL pipelined query engine (the paper's contribution)
//!
//! Implements the system of *GPL: A GPU-based Pipelined Query Processing
//! Engine* (SIGMOD'16) against the `gpl-sim` device:
//!
//! * [`plan`] — segmented physical plans: pipelines of operators cut at
//!   blocking kernels, with hand-verified plans for the paper's workload
//!   (TPC-H Q5/Q7/Q8/Q9/Q14 and the Listing-1 example).
//! * [`segment`] — the shared segment IR: each stage lowers once to a
//!   kernel DAG (nodes, channel edges, eager/lazy leaf columns) that
//!   both executors and the Section-4 cost model consume, so the
//!   modeled pipeline and the executed pipeline agree by construction.
//! * [`kbe`] — the kernel-based-execution baseline (Section 2.2): one
//!   kernel at a time, map + prefix-sum + scatter decomposition, every
//!   intermediate materialized in global memory.
//! * [`gpl`] — the pipelined executor (Section 3): concurrent kernels in
//!   a segment connected by channels, tiled input, fine-grained
//!   work-group coordination.
//! * [`exec`] — execution modes (KBE / GPL w/o CE / GPL), configuration
//!   knobs (Δ, n, p, wg_Ki) and the query runner.
//! * [`expr`], [`ops`], [`ht`] — the operator/kernel building blocks.
//! * [`partitioned`] — the radix hash join Section 3.2 sketches as an
//!   extension, measurable against monolithic probing.
//! * [`shard`] — multi-device sharding: per-shard tile streams over a
//!   heterogeneous CPU/GPU [`shard::DevicePool`] with a deterministic
//!   merge of blocking-terminal state.
//!
//! Results of every mode are validated bit-for-bit against the CPU
//! reference in `gpl-tpch`.

pub mod error;
pub mod exec;
pub mod expr;
pub mod gpl;
pub mod ht;
pub mod kbe;
pub mod ops;
pub mod partitioned;
pub mod plan;
pub mod recover;
pub mod replay;
pub mod segment;
pub mod shard;

pub use error::ExecError;
pub use exec::{
    run_query, try_run_query, try_run_query_recovering, ExecContext, ExecLimits, ExecMode,
    QueryConfig, QueryRun, StageConfig,
};
pub use expr::{CmpOp, Expr, Pred, Slot};
pub use ht::AggKind;
pub use plan::{plan_for, Agg, DisplayHint, PipeOp, QueryPlan, Stage, Terminal};
pub use recover::{RecoveryPolicy, RecoveryStats};
pub use segment::{
    overlap_pairs, ChannelEdge, InterSegmentEdge, KernelFlavour, KernelNode, LeafColumn, SegmentIr,
};
pub use shard::{
    try_run_query_sharded, DeviceKind, DevicePool, DeviceRun, HedgePlan, PoolDevice,
    ShardAssignment, ShardFaults, ShardPlan, ShardedRun, Sharder,
};
