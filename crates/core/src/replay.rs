//! Access-replay kernels: the timing side of kernel-at-a-time engines.
//!
//! KBE (and the Ocelot baseline in `gpl-ocelot`) perform their functional
//! work eagerly on host structures and then launch a data-parallel kernel
//! that *replays* the corresponding access pattern — sequential array
//! reads/writes plus row-indexed scatter traffic — against the simulator.

use crate::exec::ExecContext;
use gpl_sim::mem::{MemRange, RegionClass};
use gpl_sim::{ChannelView, KernelDesc, LaunchProfile, ResourceUsage, Work, WorkUnit};

/// Rows one replay work-group quantum covers.
pub const BATCH_ROWS: usize = 8192;

/// An array in simulated memory: base address, element width, row count.
#[derive(Debug, Clone, Copy)]
pub struct ArrayRef {
    pub base: u64,
    pub width: u64,
    pub rows: usize,
}

impl ArrayRef {
    /// The slice of this array corresponding to input-progress fraction
    /// `done..upto` out of `total` driving rows.
    pub fn slice(&self, done: usize, upto: usize, total: usize) -> MemRange {
        let total = total.max(1);
        let a = (self.rows * done / total) as u64;
        let b = (self.rows * upto / total) as u64;
        MemRange::read(self.base + a * self.width, (b - a) * self.width)
    }
}

/// Allocate a fresh array in simulated memory.
pub fn alloc_array(
    ctx: &mut ExecContext,
    rows: usize,
    width: u64,
    class: RegionClass,
    label: &str,
) -> ArrayRef {
    let id = ctx.sim.mem.alloc(rows.max(1) as u64 * width, class, label);
    ArrayRef {
        base: ctx.sim.mem.base(id),
        width,
        rows,
    }
}

/// A data-parallel kernel that replays a precomputed access pattern over
/// its driving rows.
pub struct ReplayKernel {
    pub rows: usize,
    pub cursor: usize,
    /// Rows per work-group quantum (defaults to [`BATCH_ROWS`]).
    pub batch: usize,
    pub wavefront: u64,
    pub per_row_compute: u64,
    pub per_row_mem: u64,
    pub reads: Vec<ArrayRef>,
    pub writes: Vec<ArrayRef>,
    /// Row-indexed scatter/gather traffic (hash buckets): `extra_per_row`
    /// entries per driving row.
    pub extra: Vec<MemRange>,
    pub extra_per_row: usize,
    pub emitted_any: bool,
    /// Observed-statistics totals (see [`ReplayKernel::io_rows`]): rows
    /// consumed and rows surviving over the whole launch, distributed
    /// proportionally across the emitted work units.
    pub rows_in_total: u64,
    pub rows_out_total: u64,
}

impl ReplayKernel {
    pub fn new(rows: usize, wavefront: u32, per_row_compute: u64, per_row_mem: u64) -> Self {
        ReplayKernel {
            rows,
            cursor: 0,
            batch: BATCH_ROWS,
            wavefront: wavefront as u64,
            per_row_compute,
            per_row_mem,
            reads: Vec::new(),
            writes: Vec::new(),
            extra: Vec::new(),
            extra_per_row: 0,
            emitted_any: false,
            rows_in_total: 0,
            rows_out_total: 0,
        }
    }

    pub fn reads(mut self, reads: Vec<ArrayRef>) -> Self {
        self.reads = reads;
        self
    }

    pub fn writes(mut self, writes: Vec<ArrayRef>) -> Self {
        self.writes = writes;
        self
    }

    pub fn extra(mut self, extra: Vec<MemRange>, per_row: usize) -> Self {
        self.extra = extra;
        self.extra_per_row = per_row;
        self
    }

    /// Override the per-quantum row count (small launches can use finer
    /// batches to fill the device).
    pub fn batch(mut self, rows: usize) -> Self {
        self.batch = rows.max(1);
        self
    }

    /// Declare the launch's observed row totals: `rows_in` consumed and
    /// `rows_out` surviving. Units report proportional shares that sum
    /// exactly to the totals, so the kernel profile's `rows_in/rows_out`
    /// match the eager host-side computation.
    pub fn io_rows(mut self, rows_in: u64, rows_out: u64) -> Self {
        self.rows_in_total = rows_in;
        self.rows_out_total = rows_out;
        self
    }
}

impl gpl_sim::WorkSource for ReplayKernel {
    fn next(&mut self, _view: &dyn ChannelView) -> Work {
        if self.cursor >= self.rows {
            if self.emitted_any {
                return Work::Done;
            }
            // Even an empty launch occupies the device briefly.
            self.emitted_any = true;
            return Work::Unit(WorkUnit {
                compute_insts: 1,
                ..Default::default()
            });
        }
        let start = self.cursor;
        let end = (start + self.batch).min(self.rows);
        self.cursor = end;
        self.emitted_any = true;
        let rows = (end - start) as u64;
        let mut accesses: Vec<MemRange> = Vec::with_capacity(self.reads.len() + self.writes.len());
        for r in &self.reads {
            accesses.push(r.slice(start, end, self.rows));
        }
        for w in &self.writes {
            let mut m = w.slice(start, end, self.rows);
            m.write = true;
            accesses.push(m);
        }
        if self.extra_per_row > 0 {
            accesses.extend_from_slice(
                &self.extra[start * self.extra_per_row..end * self.extra_per_row],
            );
        }
        let mem_ops = self.per_row_mem + self.reads.len() as u64 + self.writes.len() as u64;
        // Proportional shares of the declared totals: prefix(end) −
        // prefix(start) telescopes to the exact totals over the launch.
        let total = self.rows as u64;
        let share = |t: u64| {
            (t * end as u64 / total.max(1)).saturating_sub(t * start as u64 / total.max(1))
        };
        Work::Unit(
            WorkUnit {
                compute_insts: (rows * self.per_row_compute).div_ceil(self.wavefront),
                mem_insts: (rows * mem_ops).div_ceil(self.wavefront),
                accesses,
                ..Default::default()
            }
            .rows(share(self.rows_in_total), share(self.rows_out_total)),
        )
    }
}

/// Launch one replay kernel alone on the device (the KBE discipline),
/// with enough work-groups to fill it.
pub fn launch(
    ctx: &mut ExecContext,
    name: &str,
    resources: ResourceUsage,
    kernel: ReplayKernel,
) -> LaunchProfile {
    let spec = ctx.sim.spec();
    let wg = spec.num_cus * spec.max_wg_per_cu;
    let desc = KernelDesc::new(name, resources, wg, Box::new(kernel));
    ctx.sim.run(vec![desc])
}

/// Per-kernel-flavour resource declarations (program-analysis inputs).
pub fn kernel_resources(kernel: &str, wavefront: u32) -> ResourceUsage {
    match kernel {
        "k_map" => ResourceUsage::new(wavefront, 64, 0),
        "k_prefix_sum" => ResourceUsage::new(wavefront, 32, 4096),
        "k_scatter" => ResourceUsage::new(wavefront, 48, 0),
        "k_hash_probe" => ResourceUsage::new(wavefront, 96, 0),
        "k_hash_build" => ResourceUsage::new(wavefront, 96, 2048),
        "k_aggregate" => ResourceUsage::new(wavefront, 64, 8192),
        other => panic!("unknown kernel flavour {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_sim::amd_a10;
    use gpl_tpch::TpchDb;

    #[test]
    fn replay_covers_all_rows_and_slices_proportionally() {
        let mut ctx = ExecContext::new(amd_a10(), TpchDb::at_scale(0.002));
        let input = alloc_array(&mut ctx, 20_000, 8, RegionClass::Intermediate, "in");
        let output = alloc_array(&mut ctx, 10_000, 4, RegionClass::Intermediate, "out");
        let k = ReplayKernel::new(20_000, 64, 4, 1)
            .reads(vec![input])
            .writes(vec![output]);
        let p = launch(&mut ctx, "k_map", kernel_resources("k_map", 64), k);
        assert_eq!(
            p.kernels[0].units,
            (20_000usize).div_ceil(BATCH_ROWS) as u64
        );
        // All input bytes read, all output bytes written.
        assert_eq!(p.bytes_read[&RegionClass::Intermediate], 20_000 * 8);
        assert_eq!(p.bytes_written[&RegionClass::Intermediate], 10_000 * 4);
    }

    #[test]
    fn empty_replay_still_occupies_the_device() {
        let mut ctx = ExecContext::new(amd_a10(), TpchDb::at_scale(0.002));
        let k = ReplayKernel::new(0, 64, 1, 0);
        let p = launch(&mut ctx, "k_map", kernel_resources("k_map", 64), k);
        assert!(p.elapsed_cycles > 0);
        assert_eq!(p.kernels[0].units, 1);
    }

    #[test]
    fn array_slice_arithmetic() {
        let a = ArrayRef {
            base: 1000,
            width: 4,
            rows: 50,
        };
        let m = a.slice(10, 20, 100); // rows 5..10 of the array
        assert_eq!(m.addr, 1000 + 5 * 4);
        assert_eq!(m.bytes, 5 * 4);
    }
}
