//! Shared operator primitives: functional chunk transforms plus the cost
//! estimates both executors report to the simulator.
//!
//! A [`Chunk`] is the columnar row context flowing through a pipeline —
//! a tile's worth of rows in GPL, the whole relation in KBE. Transforms
//! are pure Rust (results are exact); hash-table traffic is reported via
//! the access vectors the callers pass down to the simulator.

use crate::expr::{Expr, Pred, Slot};
use crate::ht::SimHashTable;
use crate::plan::{PipeOp, Stage, Terminal};
use gpl_sim::mem::MemRange;
use std::collections::BTreeSet;

/// A batch of rows in slot-columnar form.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    pub cols: Vec<Vec<i64>>,
    pub filled: Vec<bool>,
    pub rows: usize,
}

impl Chunk {
    pub fn new(num_slots: usize) -> Self {
        Chunk {
            cols: vec![Vec::new(); num_slots],
            filled: vec![false; num_slots],
            rows: 0,
        }
    }

    /// Fill slot `s` with values (must match current row count unless the
    /// chunk is still empty).
    pub fn fill(&mut self, s: Slot, vals: Vec<i64>) {
        if self.filled.iter().any(|&f| f) {
            assert_eq!(vals.len(), self.rows, "slot {s} length mismatch");
        } else {
            self.rows = vals.len();
        }
        self.cols[s] = vals;
        self.filled[s] = true;
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Bytes per row if `live` slots travel in a channel packet stream.
    pub fn row_bytes(live: &[Slot]) -> u64 {
        (live.len() as u64) * 8
    }
}

/// Filter: retain rows satisfying `pred` across all filled slots.
pub fn apply_filter(c: &Chunk, pred: &Pred) -> Chunk {
    // Conjunctions of slot-vs-constant atoms (the common shape) are
    // evaluated in a flat loop over hoisted column slices; everything
    // else goes through the per-row tree interpreter. Same rows kept
    // either way — `Pred::as_atoms` only flattens pure short-circuit
    // ANDs.
    let keep: Vec<usize> = match pred.as_atoms() {
        Some(atoms) => {
            let cols: Vec<&[i64]> = atoms.iter().map(|a| c.cols[a.slot()].as_slice()).collect();
            (0..c.rows)
                .filter(|&r| atoms.iter().zip(&cols).all(|(a, col)| a.test(col[r])))
                .collect()
        }
        None => (0..c.rows).filter(|&r| pred.eval(&c.cols, r)).collect(),
    };
    let mut out = Chunk::new(c.cols.len());
    out.rows = keep.len();
    for s in 0..c.cols.len() {
        if c.filled[s] {
            out.cols[s] = keep.iter().map(|&r| c.cols[s][r]).collect();
            out.filled[s] = true;
        }
    }
    out
}

/// Probe: keep matching rows, appending payload slots. Reports one bucket
/// access per input row into `acc`.
pub fn apply_probe(
    c: &Chunk,
    ht: &SimHashTable,
    key: Slot,
    payloads: &[Slot],
    acc: &mut Vec<MemRange>,
) -> Chunk {
    let mut out = Chunk::new(c.cols.len());
    let mut keep: Vec<usize> = Vec::new();
    let mut pay: Vec<Vec<i64>> = vec![Vec::new(); payloads.len()];
    // One bucket access lands in `acc` per input row.
    acc.reserve(c.rows);
    for r in 0..c.rows {
        if let Some(p) = ht.probe(c.cols[key][r], acc) {
            keep.push(r);
            for (i, v) in p.iter().enumerate() {
                pay[i].push(*v);
            }
        }
    }
    out.rows = keep.len();
    for s in 0..c.cols.len() {
        if c.filled[s] {
            out.cols[s] = keep.iter().map(|&r| c.cols[s][r]).collect();
            out.filled[s] = true;
        }
    }
    for (i, &s) in payloads.iter().enumerate() {
        out.cols[s] = std::mem::take(&mut pay[i]);
        out.filled[s] = true;
    }
    out
}

/// Compute: evaluate `expr` into slot `out` (in place).
pub fn apply_compute(c: &mut Chunk, expr: &Expr, out: Slot) {
    let vals = expr.eval_vec(&c.cols, c.rows);
    c.fill(out, vals);
}

/// ISA expansion factor: every logical expression node costs several
/// machine instructions on a GPU (address arithmetic, predication, lane
/// masking). Applied uniformly to all engines.
pub const INST_EXPANSION: u64 = 3;

/// Per-row compute-instruction estimate of a pipeline op (program-analysis
/// input `c_inst`).
pub fn op_compute_insts(op: &PipeOp) -> u64 {
    INST_EXPANSION
        * match op {
            PipeOp::Filter(p) => p.insts() + 1,
            // Hash + bucket fetch + compare + payload moves.
            PipeOp::Probe { payloads, .. } => 10 + payloads.len() as u64,
            PipeOp::Compute { expr, .. } => expr.insts() + 1,
        }
}

/// Per-row memory-instruction estimate of a pipeline op (`m_inst`).
pub fn op_mem_insts(op: &PipeOp) -> u64 {
    match op {
        PipeOp::Filter(_) | PipeOp::Compute { .. } => 0,
        PipeOp::Probe { payloads, .. } => 1 + payloads.len() as u64,
    }
}

/// Per-row estimates for a terminal.
pub fn terminal_compute_insts(t: &Terminal) -> u64 {
    INST_EXPANSION
        * match t {
            Terminal::HashBuild { payloads, .. } => 10 + payloads.len() as u64,
            Terminal::Aggregate { groups, aggs } => {
                6 + 2 * groups.len() as u64 + aggs.iter().map(|a| a.expr.insts()).sum::<u64>()
            }
        }
}

pub fn terminal_mem_insts(t: &Terminal) -> u64 {
    match t {
        Terminal::HashBuild { payloads, .. } => 1 + payloads.len() as u64,
        Terminal::Aggregate { groups, aggs } => (groups.len() + aggs.len()) as u64 + 1,
    }
}

/// Live slots *entering* each kernel of the stage's GPL pipeline:
/// element `0` is what the scan kernel must emit (live into `ops[0]`),
/// element `i` what flows into `ops[i]`, and the final element what the
/// terminal consumes. Channel packet math uses these widths.
pub fn live_slots(stage: &Stage) -> Vec<Vec<Slot>> {
    let n = stage.ops.len();
    let mut live_after: Vec<BTreeSet<Slot>> = vec![BTreeSet::new(); n + 1];
    // Live into the terminal.
    let mut t = Vec::new();
    match &stage.terminal {
        Terminal::HashBuild { key, payloads, .. } => {
            t.push(*key);
            t.extend(payloads);
        }
        Terminal::Aggregate { groups, aggs } => {
            t.extend(groups);
            for a in aggs {
                a.expr.slots(&mut t);
            }
        }
    }
    live_after[n] = t.into_iter().collect();
    // Walk backwards: live into op i = (live out of op i minus what it
    // defines) plus what it reads.
    for i in (0..n).rev() {
        let mut set = live_after[i + 1].clone();
        let mut reads = Vec::new();
        match &stage.ops[i] {
            PipeOp::Filter(p) => p.slots(&mut reads),
            PipeOp::Probe { key, payloads, .. } => {
                for s in payloads {
                    set.remove(s);
                }
                reads.push(*key);
            }
            PipeOp::Compute { expr, out } => {
                set.remove(out);
                expr.slots(&mut reads);
            }
        }
        set.extend(reads);
        live_after[i] = set;
    }
    live_after
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect()
}

/// Sort result rows by the stage's order spec with full tie-break —
/// identical to [`gpl_tpch::QueryOutput::sort_by`], exposed for the sort
/// kernel implementations.
pub fn sort_rows(rows: &mut [Vec<i64>], order: &[(usize, bool)]) {
    rows.sort_by(|a, b| {
        for &(col, desc) in order {
            let c = a[col].cmp(&b[col]);
            if c != std::cmp::Ordering::Equal {
                return if desc { c.reverse() } else { c };
            }
        }
        a.cmp(b)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use gpl_sim::mem::MemoryMap;

    fn chunk3() -> Chunk {
        let mut c = Chunk::new(4);
        c.fill(0, vec![1, 2, 3]);
        c.fill(1, vec![10, 20, 30]);
        c
    }

    #[test]
    fn filter_compacts_filled_slots() {
        let c = chunk3();
        let out = apply_filter(&c, &Pred::cmp(CmpOp::Ge, Expr::slot(0), Expr::lit(2)));
        assert_eq!(out.rows, 2);
        assert_eq!(out.cols[0], vec![2, 3]);
        assert_eq!(out.cols[1], vec![20, 30]);
        assert!(!out.filled[2]);
    }

    #[test]
    fn probe_extends_and_drops() {
        let mut mem = MemoryMap::new();
        let mut ht = SimHashTable::new(&mut mem, 4, 1, "t");
        let mut acc = Vec::new();
        ht.insert(1, &[100], &mut acc);
        ht.insert(3, &[300], &mut acc);
        let c = chunk3();
        acc.clear();
        let out = apply_probe(&c, &ht, 0, &[2], &mut acc);
        assert_eq!(out.rows, 2);
        assert_eq!(out.cols[0], vec![1, 3]);
        assert_eq!(out.cols[1], vec![10, 30]);
        assert_eq!(out.cols[2], vec![100, 300]);
        assert_eq!(acc.len(), 3, "one bucket access per input row");
    }

    #[test]
    fn compute_fills_slot() {
        let mut c = chunk3();
        apply_compute(&mut c, &Expr::slot(0).add(Expr::slot(1)), 2);
        assert_eq!(c.cols[2], vec![11, 22, 33]);
        assert!(c.filled[2]);
    }

    #[test]
    fn liveness_narrows_the_stream() {
        use crate::plan::{Stage, Terminal};
        // Loads 0,1,2; filter on 0; compute 3 = 1+2; aggregate sums 3.
        let st = Stage {
            name: "t".into(),
            driver: "lineitem".into(),
            loads: vec!["a".into(), "b".into(), "c".into()],
            ops: vec![
                PipeOp::Filter(Pred::cmp(CmpOp::Ge, Expr::slot(0), Expr::lit(0))),
                PipeOp::Compute {
                    expr: Expr::slot(1).add(Expr::slot(2)),
                    out: 3,
                },
            ],
            terminal: Terminal::sum_aggregate(vec![], vec![Expr::slot(3)]),
        };
        let live = live_slots(&st);
        assert_eq!(live.len(), 3);
        assert_eq!(live[0], vec![0, 1, 2], "filter needs 0; compute needs 1,2");
        assert_eq!(live[1], vec![1, 2], "slot 0 dead after the filter");
        assert_eq!(live[2], vec![3], "terminal needs only the computed slot");
        assert_eq!(Chunk::row_bytes(&live[2]), 8);
    }

    #[test]
    fn op_costs_are_positive_and_scale() {
        let f = PipeOp::Filter(Pred::True);
        let p = PipeOp::Probe {
            ht: 0,
            key: 0,
            payloads: vec![1, 2],
        };
        assert!(op_compute_insts(&f) >= 1);
        assert_eq!(op_mem_insts(&p), 3);
        assert!(op_compute_insts(&p) > op_compute_insts(&f));
    }

    #[test]
    fn sort_rows_full_tiebreak() {
        let mut rows = vec![vec![1, 5], vec![2, 5], vec![0, 9]];
        sort_rows(&mut rows, &[(1, true)]);
        assert_eq!(rows, vec![vec![0, 9], vec![1, 5], vec![2, 5]]);
    }
}
