//! The GPL pipelined executor (Section 3).
//!
//! A stage's kernels — the fused leaf `k_map*` (scan + leading filters /
//! computed columns), one `k_hash_probe*` per hash probe (with trailing
//! maps fused in), and the blocking terminal — are launched
//! *concurrently* and connected by channels. The input is tiled
//! (Section 3.3): the leaf streams one tile at a time and waits for its
//! output channel to drain before starting the next, and channel buffers
//! are sized to the tile, which is how the tile-size knob reaches the
//! cache. Intermediate results flow through channels without
//! materialization in global memory; only the blocking terminal (hash
//! build, aggregation) writes global state — exactly Figure 8's contrast
//! with KBE.

use crate::error::ExecError;
use crate::exec::{ExecContext, StageConfig};
use crate::expr::{Expr, Pred, Slot};
use crate::ht::{GroupStore, SimHashTable};
use crate::ops::{self, apply_compute, apply_filter, apply_probe, Chunk};
use crate::plan::{PipeOp, Stage, Terminal};
use crate::segment::SegmentIr;
use gpl_sim::mem::MemRange;
use gpl_sim::{ChannelId, ChannelView, KernelDesc, LaunchProfile, Work, WorkUnit};
use gpl_storage::Tiling;
use gpl_tpch::TpchDb;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

/// Rows a leaf work-group quantum covers.
pub const SCAN_BATCH_ROWS: usize = 4096;
/// Extra per-tile dispatch instructions charged to the leaf's first batch
/// of each tile (the workload scheduler's cost, Section 3.1).
const TILE_DISPATCH_INSTS: u64 = 256;
/// Maximum chunks a consumer fuses into one work-group quantum.
const MAX_CHUNKS_PER_UNIT: usize = 4;

/// Functional data queue riding alongside a channel: chunks plus their
/// packet counts and a producer-stamped checksum (the timing side lives
/// in the simulator's channel). Consumers re-hash on pop — the per-tile
/// integrity check the fault plane's `ChannelCorrupt` injections model
/// tripping.
type DataQ = Rc<RefCell<VecDeque<(Chunk, u64, u64)>>>;

/// FNV-1a over a chunk's shape and every filled slot's values: the
/// per-tile checksum producers stamp on each queued chunk.
pub(crate) fn chunk_checksum(c: &Chunk) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(c.rows as u64);
    for (s, col) in c.cols.iter().enumerate() {
        if !c.filled[s] {
            continue;
        }
        mix(s as u64);
        for &v in col {
            mix(v as u64);
        }
    }
    h
}

fn packets_for(rows: usize, row_bytes: u64, packet_bytes: u32) -> u64 {
    ((rows as u64 * row_bytes).div_ceil(packet_bytes as u64)).max(1)
}

/// One fused pipeline op with its per-row cost estimates.
struct ExecStep {
    exec: OpExec,
    per_row_compute: u64,
    per_row_mem: u64,
}

/// What a pipeline op does to each chunk.
enum OpExec {
    Filter(Pred),
    Probe {
        table: Rc<RefCell<SimHashTable>>,
        key: Slot,
        payloads: Vec<Slot>,
    },
    Compute {
        expr: Expr,
        out: Slot,
    },
}

impl ExecStep {
    fn from_op(op: &PipeOp, hts: &[Option<Rc<RefCell<SimHashTable>>>]) -> Self {
        let exec = match op {
            PipeOp::Filter(p) => OpExec::Filter(p.clone()),
            PipeOp::Probe { ht, key, payloads } => OpExec::Probe {
                table: hts[*ht].as_ref().expect("probed table built").clone(),
                key: *key,
                payloads: payloads.clone(),
            },
            PipeOp::Compute { expr, out } => OpExec::Compute {
                expr: expr.clone(),
                out: *out,
            },
        };
        ExecStep {
            exec,
            per_row_compute: ops::op_compute_insts(op),
            per_row_mem: ops::op_mem_insts(op),
        }
    }
}

/// Run `chunk` through the fused steps, accumulating instruction counts
/// (each step charged at its own input cardinality) and hash-table
/// traffic. Returns the surviving chunk.
fn apply_steps(
    steps: &[ExecStep],
    mut chunk: Chunk,
    acc: &mut Vec<MemRange>,
    compute: &mut u64,
    mem: &mut u64,
) -> Chunk {
    for s in steps {
        if chunk.rows == 0 {
            break;
        }
        *compute += chunk.rows as u64 * s.per_row_compute;
        *mem += chunk.rows as u64 * s.per_row_mem;
        chunk = match &s.exec {
            OpExec::Filter(p) => apply_filter(&chunk, p),
            OpExec::Probe {
                table,
                key,
                payloads,
            } => apply_probe(&chunk, &table.borrow(), *key, payloads, acc),
            OpExec::Compute { expr, out } => {
                apply_compute(&mut chunk, expr, *out);
                chunk
            }
        };
    }
    chunk
}

/// The fused leaf kernel (`k_map*`): scans tiles of the driving relation,
/// applies the leading filters / computed columns, and streams surviving
/// rows into the first channel.
///
/// Columns the leading ops read are loaded *eagerly* (streamed); columns
/// that are merely shipped onward are *gathered lazily* for the surviving
/// rows only — the way a real map kernel evaluates its predicate before
/// touching payload columns. A hidden row-id slot tracks survivors.
struct LeafSource {
    db: Arc<TpchDb>,
    table: String,
    /// Eagerly streamed: (slot, table column index, base, width).
    cols: Vec<(Slot, usize, u64, u64)>,
    /// Lazily gathered for survivors: (slot, column index, base, width).
    lazy_cols: Vec<(Slot, usize, u64, u64)>,
    num_slots: usize,
    /// Index of the hidden row-id slot (`num_slots`).
    rowid_slot: usize,
    steps: Vec<ExecStep>,
    /// Slots shipped to the next kernel.
    ship: Vec<Slot>,
    tiling: Tiling,
    tile_idx: usize,
    cursor: usize,
    out: ChannelId,
    out_q: DataQ,
    out_row_bytes: u64,
    packet_bytes: u32,
    wavefront: u64,
}

/// Keep only the shipped slots filled (narrows the channel stream to the
/// live set, like a projection before the pipe write).
fn project_to(chunk: &mut Chunk, ship: &[Slot]) {
    for s in 0..chunk.cols.len() {
        if chunk.filled[s] && !ship.contains(&s) {
            chunk.cols[s] = Vec::new();
            chunk.filled[s] = false;
        }
    }
}

impl gpl_sim::WorkSource for LeafSource {
    fn next(&mut self, view: &dyn ChannelView) -> Work {
        let total = self.tiling.rows();
        if self.cursor >= total {
            return Work::Done;
        }
        let tile = self.tiling.tile(self.tile_idx);
        let tile_start = self.cursor == tile.start;
        // Tile barrier (Section 3.3): a new tile starts only after the
        // pipeline has drained the previous one from this channel.
        if tile_start && self.tile_idx > 0 && view.available(self.out) > 0 {
            return Work::Wait;
        }
        let end = (self.cursor + SCAN_BATCH_ROWS).min(tile.end);
        let rows = end - self.cursor;
        // Conservative backpressure: every scanned row might survive.
        let worst_packets = packets_for(rows, self.out_row_bytes, self.packet_bytes);
        if view.space(self.out) < worst_packets {
            return Work::Wait;
        }
        let t = self.db.table(&self.table);
        let mut chunk = Chunk::new(self.num_slots + 1);
        let mut accesses = Vec::with_capacity(self.cols.len() + self.lazy_cols.len());
        for &(slot, ci, base, width) in &self.cols {
            let col = t.col_at(ci);
            chunk.fill(slot, (self.cursor..end).map(|r| col.get_i64(r)).collect());
            accesses.push(MemRange::read(
                base + self.cursor as u64 * width,
                rows as u64 * width,
            ));
        }
        chunk.fill(
            self.rowid_slot,
            (self.cursor..end).map(|r| r as i64).collect(),
        );
        let mut compute = rows as u64 * 2 * ops::INST_EXPANSION * self.cols.len() as u64;
        let mut mem = rows as u64 * self.cols.len() as u64;
        let mut out = apply_steps(&self.steps, chunk, &mut accesses, &mut compute, &mut mem);
        if out.rows > 0 && !self.lazy_cols.is_empty() {
            // Gather the shipped-only columns at surviving positions;
            // consecutive survivors coalesce into contiguous reads.
            let rowids: Vec<i64> = out.cols[self.rowid_slot].clone();
            for &(slot, ci, base, width) in &self.lazy_cols {
                let col = t.col_at(ci);
                out.fill(
                    slot,
                    rowids.iter().map(|&r| col.get_i64(r as usize)).collect(),
                );
                let mut run: Option<(i64, u64)> = None; // (start row, len)
                for &r in &rowids {
                    match run {
                        Some((s, len)) if r == s + len as i64 => run = Some((s, len + 1)),
                        _ => {
                            if let Some((s, len)) = run {
                                accesses.push(MemRange::read(base + s as u64 * width, len * width));
                            }
                            run = Some((r, 1));
                        }
                    }
                }
                if let Some((s, len)) = run {
                    accesses.push(MemRange::read(base + s as u64 * width, len * width));
                }
            }
            compute += out.rows as u64 * 2 * ops::INST_EXPANSION * self.lazy_cols.len() as u64;
            mem += out.rows as u64 * self.lazy_cols.len() as u64;
        }
        let mut unit = WorkUnit {
            compute_insts: compute.div_ceil(self.wavefront)
                + if tile_start { TILE_DISPATCH_INSTS } else { 0 },
            mem_insts: mem.div_ceil(self.wavefront),
            accesses,
            ..Default::default()
        };
        if out.rows > 0 {
            project_to(&mut out, &self.ship);
            let packets = packets_for(out.rows, self.out_row_bytes, self.packet_bytes);
            let sum = chunk_checksum(&out);
            self.out_q.borrow_mut().push_back((out, packets, sum));
            unit = unit.push(self.out, packets);
        }
        self.cursor = end;
        if self.cursor == tile.end && self.cursor < total {
            self.tile_idx += 1;
        }
        Work::Unit(unit)
    }
}

/// A fused probe kernel: pops chunks, probes (+ fused maps), pushes.
struct ProbeSource {
    steps: Vec<ExecStep>,
    ship: Vec<Slot>,
    input: ChannelId,
    in_q: DataQ,
    out: ChannelId,
    out_q: DataQ,
    out_row_bytes: u64,
    packet_bytes: u32,
    wavefront: u64,
}

/// Pop as many whole chunks as the channel's available packets and the
/// output budget allow. Returns (chunks, packets popped) or None.
fn take_chunks(
    view: &dyn ChannelView,
    input: ChannelId,
    in_q: &DataQ,
    out_budget: Option<(u64, u64, u32)>, // (space, out_row_bytes, packet_bytes)
) -> Option<(Vec<Chunk>, u64)> {
    let mut budget_in = view.available(input);
    if budget_in == 0 {
        return None;
    }
    let mut q = in_q.borrow_mut();
    let mut chunks = Vec::new();
    let mut popped = 0u64;
    let mut rows = 0usize;
    while chunks.len() < MAX_CHUNKS_PER_UNIT {
        let Some((chunk, packets, _)) = q.front() else {
            break;
        };
        if *packets > budget_in {
            break;
        }
        if let Some((space, w, p)) = out_budget {
            // Worst case: every input row survives.
            let worst = packets_for(rows + chunk.rows, w, p);
            if worst > space {
                break;
            }
        }
        budget_in -= *packets;
        popped += *packets;
        rows += chunk.rows;
        let (chunk, _, sum) = q.pop_front().expect("front exists");
        // Channel-transit integrity: a mismatch means a chunk was mutated
        // while queued — an engine invariant breach, never expected in
        // the simulator (injected `ChannelCorrupt` faults model this
        // check firing and are surfaced at launch admission instead).
        assert_eq!(
            chunk_checksum(&chunk),
            sum,
            "channel chunk corrupted in transit on channel {input:?}"
        );
        chunks.push(chunk);
    }
    if chunks.is_empty() {
        None
    } else {
        Some((chunks, popped))
    }
}

/// Concatenate chunks slot-wise.
fn concat(mut chunks: Vec<Chunk>) -> Chunk {
    let mut merged = chunks.swap_remove(0);
    for c in chunks {
        for s in 0..merged.cols.len() {
            if c.filled[s] {
                if merged.filled[s] {
                    merged.cols[s].extend_from_slice(&c.cols[s]);
                } else {
                    merged.cols[s] = c.cols[s].clone();
                    merged.filled[s] = true;
                }
            }
        }
        merged.rows += c.rows;
    }
    merged
}

impl gpl_sim::WorkSource for ProbeSource {
    fn next(&mut self, view: &dyn ChannelView) -> Work {
        let out_budget = Some((view.space(self.out), self.out_row_bytes, self.packet_bytes));
        match take_chunks(view, self.input, &self.in_q, out_budget) {
            None => {
                if view.eof(self.input) && self.in_q.borrow().is_empty() {
                    Work::Done
                } else {
                    Work::Wait
                }
            }
            Some((chunks, popped)) => {
                let merged = concat(chunks);
                let mut acc = Vec::new();
                let mut compute = 0u64;
                let mut mem = 0u64;
                let mut out = apply_steps(&self.steps, merged, &mut acc, &mut compute, &mut mem);
                let mut unit = WorkUnit {
                    compute_insts: compute.div_ceil(self.wavefront).max(1),
                    mem_insts: mem.div_ceil(self.wavefront),
                    accesses: acc,
                    ..Default::default()
                }
                .pop(self.input, popped);
                if out.rows > 0 {
                    project_to(&mut out, &self.ship);
                    let packets = packets_for(out.rows, self.out_row_bytes, self.packet_bytes);
                    let sum = chunk_checksum(&out);
                    self.out_q.borrow_mut().push_back((out, packets, sum));
                    unit = unit.push(self.out, packets);
                }
                Work::Unit(unit)
            }
        }
    }
}

/// What the blocking terminal does with each chunk.
enum TermExec {
    Build {
        table: Rc<RefCell<SimHashTable>>,
        key: Slot,
        payloads: Vec<Slot>,
    },
    Aggregate {
        store: Rc<RefCell<GroupStore>>,
        groups: Vec<Slot>,
        aggs: Vec<crate::plan::Agg>,
    },
}

/// The terminal kernel: consumes packets and updates the blocking output
/// (hash table or group store) — `k_hash_build` / `k_reduce*`.
struct TermSource {
    exec: TermExec,
    input: ChannelId,
    in_q: DataQ,
    per_row_compute: u64,
    per_row_mem: u64,
    wavefront: u64,
}

impl gpl_sim::WorkSource for TermSource {
    fn next(&mut self, view: &dyn ChannelView) -> Work {
        match take_chunks(view, self.input, &self.in_q, None) {
            None => {
                if view.eof(self.input) && self.in_q.borrow().is_empty() {
                    Work::Done
                } else {
                    Work::Wait
                }
            }
            Some((chunks, popped)) => {
                let mut acc = Vec::new();
                let mut rows = 0usize;
                for c in &chunks {
                    rows += c.rows;
                    match &self.exec {
                        TermExec::Build {
                            table,
                            key,
                            payloads,
                        } => {
                            let mut t = table.borrow_mut();
                            for r in 0..c.rows {
                                let pay: Vec<i64> =
                                    payloads.iter().map(|&p| c.cols[p][r]).collect();
                                t.insert(c.cols[*key][r], &pay, &mut acc);
                            }
                        }
                        TermExec::Aggregate {
                            store,
                            groups,
                            aggs,
                        } => {
                            let mut s = store.borrow_mut();
                            for r in 0..c.rows {
                                let keys: Vec<i64> = groups.iter().map(|&g| c.cols[g][r]).collect();
                                let values: Vec<i64> =
                                    aggs.iter().map(|a| a.expr.eval(&c.cols, r)).collect();
                                s.update(&keys, &values, &mut acc);
                            }
                        }
                    }
                }
                Work::Unit(
                    WorkUnit {
                        compute_insts: (rows as u64 * self.per_row_compute)
                            .div_ceil(self.wavefront)
                            .max(1),
                        mem_insts: (rows as u64 * self.per_row_mem).div_ceil(self.wavefront),
                        accesses: acc,
                        ..Default::default()
                    }
                    .pop(self.input, popped),
                )
            }
        }
    }
}

/// Run one stage as a GPL pipeline, launching the kernels and channels
/// its lowered [`SegmentIr`] describes (`ir` must be the lowering of
/// `stage` at this context's wavefront). The channel pipeline is the
/// only execution path whose kernels can block on each other, so it is
/// the only one that can deadlock — hence the `Result`; KBE and replay
/// kernels never return `Work::Wait` and stay infallible.
pub(crate) fn run_stage(
    ctx: &mut ExecContext,
    ir: &SegmentIr,
    stage: &Stage,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    build: Option<&Rc<RefCell<SimHashTable>>>,
    agg: Option<&Rc<RefCell<GroupStore>>>,
    cfg: &StageConfig,
) -> Result<LaunchProfile, ExecError> {
    let spec = ctx.sim.spec().clone();
    let wavefront = spec.wavefront_size;
    ir.validate_config(cfg).map_err(ExecError::InvalidConfig)?;
    let num_kernels = ir.nodes.len();
    let num_edges = ir.edges.len();

    // Channel buffers are sized to the tile (Section 3.3); capacity is
    // also kept large enough for the biggest single batch to avoid
    // artificial deadlock, and floored at 64 packets.
    let mut channels = Vec::with_capacity(num_edges);
    let mut queues: Vec<DataQ> = Vec::with_capacity(num_edges);
    for edge in &ir.edges {
        // A quarter of the tile may be in flight per edge (Section 3.3:
        // buffers scale with the tile so the knob reaches the cache).
        let tile_packets = (cfg.tile_bytes / 4).div_ceil(cfg.packet_bytes as u64);
        let batch_packets = packets_for(SCAN_BATCH_ROWS, edge.row_bytes, cfg.packet_bytes);
        let cap_per_port = tile_packets
            .div_ceil(cfg.n_channels as u64)
            .max(2 * batch_packets)
            .clamp(64, 1 << 24) as u32;
        channels.push(ctx.sim.create_channel_with_capacity(
            cfg.n_channels,
            cfg.packet_bytes,
            cap_per_port,
        ));
        queues.push(Rc::new(RefCell::new(VecDeque::new())));
    }

    let t = ctx.db.table(&stage.driver);
    let layout = ctx.layout(&stage.driver);
    // The IR's eager/lazy leaf split, bound to this context's simulated
    // column addresses: (slot, column index, base, width).
    let bind =
        |c: &crate::segment::LeafColumn| (c.slot, c.col, layout.scan(c.col, 0..1).addr, c.width);
    let cols: Vec<(Slot, usize, u64, u64)> = ir.eager.iter().map(bind).collect();
    let lazy_cols: Vec<(Slot, usize, u64, u64)> = ir.lazy.iter().map(bind).collect();
    let tiling = Tiling::by_bytes(t.rows(), ir.row_bytes, cfg.tile_bytes);

    let mut kernels = Vec::with_capacity(num_kernels);
    kernels.push(
        KernelDesc::new(
            ir.nodes[0].name.clone(),
            ir.nodes[0].resources,
            cfg.wg_counts[0],
            Box::new(LeafSource {
                db: ctx.db.clone(),
                table: stage.driver.clone(),
                cols,
                lazy_cols,
                num_slots: stage.num_slots(),
                rowid_slot: stage.num_slots(),
                steps: ir.nodes[0]
                    .ops
                    .iter()
                    .map(|&i| ExecStep::from_op(&stage.ops[i], hts))
                    .collect(),
                ship: ir.edges[0].ship.clone(),
                tiling,
                tile_idx: 0,
                cursor: 0,
                out: channels[0],
                out_q: queues[0].clone(),
                out_row_bytes: ir.edges[0].row_bytes,
                packet_bytes: cfg.packet_bytes,
                wavefront: wavefront as u64,
            }),
        )
        .writes_channel(channels[0]),
    );

    for g in 1..num_edges {
        let node = &ir.nodes[g];
        kernels.push(
            KernelDesc::new(
                node.name.clone(),
                node.resources,
                cfg.wg_counts[g],
                Box::new(ProbeSource {
                    steps: node
                        .ops
                        .iter()
                        .map(|&i| ExecStep::from_op(&stage.ops[i], hts))
                        .collect(),
                    ship: ir.edges[g].ship.clone(),
                    input: channels[g - 1],
                    in_q: queues[g - 1].clone(),
                    out: channels[g],
                    out_q: queues[g].clone(),
                    out_row_bytes: ir.edges[g].row_bytes,
                    packet_bytes: cfg.packet_bytes,
                    wavefront: wavefront as u64,
                }),
            )
            .reads_channel(channels[g - 1])
            .writes_channel(channels[g]),
        );
    }

    let exec = match &stage.terminal {
        Terminal::HashBuild { key, payloads, .. } => TermExec::Build {
            table: build.expect("build target").clone(),
            key: *key,
            payloads: payloads.clone(),
        },
        Terminal::Aggregate { groups, aggs } => TermExec::Aggregate {
            store: agg.expect("aggregate store").clone(),
            groups: groups.clone(),
            aggs: aggs.clone(),
        },
    };
    let last = num_edges - 1;
    let term = ir.nodes.last().expect("terminal node");
    kernels.push(
        KernelDesc::new(
            term.name.clone(),
            term.resources,
            cfg.wg_counts[num_kernels - 1],
            Box::new(TermSource {
                exec,
                input: channels[last],
                in_q: queues[last].clone(),
                per_row_compute: term.per_row_compute,
                per_row_mem: term.per_row_mem,
                wavefront: wavefront as u64,
            }),
        )
        .reads_channel(channels[last]),
    );

    ctx.run_kernels(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecContext, StageConfig};
    use crate::plan::{listing1_plan, q14_plan};
    use gpl_sim::amd_a10;
    use gpl_storage::days;
    use gpl_tpch::{Q14Params, TpchDb};

    fn ctx() -> ExecContext {
        ExecContext::new(amd_a10(), TpchDb::at_scale(0.002))
    }

    fn cfg(stage: &Stage) -> StageConfig {
        StageConfig::default_for(&amd_a10(), stage)
    }

    fn ir_for(ctx: &ExecContext, stage: &Stage) -> SegmentIr {
        SegmentIr::lower(
            stage,
            ctx.db.table(&stage.driver),
            ctx.sim.spec().wavefront_size,
        )
    }

    #[test]
    fn listing1_pipeline_matches_reference_and_figure7() {
        let mut ctx = ctx();
        let cutoff = days("1998-11-01");
        let plan = listing1_plan(cutoff);
        let stage = &plan.stages[0];
        // Figure 7c: the whole selection + projection fuses into one map
        // kernel feeding k_reduce* — exactly two concurrent kernels.
        assert_eq!(stage.gpl_kernel_names().len(), 2);
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            1,
            "t",
        )));
        let ir = ir_for(&ctx, stage);
        let p = run_stage(&mut ctx, &ir, stage, &[], None, Some(&agg), &cfg(stage)).unwrap();
        let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
        let want = gpl_tpch::reference::listing1(&ctx.db, cutoff);
        assert_eq!(got, want.rows);
        assert_eq!(p.kernels.len(), 2);
        assert!(p.total_dc_cycles() > 0, "channels must be exercised");
    }

    #[test]
    fn q14_pipeline_matches_reference() {
        let mut ctx = ctx();
        let params = Q14Params::default();
        let plan = q14_plan(&ctx.db, params);
        let ht = Rc::new(RefCell::new(SimHashTable::new(
            &mut ctx.sim.mem,
            ctx.db.part.rows(),
            1,
            "part",
        )));
        let s0 = &plan.stages[0];
        let ir0 = ir_for(&ctx, s0);
        run_stage(&mut ctx, &ir0, s0, &[], Some(&ht), None, &cfg(s0)).unwrap();
        assert_eq!(ht.borrow().len(), ctx.db.part.rows());

        let hts = vec![Some(ht)];
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            2,
            "t",
        )));
        let s1 = &plan.stages[1];
        // Q14's probe pipeline: leaf map, probe(+fused maps), reduce.
        assert_eq!(s1.gpl_kernel_names().len(), 3);
        let ir1 = ir_for(&ctx, s1);
        run_stage(&mut ctx, &ir1, s1, &hts, None, Some(&agg), &cfg(s1)).unwrap();
        let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
        let want = gpl_tpch::reference::q14(&ctx.db, params);
        assert_eq!(got, want.rows);
    }

    #[test]
    fn gpl_materializes_less_than_kbe() {
        let cutoff = days("1998-11-01");
        let plan = listing1_plan(cutoff);
        let stage = &plan.stages[0];

        let mut c1 = ctx();
        let agg1 = Rc::new(RefCell::new(GroupStore::new(&mut c1.sim.mem, 4, 0, 1, "t")));
        let rows = c1.db.lineitem.rows();
        let kbe_ir = ir_for(&c1, stage);
        let kbe_prof =
            crate::kbe::run_stage_range(&mut c1, &kbe_ir, stage, &[], None, Some(&agg1), 0..rows);

        let mut c2 = ctx();
        let agg2 = Rc::new(RefCell::new(GroupStore::new(&mut c2.sim.mem, 4, 0, 1, "t")));
        let ir = ir_for(&c2, stage);
        let gpl_prof = run_stage(&mut c2, &ir, stage, &[], None, Some(&agg2), &cfg(stage)).unwrap();

        assert!(
            gpl_prof.intermediate_footprint() < kbe_prof.intermediate_footprint() / 4,
            "GPL {} vs KBE {} materialized intermediate footprint",
            gpl_prof.intermediate_footprint(),
            kbe_prof.intermediate_footprint()
        );
    }

    #[test]
    fn chunk_checksum_detects_any_mutation() {
        let mut c = Chunk::new(3);
        c.fill(0, vec![1, 2, 3]);
        c.fill(2, vec![-7, 0, 9]);
        let sum = chunk_checksum(&c);
        assert_eq!(sum, chunk_checksum(&c.clone()), "pure over clones");

        let mut flipped = c.clone();
        flipped.cols[2][1] = 1;
        assert_ne!(sum, chunk_checksum(&flipped), "value flip detected");

        let mut truncated = c.clone();
        truncated.cols[0].pop();
        truncated.cols[2].pop();
        truncated.rows = 2;
        assert_ne!(sum, chunk_checksum(&truncated), "row drop detected");

        // Unfilled slots are dead state and must not affect the sum.
        let mut junk = c.clone();
        junk.cols[1] = vec![99];
        assert_eq!(sum, chunk_checksum(&junk));
    }

    #[test]
    fn fusion_groups_probe_boundaries() {
        let db = TpchDb::at_scale(0.002);
        let plan = crate::plan::q8_plan(&db);
        let probe_stage = plan.stages.last().unwrap();
        let groups = probe_stage.gpl_fusion();
        // Q8 probe pipeline: the leaf fuses the first probe (no leading
        // selection), then 3 more probes, with the computes fused into
        // the last one.
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].len(), 1, "leaf absorbs the steel semi-probe");
        assert_eq!(groups[3].len(), 4, "last probe absorbs 3 computes");
        assert_eq!(probe_stage.gpl_kernel_names().len(), 5);
    }
}
