//! The GPL pipelined executor (Section 3).
//!
//! A stage's kernels — the fused leaf `k_map*` (scan + leading filters /
//! computed columns), one `k_hash_probe*` per hash probe (with trailing
//! maps fused in), and the blocking terminal — are launched
//! *concurrently* and connected by channels. The input is tiled
//! (Section 3.3): the leaf streams one tile at a time and waits for its
//! output channel to drain before starting the next, and channel buffers
//! are sized to the tile, which is how the tile-size knob reaches the
//! cache. Intermediate results flow through channels without
//! materialization in global memory; only the blocking terminal (hash
//! build, aggregation) writes global state — exactly Figure 8's contrast
//! with KBE.

use crate::error::ExecError;
use crate::exec::{ExecContext, StageConfig};
use crate::expr::{Expr, Pred, Slot};
use crate::ht::{GroupStore, SimHashTable};
use crate::ops::{self, apply_compute, apply_filter, apply_probe, Chunk};
use crate::plan::{PipeOp, Stage, Terminal};
use crate::segment::{InterSegmentEdge, SegmentIr};
use gpl_sim::mem::MemRange;
use gpl_sim::{ChannelId, ChannelView, KernelDesc, LaunchProfile, RegionClass, Work, WorkUnit};
use gpl_storage::Tiling;
use gpl_tpch::TpchDb;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

/// Rows a leaf work-group quantum covers.
pub const SCAN_BATCH_ROWS: usize = 4096;
/// Extra per-tile dispatch instructions charged to the leaf's first batch
/// of each tile (the workload scheduler's cost, Section 3.1).
const TILE_DISPATCH_INSTS: u64 = 256;
/// Maximum chunks a consumer fuses into one work-group quantum.
const MAX_CHUNKS_PER_UNIT: usize = 4;
/// Unit row cap for kernels of a fused (cross-segment) launch. With two
/// segments sharing the device's few dispatch lanes, a kernel waits
/// longer between dispatches and its input backlog grows; uncapped it
/// would drain the backlog as one giant unit whose output chunk fattens
/// the next kernel's units in turn, serializing the probe cascade onto
/// single CUs. Capping at the leaf batch size keeps units small enough
/// to spread across CUs. Sequential launches are uncapped so their
/// timing (and every pinned trace) is untouched.
const FUSED_UNIT_ROWS: usize = SCAN_BATCH_ROWS;

/// Functional data queue riding alongside a channel: chunks plus their
/// packet counts and a producer-stamped checksum (the timing side lives
/// in the simulator's channel). Debug builds re-hash on pop — the
/// per-tile integrity check the fault plane's `ChannelCorrupt`
/// injections model tripping. Release builds skip the stamp-and-verify
/// sweep: the queue is a plain in-process value store, so a mismatch
/// would mean the engine mutated a queued chunk — an invariant breach
/// (injected corruption is surfaced at launch admission, never here),
/// and the sweep is the leaf/probe data plane's largest pure overhead.
type DataQ = Rc<RefCell<VecDeque<(Chunk, u64, u64)>>>;

/// Producer-side transit stamp for a queued chunk: the checksum in
/// debug builds, `0` (never verified) in release builds.
#[inline]
fn transit_stamp(c: &Chunk) -> u64 {
    if cfg!(debug_assertions) {
        chunk_checksum(c)
    } else {
        0
    }
}

/// Consumer-side transit verify, paired with [`transit_stamp`]:
/// re-hash and compare in debug builds, no-op in release builds.
#[inline]
fn verify_transit(c: &Chunk, sum: u64, ch: ChannelId) {
    if cfg!(debug_assertions) {
        assert_eq!(
            chunk_checksum(c),
            sum,
            "channel chunk corrupted in transit on channel {ch:?}"
        );
    }
}

/// FNV-1a over a chunk's shape and every filled slot's values: the
/// per-tile checksum producers stamp on each queued chunk.
pub(crate) fn chunk_checksum(c: &Chunk) -> u64 {
    // FNV-style chain over whole 64-bit words, not bytes: the checksum
    // is only ever compared against a checksum of the same chunk (push
    // vs pop), so what matters is purity and mutation sensitivity —
    // each step xors the full value then multiplies by an odd prime (a
    // bijection), so any changed value, slot index or row count changes
    // the digest. One multiply per value makes the per-hop integrity
    // sweep ~8x cheaper than the byte-at-a-time variant.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = (OFFSET ^ c.rows as u64).wrapping_mul(PRIME);
    for (s, col) in c.cols.iter().enumerate() {
        if !c.filled[s] {
            continue;
        }
        h = (h ^ s as u64).wrapping_mul(PRIME);
        for &v in col {
            h = (h ^ v as u64).wrapping_mul(PRIME);
        }
    }
    h
}

fn packets_for(rows: usize, row_bytes: u64, packet_bytes: u32) -> u64 {
    ((rows as u64 * row_bytes).div_ceil(packet_bytes as u64)).max(1)
}

/// One fused pipeline op with its per-row cost estimates.
struct ExecStep {
    exec: OpExec,
    per_row_compute: u64,
    per_row_mem: u64,
}

/// What a pipeline op does to each chunk.
enum OpExec {
    Filter(Pred),
    Probe {
        table: Rc<RefCell<SimHashTable>>,
        key: Slot,
        payloads: Vec<Slot>,
    },
    Compute {
        expr: Expr,
        out: Slot,
    },
}

impl ExecStep {
    fn from_op(op: &PipeOp, hts: &[Option<Rc<RefCell<SimHashTable>>>]) -> Self {
        let exec = match op {
            PipeOp::Filter(p) => OpExec::Filter(p.clone()),
            PipeOp::Probe { ht, key, payloads } => OpExec::Probe {
                table: hts[*ht].as_ref().expect("probed table built").clone(),
                key: *key,
                payloads: payloads.clone(),
            },
            PipeOp::Compute { expr, out } => OpExec::Compute {
                expr: expr.clone(),
                out: *out,
            },
        };
        ExecStep {
            exec,
            per_row_compute: ops::op_compute_insts(op),
            per_row_mem: ops::op_mem_insts(op),
        }
    }
}

/// Run `chunk` through the fused steps, accumulating instruction counts
/// (each step charged at its own input cardinality) and hash-table
/// traffic. Returns the surviving chunk.
fn apply_steps(
    steps: &[ExecStep],
    mut chunk: Chunk,
    acc: &mut Vec<MemRange>,
    compute: &mut u64,
    mem: &mut u64,
) -> Chunk {
    for s in steps {
        if chunk.rows == 0 {
            break;
        }
        *compute += chunk.rows as u64 * s.per_row_compute;
        *mem += chunk.rows as u64 * s.per_row_mem;
        chunk = match &s.exec {
            OpExec::Filter(p) => apply_filter(&chunk, p),
            OpExec::Probe {
                table,
                key,
                payloads,
            } => apply_probe(&chunk, &table.borrow(), *key, payloads, acc),
            OpExec::Compute { expr, out } => {
                apply_compute(&mut chunk, expr, *out);
                chunk
            }
        };
    }
    chunk
}

/// The fused leaf kernel (`k_map*`): scans tiles of the driving relation,
/// applies the leading filters / computed columns, and streams surviving
/// rows into the first channel.
///
/// Columns the leading ops read are loaded *eagerly* (streamed); columns
/// that are merely shipped onward are *gathered lazily* for the surviving
/// rows only — the way a real map kernel evaluates its predicate before
/// touching payload columns. A hidden row-id slot tracks survivors.
struct LeafSource {
    db: Arc<TpchDb>,
    table: String,
    /// Eagerly streamed: (slot, table column index, base, width).
    cols: Vec<(Slot, usize, u64, u64)>,
    /// Lazily gathered for survivors: (slot, column index, base, width).
    lazy_cols: Vec<(Slot, usize, u64, u64)>,
    num_slots: usize,
    /// Index of the hidden row-id slot (`num_slots`).
    rowid_slot: usize,
    steps: Vec<ExecStep>,
    /// Slots shipped to the next kernel.
    ship: Vec<Slot>,
    /// First absolute row of this kernel's shard of the driving relation;
    /// `tiling`/`cursor` are relative to it. 0 for an unsharded scan.
    base: usize,
    tiling: Tiling,
    tile_idx: usize,
    cursor: usize,
    out: ChannelId,
    out_q: DataQ,
    out_row_bytes: u64,
    packet_bytes: u32,
    wavefront: u64,
}

/// Keep only the shipped slots filled (narrows the channel stream to the
/// live set, like a projection before the pipe write).
fn project_to(chunk: &mut Chunk, ship: &[Slot]) {
    for s in 0..chunk.cols.len() {
        if chunk.filled[s] && !ship.contains(&s) {
            chunk.cols[s] = Vec::new();
            chunk.filled[s] = false;
        }
    }
}

impl gpl_sim::WorkSource for LeafSource {
    fn next(&mut self, view: &dyn ChannelView) -> Work {
        let total = self.tiling.rows();
        if self.cursor >= total {
            return Work::Done;
        }
        let tile = self.tiling.tile(self.tile_idx);
        let tile_start = self.cursor == tile.start;
        // Tile barrier (Section 3.3): a new tile starts only after the
        // pipeline has drained the previous one from this channel.
        if tile_start && self.tile_idx > 0 && view.available(self.out) > 0 {
            return Work::Wait;
        }
        let end = (self.cursor + SCAN_BATCH_ROWS).min(tile.end);
        let rows = end - self.cursor;
        // Conservative backpressure: every scanned row might survive.
        let worst_packets = packets_for(rows, self.out_row_bytes, self.packet_bytes);
        if view.space(self.out) < worst_packets {
            return Work::Wait;
        }
        let t = self.db.table(&self.table);
        let mut chunk = Chunk::new(self.num_slots + 1);
        let mut accesses = Vec::with_capacity(self.cols.len() + self.lazy_cols.len());
        for &(slot, ci, base, width) in &self.cols {
            let col = t.col_at(ci);
            chunk.fill(
                slot,
                col.range_i64(self.base + self.cursor, self.base + end),
            );
            accesses.push(MemRange::read(
                base + (self.base + self.cursor) as u64 * width,
                rows as u64 * width,
            ));
        }
        // Row ids are absolute so lazy gathers and downstream ops see the
        // same values sharded or not.
        chunk.fill(
            self.rowid_slot,
            (self.cursor..end).map(|r| (self.base + r) as i64).collect(),
        );
        let mut compute = rows as u64 * 2 * ops::INST_EXPANSION * self.cols.len() as u64;
        let mut mem = rows as u64 * self.cols.len() as u64;
        let mut out = apply_steps(&self.steps, chunk, &mut accesses, &mut compute, &mut mem);
        if out.rows > 0 && !self.lazy_cols.is_empty() {
            // Gather the shipped-only columns at surviving positions;
            // consecutive survivors coalesce into contiguous reads.
            let rowids: Vec<i64> = out.cols[self.rowid_slot].clone();
            for &(slot, ci, base, width) in &self.lazy_cols {
                let col = t.col_at(ci);
                out.fill(
                    slot,
                    rowids.iter().map(|&r| col.get_i64(r as usize)).collect(),
                );
                let mut run: Option<(i64, u64)> = None; // (start row, len)
                for &r in &rowids {
                    match run {
                        Some((s, len)) if r == s + len as i64 => run = Some((s, len + 1)),
                        _ => {
                            if let Some((s, len)) = run {
                                accesses.push(MemRange::read(base + s as u64 * width, len * width));
                            }
                            run = Some((r, 1));
                        }
                    }
                }
                if let Some((s, len)) = run {
                    accesses.push(MemRange::read(base + s as u64 * width, len * width));
                }
            }
            compute += out.rows as u64 * 2 * ops::INST_EXPANSION * self.lazy_cols.len() as u64;
            mem += out.rows as u64 * self.lazy_cols.len() as u64;
        }
        let mut unit = WorkUnit {
            compute_insts: compute.div_ceil(self.wavefront)
                + if tile_start { TILE_DISPATCH_INSTS } else { 0 },
            mem_insts: mem.div_ceil(self.wavefront),
            accesses,
            ..Default::default()
        }
        .rows(rows as u64, out.rows as u64);
        if out.rows > 0 {
            project_to(&mut out, &self.ship);
            let packets = packets_for(out.rows, self.out_row_bytes, self.packet_bytes);
            let sum = transit_stamp(&out);
            self.out_q.borrow_mut().push_back((out, packets, sum));
            unit = unit.push(self.out, packets);
        }
        self.cursor = end;
        if self.cursor == tile.end && self.cursor < total {
            self.tile_idx += 1;
        }
        Work::Unit(unit)
    }
}

/// The consumer end of an [`InterSegmentEdge`]: admission state for a
/// probe kernel whose hash table is still being installed by the
/// producer segment's terminal. Rows flow only against slices the build
/// side has published; the rest wait in per-slice pending buffers until
/// their slice's publication record arrives.
struct Gate {
    /// The shared, concurrently-installed hash table — borrowed to
    /// verify each published slice's checksum before admitting rows.
    table: Rc<RefCell<SimHashTable>>,
    /// Probe key slot in this kernel's input chunks.
    key: Slot,
    slices: u32,
    /// Slices published so far. The build terminal publishes strictly in
    /// slice order, so this single counter is the full admission state.
    published: u32,
    /// The publication channel from the build terminal.
    pub_in: ChannelId,
    pub_q: DataQ,
    /// Per-slice buffers of not-yet-admissible chunks, arrival order.
    pending: Vec<VecDeque<Chunk>>,
}

/// Slot-wise row selection: gather `idx` from every filled slot.
fn select_rows(c: &Chunk, idx: &[usize]) -> Chunk {
    let mut out = Chunk::new(c.cols.len());
    out.rows = idx.len();
    for s in 0..c.cols.len() {
        if c.filled[s] {
            out.cols[s] = idx.iter().map(|&r| c.cols[s][r]).collect();
            out.filled[s] = true;
        }
    }
    out
}

/// Route one popped chunk through the slice gate: rows whose key slice
/// is already published go to `admitted`; the rest are buffered per
/// slice (arrival order preserved) until their slice publishes.
fn route_by_slice(
    chunk: Chunk,
    key: Slot,
    published: u32,
    slices: u32,
    admitted: &mut Vec<Chunk>,
    pending: &mut [VecDeque<Chunk>],
) {
    if chunk.rows == 0 {
        return;
    }
    let slice_of: Vec<u32> = chunk.cols[key]
        .iter()
        .map(|&k| SimHashTable::slice_of(k, slices))
        .collect();
    if published >= slices || slice_of.iter().all(|&s| s < published) {
        admitted.push(chunk);
        return;
    }
    // One group per unpublished slice plus one for the admissible rows.
    let adm = slices as usize;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); adm + 1];
    for (r, &s) in slice_of.iter().enumerate() {
        let g = if s < published { adm } else { s as usize };
        groups[g].push(r);
    }
    for (g, idx) in groups.iter().enumerate() {
        if idx.is_empty() {
            continue;
        }
        let sub = select_rows(&chunk, idx);
        if g == adm {
            admitted.push(sub);
        } else {
            pending[g].push_back(sub);
        }
    }
}

/// A fused probe kernel: pops chunks, probes (+ fused maps), pushes.
/// With a [`Gate`] attached it is the consumer side of an inter-segment
/// edge and admits rows slice by slice as the build terminal publishes.
struct ProbeSource {
    steps: Vec<ExecStep>,
    ship: Vec<Slot>,
    input: ChannelId,
    in_q: DataQ,
    out: ChannelId,
    out_q: DataQ,
    out_row_bytes: u64,
    packet_bytes: u32,
    wavefront: u64,
    /// See [`take_chunks`]: `usize::MAX` sequentially, [`FUSED_UNIT_ROWS`]
    /// inside a fused launch.
    unit_rows_cap: usize,
    gate: Option<Gate>,
}

/// Pop as many whole chunks as the channel's available packets and the
/// output budget allow. Returns (chunks, packets popped) or None.
/// `rows_cap` bounds the unit's row count (the first chunk is always
/// taken so progress never stalls): sequential stages pass `usize::MAX`,
/// fused launches [`FUSED_UNIT_ROWS`] — without the cap, a kernel
/// starved of a dispatch lane gulps its whole backlog into one monster
/// unit whose serial latency then fattens every downstream unit in turn.
fn take_chunks(
    view: &dyn ChannelView,
    input: ChannelId,
    in_q: &DataQ,
    out_budget: Option<(u64, u64, u32)>, // (space, out_row_bytes, packet_bytes)
    rows_cap: usize,
) -> Option<(Vec<Chunk>, u64)> {
    let mut budget_in = view.available(input);
    if budget_in == 0 {
        return None;
    }
    let mut q = in_q.borrow_mut();
    let mut chunks = Vec::new();
    let mut popped = 0u64;
    let mut rows = 0usize;
    while chunks.len() < MAX_CHUNKS_PER_UNIT {
        let Some((chunk, packets, _)) = q.front() else {
            break;
        };
        if *packets > budget_in {
            break;
        }
        if !chunks.is_empty() && rows + chunk.rows > rows_cap {
            break;
        }
        if let Some((space, w, p)) = out_budget {
            // Worst case: every input row survives.
            let worst = packets_for(rows + chunk.rows, w, p);
            if worst > space {
                break;
            }
        }
        budget_in -= *packets;
        popped += *packets;
        rows += chunk.rows;
        let (chunk, _, sum) = q.pop_front().expect("front exists");
        // Channel-transit integrity (debug builds): a mismatch means a
        // chunk was mutated while queued — an engine invariant breach,
        // never expected in the simulator (injected `ChannelCorrupt`
        // faults model this check firing and are surfaced at launch
        // admission instead).
        verify_transit(&chunk, sum, input);
        chunks.push(chunk);
    }
    if chunks.is_empty() {
        None
    } else {
        Some((chunks, popped))
    }
}

/// Concatenate chunks slot-wise.
fn concat(mut chunks: Vec<Chunk>) -> Chunk {
    let mut merged = chunks.swap_remove(0);
    for mut c in chunks {
        for s in 0..merged.cols.len() {
            if c.filled[s] {
                if merged.filled[s] {
                    merged.cols[s].extend_from_slice(&c.cols[s]);
                } else {
                    merged.cols[s] = std::mem::take(&mut c.cols[s]);
                    merged.filled[s] = true;
                }
            }
        }
        merged.rows += c.rows;
    }
    merged
}

impl ProbeSource {
    /// Slice-gated admission (the consumer end of an inter-segment
    /// edge). Each quantum: (1) drain publication records, verifying the
    /// in-order protocol and each slice's checksum against the shared
    /// table; (2) admit buffered chunks of newly published slices, in
    /// slice order, within the conservative output budget; (3) pop fresh
    /// input chunks and route their rows by key slice. Admitted rows run
    /// the fused steps exactly as the ungated path does.
    fn next_gated(&mut self, view: &dyn ChannelView) -> Work {
        let gate = self.gate.as_mut().expect("gated probe");
        let mut pub_popped = 0u64;
        {
            let avail = view.available(gate.pub_in);
            let mut q = gate.pub_q.borrow_mut();
            while pub_popped < avail {
                let Some((rec, packets, sum)) = q.pop_front() else {
                    break;
                };
                verify_transit(&rec, sum, gate.pub_in);
                pub_popped += packets;
                let slice = rec.cols[0][0] as u32;
                assert_eq!(
                    slice, gate.published,
                    "slice published out of order (a slice was dropped or double-published)"
                );
                let want = rec.cols[2][0] as u64;
                let got = gate.table.borrow().slice_checksum(slice, gate.slices);
                assert_eq!(
                    got, want,
                    "published slice {slice} diverges from the shared hash table"
                );
                gate.published += 1;
            }
        }
        // Admit pending chunks of published slices, oldest slice first.
        let space = view.space(self.out);
        let mut admitted: Vec<Chunk> = Vec::new();
        let mut budget_rows = 0usize;
        'pend: for s in 0..gate.published as usize {
            while let Some(c) = gate.pending[s].front() {
                if packets_for(budget_rows + c.rows, self.out_row_bytes, self.packet_bytes) > space
                    || (budget_rows > 0 && budget_rows + c.rows > self.unit_rows_cap)
                {
                    break 'pend;
                }
                budget_rows += c.rows;
                admitted.push(gate.pending[s].pop_front().expect("front exists"));
            }
        }
        // Fresh input chunks, routed per key slice.
        let mut data_popped = 0u64;
        let mut routed_rows = 0u64;
        {
            let mut avail_in = view.available(self.input);
            let mut q = self.in_q.borrow_mut();
            let mut fresh = 0;
            while fresh < MAX_CHUNKS_PER_UNIT {
                let Some((c, packets, _)) = q.front() else {
                    break;
                };
                if *packets > avail_in
                    || packets_for(budget_rows + c.rows, self.out_row_bytes, self.packet_bytes)
                        > space
                    || (budget_rows > 0 && budget_rows + c.rows > self.unit_rows_cap)
                {
                    break;
                }
                avail_in -= *packets;
                data_popped += *packets;
                let (chunk, _, sum) = q.pop_front().expect("front exists");
                verify_transit(&chunk, sum, self.input);
                budget_rows += chunk.rows;
                routed_rows += chunk.rows as u64;
                fresh += 1;
                route_by_slice(
                    chunk,
                    gate.key,
                    gate.published,
                    gate.slices,
                    &mut admitted,
                    &mut gate.pending,
                );
            }
        }
        if admitted.is_empty() {
            if pub_popped == 0 && data_popped == 0 {
                let drained = view.eof(self.input)
                    && self.in_q.borrow().is_empty()
                    && gate.published == gate.slices
                    && gate.pending.iter().all(VecDeque::is_empty);
                return if drained { Work::Done } else { Work::Wait };
            }
            // Routing-only quantum: packets consumed, no rows admissible.
            return Work::Unit(
                WorkUnit {
                    compute_insts: (routed_rows * 2).div_ceil(self.wavefront).max(1),
                    ..Default::default()
                }
                .pop(self.input, data_popped)
                .pop(gate.pub_in, pub_popped),
            );
        }
        let merged = concat(admitted);
        let in_rows = merged.rows as u64;
        let mut acc = Vec::new();
        let mut compute = routed_rows * 2; // slice-routing cost
        let mut mem = 0u64;
        let mut out = apply_steps(&self.steps, merged, &mut acc, &mut compute, &mut mem);
        let mut unit = WorkUnit {
            compute_insts: compute.div_ceil(self.wavefront).max(1),
            mem_insts: mem.div_ceil(self.wavefront),
            accesses: acc,
            ..Default::default()
        }
        .rows(in_rows, out.rows as u64)
        .pop(self.input, data_popped)
        .pop(gate.pub_in, pub_popped);
        if out.rows > 0 {
            project_to(&mut out, &self.ship);
            let packets = packets_for(out.rows, self.out_row_bytes, self.packet_bytes);
            let sum = transit_stamp(&out);
            self.out_q.borrow_mut().push_back((out, packets, sum));
            unit = unit.push(self.out, packets);
        }
        Work::Unit(unit)
    }
}

impl gpl_sim::WorkSource for ProbeSource {
    fn next(&mut self, view: &dyn ChannelView) -> Work {
        if self.gate.is_some() {
            return self.next_gated(view);
        }
        let out_budget = Some((view.space(self.out), self.out_row_bytes, self.packet_bytes));
        match take_chunks(view, self.input, &self.in_q, out_budget, self.unit_rows_cap) {
            None => {
                if view.eof(self.input) && self.in_q.borrow().is_empty() {
                    Work::Done
                } else {
                    Work::Wait
                }
            }
            Some((chunks, popped)) => {
                let merged = concat(chunks);
                let in_rows = merged.rows as u64;
                let mut acc = Vec::new();
                let mut compute = 0u64;
                let mut mem = 0u64;
                let mut out = apply_steps(&self.steps, merged, &mut acc, &mut compute, &mut mem);
                let mut unit = WorkUnit {
                    compute_insts: compute.div_ceil(self.wavefront).max(1),
                    mem_insts: mem.div_ceil(self.wavefront),
                    accesses: acc,
                    ..Default::default()
                }
                .rows(in_rows, out.rows as u64)
                .pop(self.input, popped);
                if out.rows > 0 {
                    project_to(&mut out, &self.ship);
                    let packets = packets_for(out.rows, self.out_row_bytes, self.packet_bytes);
                    let sum = transit_stamp(&out);
                    self.out_q.borrow_mut().push_back((out, packets, sum));
                    unit = unit.push(self.out, packets);
                }
                Work::Unit(unit)
            }
        }
    }
}

/// What the blocking terminal does with each chunk.
enum TermExec {
    Build {
        table: Rc<RefCell<SimHashTable>>,
        key: Slot,
        payloads: Vec<Slot>,
    },
    Aggregate {
        store: Rc<RefCell<GroupStore>>,
        groups: Vec<Slot>,
        aggs: Vec<crate::plan::Agg>,
    },
}

/// The terminal kernel: consumes packets and updates the blocking output
/// (hash table or group store) — `k_hash_build` / `k_reduce*`.
struct TermSource {
    exec: TermExec,
    input: ChannelId,
    in_q: DataQ,
    per_row_compute: u64,
    per_row_mem: u64,
    wavefront: u64,
    /// See [`take_chunks`]: `usize::MAX` sequentially, [`FUSED_UNIT_ROWS`]
    /// inside a fused launch.
    unit_rows_cap: usize,
}

impl gpl_sim::WorkSource for TermSource {
    fn next(&mut self, view: &dyn ChannelView) -> Work {
        match take_chunks(view, self.input, &self.in_q, None, self.unit_rows_cap) {
            None => {
                if view.eof(self.input) && self.in_q.borrow().is_empty() {
                    Work::Done
                } else {
                    Work::Wait
                }
            }
            Some((chunks, popped)) => {
                let mut acc = Vec::new();
                let mut rows = 0usize;
                for c in &chunks {
                    rows += c.rows;
                    // Every row lands at least one table access in `acc`.
                    acc.reserve(c.rows);
                    match &self.exec {
                        TermExec::Build {
                            table,
                            key,
                            payloads,
                        } => {
                            let mut t = table.borrow_mut();
                            // One payload buffer for the whole chunk;
                            // `insert` copies out of it.
                            let mut pay = Vec::with_capacity(payloads.len());
                            for r in 0..c.rows {
                                pay.clear();
                                pay.extend(payloads.iter().map(|&p| c.cols[p][r]));
                                t.insert(c.cols[*key][r], &pay, &mut acc);
                            }
                        }
                        TermExec::Aggregate {
                            store,
                            groups,
                            aggs,
                        } => {
                            let mut s = store.borrow_mut();
                            // Agg inputs evaluated column-at-a-time once
                            // per chunk; the row loop only gathers group
                            // keys and folds.
                            let vals: Vec<Vec<i64>> = aggs
                                .iter()
                                .map(|a| a.expr.eval_vec(&c.cols, c.rows))
                                .collect();
                            let mut keys = Vec::with_capacity(groups.len());
                            let mut values = vec![0i64; aggs.len()];
                            for r in 0..c.rows {
                                keys.clear();
                                keys.extend(groups.iter().map(|&g| c.cols[g][r]));
                                for (slot, v) in values.iter_mut().zip(&vals) {
                                    *slot = v[r];
                                }
                                s.update(&keys, &values, &mut acc);
                            }
                        }
                    }
                }
                Work::Unit(
                    WorkUnit {
                        compute_insts: (rows as u64 * self.per_row_compute)
                            .div_ceil(self.wavefront)
                            .max(1),
                        mem_insts: (rows as u64 * self.per_row_mem).div_ceil(self.wavefront),
                        accesses: acc,
                        ..Default::default()
                    }
                    .rows(rows as u64, 0)
                    .pop(self.input, popped),
                )
            }
        }
    }
}

/// The pipelined hash-build terminal (the producer end of an
/// [`InterSegmentEdge`]): while its input streams, rows are *staged* to
/// a scratch region with cheap sequential writes — none of the random
/// bucket traffic yet. Once the input drains, the staged rows are
/// partitioned by [`SimHashTable::slice_of`] (arrival order preserved
/// inside each slice) and installed one slice per work unit, paying the
/// same per-row bucket traffic the sequential terminal pays plus a
/// read-back of the staged entries. Each completed slice is published
/// through the inter-segment channel as a one-packet record
/// `[slice, rows, slice_checksum]` so the consumer can verify it saw
/// exactly the slice the builder installed.
/// One staged build entry: `(key, payload values)`.
type StagedRow = (i64, Vec<i64>);

struct BuildPublishSource {
    table: Rc<RefCell<SimHashTable>>,
    key: Slot,
    payloads: Vec<Slot>,
    input: ChannelId,
    in_q: DataQ,
    per_row_compute: u64,
    per_row_mem: u64,
    wavefront: u64,
    slices: u32,
    /// Arrival-order staged rows: (key, payload values).
    staged: Vec<StagedRow>,
    stage_base: u64,
    entry_bytes: u64,
    /// Set once the input has drained: per-slice row partitions.
    parts: Option<Vec<Vec<StagedRow>>>,
    next_slice: u32,
    /// Rows installed so far (staging read-back offset).
    installed: u64,
    out: ChannelId,
    out_q: DataQ,
}

impl gpl_sim::WorkSource for BuildPublishSource {
    fn next(&mut self, view: &dyn ChannelView) -> Work {
        if self.parts.is_none() {
            match take_chunks(view, self.input, &self.in_q, None, FUSED_UNIT_ROWS) {
                Some((chunks, popped)) => {
                    let mut rows = 0usize;
                    let offset = self.staged.len() as u64;
                    for c in &chunks {
                        rows += c.rows;
                        for r in 0..c.rows {
                            let pay: Vec<i64> =
                                self.payloads.iter().map(|&p| c.cols[p][r]).collect();
                            self.staged.push((c.cols[self.key][r], pay));
                        }
                    }
                    // Staging detour: sequential append of (key, payload)
                    // entries.
                    return Work::Unit(
                        WorkUnit {
                            compute_insts: (rows as u64 * 2 * ops::INST_EXPANSION)
                                .div_ceil(self.wavefront)
                                .max(1),
                            mem_insts: (rows as u64 * (1 + self.payloads.len() as u64))
                                .div_ceil(self.wavefront),
                            accesses: vec![MemRange::write(
                                self.stage_base + offset * self.entry_bytes,
                                rows as u64 * self.entry_bytes,
                            )],
                            ..Default::default()
                        }
                        .rows(rows as u64, 0)
                        .pop(self.input, popped),
                    );
                }
                None => {
                    if !(view.eof(self.input) && self.in_q.borrow().is_empty()) {
                        return Work::Wait;
                    }
                    // Input drained: partition the staged rows into their
                    // deterministic slices and switch to installation.
                    let mut parts: Vec<Vec<StagedRow>> =
                        (0..self.slices).map(|_| Vec::new()).collect();
                    for (k, pay) in self.staged.drain(..) {
                        parts[SimHashTable::slice_of(k, self.slices) as usize].push((k, pay));
                    }
                    self.parts = Some(parts);
                }
            }
        }
        // Installation: one slice per work unit, then its publication
        // record. Publishing strictly in slice order is what lets the
        // consumer hold a single high-water-mark counter.
        if self.next_slice == self.slices {
            return Work::Done;
        }
        if view.space(self.out) < 1 {
            return Work::Wait;
        }
        let s = self.next_slice;
        let rows = std::mem::take(&mut self.parts.as_mut().expect("installing")[s as usize]);
        let nrows = rows.len() as u64;
        let mut acc = Vec::new();
        if nrows > 0 {
            // Read back the slice's staged entries (the partition pass
            // compacted them, so one contiguous run per slice).
            acc.push(MemRange::read(
                self.stage_base + self.installed * self.entry_bytes,
                nrows * self.entry_bytes,
            ));
            let mut t = self.table.borrow_mut();
            for (k, pay) in &rows {
                t.insert(*k, pay, &mut acc);
            }
        }
        let sum = self.table.borrow().slice_checksum(s, self.slices);
        let mut rec = Chunk::new(3);
        rec.fill(0, vec![s as i64]);
        rec.fill(1, vec![nrows as i64]);
        rec.fill(2, vec![sum as i64]);
        let rsum = transit_stamp(&rec);
        self.out_q.borrow_mut().push_back((rec, 1, rsum));
        self.installed += nrows;
        self.next_slice += 1;
        // Per-row install cost as the sequential terminal, plus the
        // checksum sweep over the slice's entries.
        Work::Unit(
            WorkUnit {
                compute_insts: (nrows * self.per_row_compute)
                    .div_ceil(self.wavefront)
                    .max(1)
                    + (nrows * 2).div_ceil(self.wavefront),
                mem_insts: (nrows * self.per_row_mem).div_ceil(self.wavefront),
                accesses: acc,
                ..Default::default()
            }
            .push(self.out, 1),
        )
    }
}

/// Inter-segment plumbing handed to [`stage_kernels`] for the producer
/// (build) side of a fused pair.
struct PublishSide {
    slices: u32,
    out: ChannelId,
    out_q: DataQ,
    /// Base address of the staging scratch region.
    stage_base: u64,
}

/// Assemble one stage's kernels wired to freshly created channels —
/// everything [`run_stage`] does short of launching. `segment` tags each
/// kernel for fused multi-segment launches; `publish` swaps the blocking
/// hash-build terminal for the slice-publishing variant, and `gate`
/// attaches slice-gated admission to the kernel at the given node index.
#[allow(clippy::too_many_arguments)]
fn stage_kernels(
    ctx: &mut ExecContext,
    ir: &SegmentIr,
    stage: &Stage,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    build: Option<&Rc<RefCell<SimHashTable>>>,
    agg: Option<&Rc<RefCell<GroupStore>>>,
    cfg: &StageConfig,
    segment: u32,
    unit_rows_cap: usize,
    rows: Option<std::ops::Range<usize>>,
    publish: Option<PublishSide>,
    mut gate: Option<(usize, Gate)>,
) -> Result<Vec<KernelDesc>, ExecError> {
    let spec = ctx.sim.spec().clone();
    let wavefront = spec.wavefront_size;
    ir.validate_config(cfg).map_err(ExecError::InvalidConfig)?;
    let num_kernels = ir.nodes.len();
    let num_edges = ir.edges.len();

    // Channel buffers are sized to the tile (Section 3.3); capacity is
    // also kept large enough for the biggest single batch to avoid
    // artificial deadlock, and floored at 64 packets.
    let mut channels = Vec::with_capacity(num_edges);
    let mut queues: Vec<DataQ> = Vec::with_capacity(num_edges);
    for edge in &ir.edges {
        // A quarter of the tile may be in flight per edge (Section 3.3:
        // buffers scale with the tile so the knob reaches the cache).
        let tile_packets = (cfg.tile_bytes / 4).div_ceil(cfg.packet_bytes as u64);
        let batch_packets = packets_for(SCAN_BATCH_ROWS, edge.row_bytes, cfg.packet_bytes);
        let cap_per_port = tile_packets
            .div_ceil(cfg.n_channels as u64)
            .max(2 * batch_packets)
            .clamp(64, 1 << 24) as u32;
        channels.push(ctx.sim.create_channel_with_capacity(
            cfg.n_channels,
            cfg.packet_bytes,
            cap_per_port,
        ));
        queues.push(Rc::new(RefCell::new(VecDeque::new())));
    }

    let t = ctx.db.table(&stage.driver);
    let layout = ctx.layout(&stage.driver);
    // The IR's eager/lazy leaf split, bound to this context's simulated
    // column addresses: (slot, column index, base, width).
    let bind =
        |c: &crate::segment::LeafColumn| (c.slot, c.col, layout.scan(c.col, 0..1).addr, c.width);
    let cols: Vec<(Slot, usize, u64, u64)> = ir.eager.iter().map(bind).collect();
    let lazy_cols: Vec<(Slot, usize, u64, u64)> = ir.lazy.iter().map(bind).collect();
    // The shard of the driving relation this launch scans; tiles are cut
    // within the shard so the tile knob keeps its meaning per launch.
    let rows = rows.unwrap_or(0..t.rows());
    debug_assert!(rows.end <= t.rows(), "shard range exceeds table");
    let base = rows.start;
    let tiling = Tiling::by_bytes(rows.len(), ir.row_bytes, cfg.tile_bytes);

    let mut kernels = Vec::with_capacity(num_kernels);
    kernels.push(
        KernelDesc::new(
            ir.nodes[0].name.clone(),
            ir.nodes[0].resources,
            cfg.wg_counts[0],
            Box::new(LeafSource {
                db: ctx.db.clone(),
                table: stage.driver.clone(),
                cols,
                lazy_cols,
                num_slots: stage.num_slots(),
                rowid_slot: stage.num_slots(),
                steps: ir.nodes[0]
                    .ops
                    .iter()
                    .map(|&i| ExecStep::from_op(&stage.ops[i], hts))
                    .collect(),
                ship: ir.edges[0].ship.clone(),
                base,
                tiling,
                tile_idx: 0,
                cursor: 0,
                out: channels[0],
                out_q: queues[0].clone(),
                out_row_bytes: ir.edges[0].row_bytes,
                packet_bytes: cfg.packet_bytes,
                wavefront: wavefront as u64,
            }),
        )
        .writes_channel(channels[0])
        .in_segment(segment),
    );

    for g in 1..num_edges {
        let node = &ir.nodes[g];
        let gated_here = matches!(&gate, Some((gk, _)) if *gk == g);
        let this_gate = if gated_here {
            gate.take().map(|(_, g)| g)
        } else {
            None
        };
        let pub_in = this_gate.as_ref().map(|g| g.pub_in);
        let mut kd = KernelDesc::new(
            node.name.clone(),
            node.resources,
            cfg.wg_counts[g],
            Box::new(ProbeSource {
                steps: node
                    .ops
                    .iter()
                    .map(|&i| ExecStep::from_op(&stage.ops[i], hts))
                    .collect(),
                ship: ir.edges[g].ship.clone(),
                input: channels[g - 1],
                in_q: queues[g - 1].clone(),
                out: channels[g],
                out_q: queues[g].clone(),
                out_row_bytes: ir.edges[g].row_bytes,
                packet_bytes: cfg.packet_bytes,
                wavefront: wavefront as u64,
                unit_rows_cap,
                gate: this_gate,
            }),
        )
        .reads_channel(channels[g - 1])
        .writes_channel(channels[g])
        .in_segment(segment);
        if let Some(ch) = pub_in {
            kd = kd.reads_channel(ch);
        }
        kernels.push(kd);
    }
    debug_assert!(gate.is_none(), "gated kernel index not found in stage");

    let last = num_edges - 1;
    let term = ir.nodes.last().expect("terminal node");
    let publish_out = publish.as_ref().map(|p| p.out);
    let term_source: Box<dyn gpl_sim::WorkSource> = match (&stage.terminal, publish) {
        (Terminal::HashBuild { key, payloads, .. }, Some(p)) => Box::new(BuildPublishSource {
            table: build.expect("build target").clone(),
            key: *key,
            payloads: payloads.clone(),
            input: channels[last],
            in_q: queues[last].clone(),
            per_row_compute: term.per_row_compute,
            per_row_mem: term.per_row_mem,
            wavefront: wavefront as u64,
            slices: p.slices,
            staged: Vec::new(),
            stage_base: p.stage_base,
            entry_bytes: 8 * (1 + payloads.len() as u64),
            parts: None,
            next_slice: 0,
            installed: 0,
            out: p.out,
            out_q: p.out_q,
        }),
        (_, Some(_)) => unreachable!("publishing requires a hash-build terminal"),
        (terminal, None) => {
            let exec = match terminal {
                Terminal::HashBuild { key, payloads, .. } => TermExec::Build {
                    table: build.expect("build target").clone(),
                    key: *key,
                    payloads: payloads.clone(),
                },
                Terminal::Aggregate { groups, aggs } => TermExec::Aggregate {
                    store: agg.expect("aggregate store").clone(),
                    groups: groups.clone(),
                    aggs: aggs.clone(),
                },
            };
            Box::new(TermSource {
                exec,
                input: channels[last],
                in_q: queues[last].clone(),
                per_row_compute: term.per_row_compute,
                per_row_mem: term.per_row_mem,
                wavefront: wavefront as u64,
                unit_rows_cap,
            })
        }
    };
    let mut kd = KernelDesc::new(
        term.name.clone(),
        term.resources,
        cfg.wg_counts[num_kernels - 1],
        term_source,
    )
    .reads_channel(channels[last])
    .in_segment(segment);
    if let Some(ch) = publish_out {
        kd = kd.writes_channel(ch);
    }
    kernels.push(kd);

    Ok(kernels)
}

/// Run one stage as a GPL pipeline, launching the kernels and channels
/// its lowered [`SegmentIr`] describes (`ir` must be the lowering of
/// `stage` at this context's wavefront). The channel pipeline is the
/// only execution path whose kernels can block on each other, so it is
/// the only one that can deadlock — hence the `Result`; KBE and replay
/// kernels never return `Work::Wait` and stay infallible.
pub(crate) fn run_stage(
    ctx: &mut ExecContext,
    ir: &SegmentIr,
    stage: &Stage,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    build: Option<&Rc<RefCell<SimHashTable>>>,
    agg: Option<&Rc<RefCell<GroupStore>>>,
    cfg: &StageConfig,
) -> Result<LaunchProfile, ExecError> {
    let kernels = stage_kernels(
        ctx,
        ir,
        stage,
        hts,
        build,
        agg,
        cfg,
        0,
        usize::MAX,
        None,
        None,
        None,
    )?;
    ctx.run_kernels(kernels)
}

/// [`run_stage`] over one shard of the driving relation: the leaf scans
/// only `rows`, tiling within the shard; everything downstream is
/// unchanged. With `rows == 0..t.rows()` this is exactly `run_stage`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stage_range(
    ctx: &mut ExecContext,
    ir: &SegmentIr,
    stage: &Stage,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    build: Option<&Rc<RefCell<SimHashTable>>>,
    agg: Option<&Rc<RefCell<GroupStore>>>,
    cfg: &StageConfig,
    rows: std::ops::Range<usize>,
) -> Result<LaunchProfile, ExecError> {
    let kernels = stage_kernels(
        ctx,
        ir,
        stage,
        hts,
        build,
        agg,
        cfg,
        0,
        usize::MAX,
        Some(rows),
        None,
        None,
    )?;
    ctx.run_kernels(kernels)
}

/// Run an eligible build→probe stage pair as ONE fused launch
/// (cross-segment pipelining): the build stage's kernels carry segment
/// tag 0 and its terminal publishes the shared hash table slice by
/// slice; the probe stage's kernels carry tag 1, with the paired probe
/// kernel gated on published slices. Row results are bit-identical to
/// running the stages sequentially — terminals are order-insensitive,
/// so gating-induced reordering cannot change them — while the probe
/// leaf's scan and the early slices' probes overlap the build tail.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_overlapped_pair(
    ctx: &mut ExecContext,
    edge: &InterSegmentEdge,
    ir_b: &SegmentIr,
    stage_b: &Stage,
    cfg_b: &StageConfig,
    ir_p: &SegmentIr,
    stage_p: &Stage,
    cfg_p: &StageConfig,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    shared: &Rc<RefCell<SimHashTable>>,
    probe_build: Option<&Rc<RefCell<SimHashTable>>>,
    agg: Option<&Rc<RefCell<GroupStore>>>,
) -> Result<LaunchProfile, ExecError> {
    let slices = edge.slices.max(1);
    // The publication channel: one port, one packet per slice record.
    let pub_ch = ctx
        .sim
        .create_channel_with_capacity(1, cfg_b.packet_bytes, slices.max(64));
    let pub_q: DataQ = Rc::new(RefCell::new(VecDeque::new()));
    // Staging scratch for the publish-side terminal, bounded by the
    // driver's row count (every scanned row might reach the build).
    let Terminal::HashBuild { payloads, .. } = &stage_b.terminal else {
        unreachable!("pair build stage must end in a hash build");
    };
    let entry_bytes = 8 * (1 + payloads.len() as u64);
    let bound = ctx.db.table(&stage_b.driver).rows() as u64;
    let region = ctx.sim.mem.alloc(
        (bound * entry_bytes).max(8),
        RegionClass::Scratch,
        format!("{}::stage-slices", ir_b.stage),
    );
    let stage_base = ctx.sim.mem.base(region);

    // The fused launch allocates residency (Eq. 2) across BOTH segments
    // once, so every work-group slot the build side claims is a slot the
    // probe side keeps losing even after the build drains. The build is
    // the minority partner — it overlaps the probe's leaf rather than
    // racing it — so cap its wg counts at one work-group per CU and let
    // the probe segment keep its near-solo residency share.
    let mut cfg_b_fused = cfg_b.clone();
    for wg in &mut cfg_b_fused.wg_counts {
        *wg = (*wg).min(ctx.sim.spec().num_cus);
    }
    let mut kernels = stage_kernels(
        ctx,
        ir_b,
        stage_b,
        hts,
        Some(shared),
        None,
        &cfg_b_fused,
        0,
        FUSED_UNIT_ROWS,
        None,
        Some(PublishSide {
            slices,
            out: pub_ch,
            out_q: pub_q.clone(),
            stage_base,
        }),
        None,
    )?;

    // The probe side resolves the pair's table to the shared (still
    // installing) instance.
    let mut hts_p: Vec<Option<Rc<RefCell<SimHashTable>>>> = hts.to_vec();
    hts_p[edge.ht] = Some(shared.clone());
    let gk = ir_p
        .nodes
        .iter()
        .position(|n| n.ops.first() == Some(&edge.probe_op))
        .expect("paired probe starts a kernel");
    let key = match &stage_p.ops[edge.probe_op] {
        PipeOp::Probe { key, .. } => *key,
        _ => unreachable!("paired op is a probe"),
    };
    let gate = Gate {
        table: shared.clone(),
        key,
        slices,
        published: 0,
        pub_in: pub_ch,
        pub_q,
        pending: (0..slices).map(|_| VecDeque::new()).collect(),
    };
    kernels.extend(stage_kernels(
        ctx,
        ir_p,
        stage_p,
        &hts_p,
        probe_build,
        agg,
        cfg_p,
        1,
        FUSED_UNIT_ROWS,
        None,
        None,
        Some((gk, gate)),
    )?);
    ctx.run_kernels(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecContext, StageConfig};
    use crate::plan::{listing1_plan, q14_plan};
    use gpl_sim::amd_a10;
    use gpl_storage::days;
    use gpl_tpch::{Q14Params, TpchDb};

    fn ctx() -> ExecContext {
        ExecContext::new(amd_a10(), TpchDb::at_scale(0.002))
    }

    fn cfg(stage: &Stage) -> StageConfig {
        StageConfig::default_for(&amd_a10(), stage)
    }

    fn ir_for(ctx: &ExecContext, stage: &Stage) -> SegmentIr {
        SegmentIr::lower(
            stage,
            ctx.db.table(&stage.driver),
            ctx.sim.spec().wavefront_size,
        )
    }

    #[test]
    fn listing1_pipeline_matches_reference_and_figure7() {
        let mut ctx = ctx();
        let cutoff = days("1998-11-01");
        let plan = listing1_plan(cutoff);
        let stage = &plan.stages[0];
        // Figure 7c: the whole selection + projection fuses into one map
        // kernel feeding k_reduce* — exactly two concurrent kernels.
        assert_eq!(stage.gpl_kernel_names().len(), 2);
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            1,
            "t",
        )));
        let ir = ir_for(&ctx, stage);
        let p = run_stage(&mut ctx, &ir, stage, &[], None, Some(&agg), &cfg(stage)).unwrap();
        let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
        let want = gpl_tpch::reference::listing1(&ctx.db, cutoff);
        assert_eq!(got, want.rows);
        assert_eq!(p.kernels.len(), 2);
        assert!(p.total_dc_cycles() > 0, "channels must be exercised");
    }

    #[test]
    fn q14_pipeline_matches_reference() {
        let mut ctx = ctx();
        let params = Q14Params::default();
        let plan = q14_plan(&ctx.db, params);
        let ht = Rc::new(RefCell::new(SimHashTable::new(
            &mut ctx.sim.mem,
            ctx.db.part.rows(),
            1,
            "part",
        )));
        let s0 = &plan.stages[0];
        let ir0 = ir_for(&ctx, s0);
        run_stage(&mut ctx, &ir0, s0, &[], Some(&ht), None, &cfg(s0)).unwrap();
        assert_eq!(ht.borrow().len(), ctx.db.part.rows());

        let hts = vec![Some(ht)];
        let agg = Rc::new(RefCell::new(GroupStore::new(
            &mut ctx.sim.mem,
            4,
            0,
            2,
            "t",
        )));
        let s1 = &plan.stages[1];
        // Q14's probe pipeline: leaf map, probe(+fused maps), reduce.
        assert_eq!(s1.gpl_kernel_names().len(), 3);
        let ir1 = ir_for(&ctx, s1);
        run_stage(&mut ctx, &ir1, s1, &hts, None, Some(&agg), &cfg(s1)).unwrap();
        let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
        let want = gpl_tpch::reference::q14(&ctx.db, params);
        assert_eq!(got, want.rows);
    }

    #[test]
    fn q14_overlapped_pair_matches_reference_for_every_k() {
        let params = Q14Params::default();
        for k in [1u32, 2, 4, 8] {
            let mut ctx = ctx();
            let plan = q14_plan(&ctx.db, params);
            let pairs = crate::segment::overlap_pairs(&plan.stages);
            assert_eq!(pairs.len(), 1, "q14 has exactly one eligible pair");
            let table_bytes = ctx.db.part.rows() as u64 * 16;
            let edge = pairs[0].clone().with_slices(k, table_bytes);
            let ht = Rc::new(RefCell::new(SimHashTable::new(
                &mut ctx.sim.mem,
                ctx.db.part.rows(),
                1,
                "part",
            )));
            let agg = Rc::new(RefCell::new(GroupStore::new(
                &mut ctx.sim.mem,
                4,
                0,
                2,
                "t",
            )));
            let (s0, s1) = (&plan.stages[0], &plan.stages[1]);
            let (ir0, ir1) = (ir_for(&ctx, s0), ir_for(&ctx, s1));
            let hts: Vec<Option<Rc<RefCell<SimHashTable>>>> = vec![None];
            let p = run_overlapped_pair(
                &mut ctx,
                &edge,
                &ir0,
                s0,
                &cfg(s0),
                &ir1,
                s1,
                &cfg(s1),
                &hts,
                &ht,
                None,
                Some(&agg),
            )
            .unwrap();
            assert_eq!(ht.borrow().len(), ctx.db.part.rows());
            let got = Rc::try_unwrap(agg).unwrap().into_inner().into_rows();
            let want = gpl_tpch::reference::q14(&ctx.db, params);
            assert_eq!(got, want.rows, "fused K={k} must match the reference");
            // Both segments ran inside the one launch and their kernel
            // activity genuinely interleaved.
            assert!(p.segment_window(0).is_some());
            assert!(p.segment_window(1).is_some());
            assert!(
                p.overlap_cycles(0, 1) > 0,
                "K={k}: probe segment must start before the build segment ends"
            );
        }
    }

    #[test]
    fn gpl_materializes_less_than_kbe() {
        let cutoff = days("1998-11-01");
        let plan = listing1_plan(cutoff);
        let stage = &plan.stages[0];

        let mut c1 = ctx();
        let agg1 = Rc::new(RefCell::new(GroupStore::new(&mut c1.sim.mem, 4, 0, 1, "t")));
        let rows = c1.db.lineitem.rows();
        let kbe_ir = ir_for(&c1, stage);
        let kbe_prof =
            crate::kbe::run_stage_range(&mut c1, &kbe_ir, stage, &[], None, Some(&agg1), 0..rows);

        let mut c2 = ctx();
        let agg2 = Rc::new(RefCell::new(GroupStore::new(&mut c2.sim.mem, 4, 0, 1, "t")));
        let ir = ir_for(&c2, stage);
        let gpl_prof = run_stage(&mut c2, &ir, stage, &[], None, Some(&agg2), &cfg(stage)).unwrap();

        assert!(
            gpl_prof.intermediate_footprint() < kbe_prof.intermediate_footprint() / 4,
            "GPL {} vs KBE {} materialized intermediate footprint",
            gpl_prof.intermediate_footprint(),
            kbe_prof.intermediate_footprint()
        );
    }

    #[test]
    fn chunk_checksum_detects_any_mutation() {
        let mut c = Chunk::new(3);
        c.fill(0, vec![1, 2, 3]);
        c.fill(2, vec![-7, 0, 9]);
        let sum = chunk_checksum(&c);
        assert_eq!(sum, chunk_checksum(&c.clone()), "pure over clones");

        let mut flipped = c.clone();
        flipped.cols[2][1] = 1;
        assert_ne!(sum, chunk_checksum(&flipped), "value flip detected");

        let mut truncated = c.clone();
        truncated.cols[0].pop();
        truncated.cols[2].pop();
        truncated.rows = 2;
        assert_ne!(sum, chunk_checksum(&truncated), "row drop detected");

        // Unfilled slots are dead state and must not affect the sum.
        let mut junk = c.clone();
        junk.cols[1] = vec![99];
        assert_eq!(sum, chunk_checksum(&junk));
    }

    #[test]
    fn fusion_groups_probe_boundaries() {
        let db = TpchDb::at_scale(0.002);
        let plan = crate::plan::q8_plan(&db);
        let probe_stage = plan.stages.last().unwrap();
        let groups = probe_stage.gpl_fusion();
        // Q8 probe pipeline: the leaf fuses the first probe (no leading
        // selection), then 3 more probes, with the computes fused into
        // the last one.
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].len(), 1, "leaf absorbs the steel semi-probe");
        assert_eq!(groups[3].len(), 4, "last probe absorbs 3 computes");
        assert_eq!(probe_stage.gpl_kernel_names().len(), 5);
    }
}
