//! Partitioned (radix) hash joins — the extension Section 3.2 sketches:
//! "Partitioned hash joins can be implemented similarly, where the
//! partition phase also can be implemented in a non-blocking manner."
//!
//! When a hash table outgrows the data cache, monolithic probing misses
//! on almost every bucket. The radix scheme splits the build side into
//! partitions sized to the cache, streams the probe side through a
//! *partition* kernel (non-blocking: it scatters each tuple into its
//! partition's buffer as it arrives), and then probes partition by
//! partition — every pass works against a cache-resident sub-table.
//!
//! This module implements both strategies over the simulator so the
//! trade-off is measurable (see the `ablations` bench and the tests
//! below); the mainline engines keep the paper's single-table joins.

use crate::exec::ExecContext;
use crate::ht::{mix64, SimHashTable};
use crate::replay::{alloc_array, kernel_resources, launch, ArrayRef, ReplayKernel};
use gpl_sim::mem::{MemRange, RegionClass};
use gpl_sim::LaunchProfile;

/// A hash table split into cache-sized partitions by key radix.
pub struct PartitionedHashTable {
    parts: Vec<SimHashTable>,
}

impl PartitionedHashTable {
    /// Partition count so each sub-table fits in half the cache.
    pub fn parts_for(expected_rows: usize, payload_width: usize, cache_bytes: u64) -> usize {
        let entry = 8 * (1 + payload_width as u64);
        let total = (expected_rows as u64 * 2).next_power_of_two() * entry;
        (total.div_ceil(cache_bytes / 2) as usize)
            .next_power_of_two()
            .max(1)
    }

    pub fn new(
        ctx: &mut ExecContext,
        expected_rows: usize,
        payload_width: usize,
        nparts: usize,
        label: &str,
    ) -> Self {
        assert!(
            nparts.is_power_of_two(),
            "radix partitioning wants a power of two"
        );
        let per_part = expected_rows.div_ceil(nparts);
        let parts = (0..nparts)
            .map(|i| {
                SimHashTable::new(
                    &mut ctx.sim.mem,
                    per_part,
                    payload_width,
                    format!("{label}.part{i}"),
                )
            })
            .collect();
        PartitionedHashTable { parts }
    }

    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    #[inline]
    pub fn part_of(&self, key: i64) -> usize {
        // Use high mixed bits for the radix so the in-partition bucket
        // hash (low bits) stays independent.
        (mix64(key as u64) >> 40) as usize & (self.parts.len() - 1)
    }

    pub fn insert(&mut self, key: i64, payload: &[i64], acc: &mut Vec<MemRange>) {
        let p = self.part_of(key);
        self.parts[p].insert(key, payload, acc);
    }

    pub fn probe(&self, key: i64, acc: &mut Vec<MemRange>) -> Option<&[i64]> {
        self.parts[self.part_of(key)].probe(key, acc)
    }

    pub fn bytes(&self) -> u64 {
        self.parts.iter().map(SimHashTable::bytes).sum()
    }
}

/// Result of a probe run: matched (key, payload) pairs in partition order
/// plus the merged launch profiles.
pub struct JoinRun {
    pub matches: Vec<(i64, i64)>,
    pub profile: LaunchProfile,
}

/// Build a partitioned table from unique keys with one payload value.
pub fn build_partitioned(
    ctx: &mut ExecContext,
    keys: &[i64],
    payloads: &[i64],
    nparts: usize,
) -> (PartitionedHashTable, LaunchProfile) {
    let mut table = PartitionedHashTable::new(ctx, keys.len(), 1, nparts, "radix");
    let mut acc = Vec::with_capacity(keys.len());
    for (&k, &v) in keys.iter().zip(payloads) {
        table.insert(k, &[v], &mut acc);
    }
    let wavefront = ctx.sim.spec().wavefront_size;
    let kin = alloc_array(
        ctx,
        keys.len(),
        8,
        RegionClass::Intermediate,
        "radix.build-keys",
    );
    let profile = launch(
        ctx,
        "k_hash_build",
        kernel_resources("k_hash_build", wavefront),
        ReplayKernel::new(keys.len(), wavefront, 12, 2)
            .reads(vec![kin])
            .extra(acc, 1),
    );
    (table, profile)
}

/// Monolithic probe: every lookup lands anywhere in one big table.
pub fn probe_monolithic(
    ctx: &mut ExecContext,
    table: &SimHashTable,
    probe_keys: &[i64],
) -> JoinRun {
    let wavefront = ctx.sim.spec().wavefront_size;
    let mut acc = Vec::with_capacity(probe_keys.len());
    let mut matches = Vec::new();
    for &k in probe_keys {
        if let Some(p) = table.probe(k, &mut acc) {
            matches.push((k, p[0]));
        }
    }
    let kin = alloc_array(
        ctx,
        probe_keys.len(),
        8,
        RegionClass::Intermediate,
        "mono.keys",
    );
    let profile = launch(
        ctx,
        "k_hash_probe",
        kernel_resources("k_hash_probe", wavefront),
        ReplayKernel::new(probe_keys.len(), wavefront, 11, 2)
            .reads(vec![kin])
            .extra(acc, 1),
    );
    JoinRun { matches, profile }
}

/// Radix probe: a non-blocking partition pass scatters the probe keys
/// into per-partition buffers; each partition is then probed against its
/// cache-resident sub-table.
pub fn probe_partitioned(
    ctx: &mut ExecContext,
    table: &PartitionedHashTable,
    probe_keys: &[i64],
) -> JoinRun {
    let wavefront = ctx.sim.spec().wavefront_size;
    let nparts = table.num_parts();
    let mut merged = LaunchProfile::default();

    // Pass 1 — partition (streaming): read keys, append each to its
    // partition buffer. Writes are sequential per partition cursor.
    let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); nparts];
    for &k in probe_keys {
        buckets[table.part_of(k)].push(k);
    }
    let kin = alloc_array(
        ctx,
        probe_keys.len(),
        8,
        RegionClass::Intermediate,
        "radix.keys",
    );
    let bufs: Vec<ArrayRef> = buckets
        .iter()
        .enumerate()
        .map(|(i, b)| {
            alloc_array(
                ctx,
                b.len().max(1),
                8,
                RegionClass::Intermediate,
                &format!("radix.p{i}"),
            )
        })
        .collect();
    merged.merge(&launch(
        ctx,
        "k_partition",
        kernel_resources("k_map", wavefront),
        ReplayKernel::new(probe_keys.len(), wavefront, 8, 2)
            .reads(vec![kin])
            .writes(bufs.clone()),
    ));

    // Pass 2 — per-partition probes: each sub-table stays cache-resident
    // for the whole pass.
    let mut matches = Vec::new();
    for (i, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let mut acc = Vec::with_capacity(bucket.len());
        for &k in bucket {
            if let Some(p) = table.parts[i].probe(k, &mut acc) {
                matches.push((k, p[0]));
            }
        }
        merged.merge(&launch(
            ctx,
            "k_hash_probe",
            kernel_resources("k_hash_probe", wavefront),
            ReplayKernel::new(bucket.len(), wavefront, 11, 2)
                .reads(vec![bufs[i]])
                .extra(acc, 1)
                // Fine batches: a per-partition launch is small, and the
                // device still needs enough quanta to fill every CU.
                .batch(1024),
        ));
    }
    JoinRun {
        matches,
        profile: merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_sim::amd_a10;
    use gpl_tpch::TpchDb;
    use std::collections::HashMap;

    fn ctx() -> ExecContext {
        ExecContext::new(amd_a10(), TpchDb::at_scale(0.001))
    }

    /// Deterministic pseudo-random keys (probe side references builds).
    fn keys(n: usize, domain: i64, seed: u64) -> Vec<i64> {
        (0..n)
            .map(|i| (mix64(seed ^ i as u64) as i64).rem_euclid(domain))
            .collect()
    }

    #[test]
    fn partitioned_join_matches_oracle_and_monolithic() {
        let mut ctx = ctx();
        let build: Vec<i64> = (0..50_000).map(|i| i * 3).collect();
        let payload: Vec<i64> = build.iter().map(|k| k * 10).collect();
        let probes = keys(80_000, 200_000, 7);

        let (pt, _) = build_partitioned(&mut ctx, &build, &payload, 8);
        let part = probe_partitioned(&mut ctx, &pt, &probes);

        let mut mono_table = SimHashTable::new(&mut ctx.sim.mem, build.len(), 1, "mono");
        let mut acc = Vec::new();
        for (&k, &v) in build.iter().zip(&payload) {
            mono_table.insert(k, &[v], &mut acc);
        }
        let mono = probe_monolithic(&mut ctx, &mono_table, &probes);

        let oracle: HashMap<i64, i64> = build.iter().copied().zip(payload).collect();
        let want: usize = probes.iter().filter(|k| oracle.contains_key(k)).count();
        assert_eq!(mono.matches.len(), want);
        assert_eq!(part.matches.len(), want);
        let mut a = mono.matches.clone();
        let mut b = part.matches.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "both strategies find the same pairs");
        for (k, v) in a {
            assert_eq!(oracle[&k], v);
        }
    }

    #[test]
    fn radix_probing_beats_monolithic_on_oversized_tables() {
        // Build side ~1M keys: the monolithic table is ~8x the 4 MB
        // cache; each of the 16 radix partitions fits. The probe side is
        // larger than the build so bucket lines get re-touched — the
        // regime where radix locality pays.
        let mut c1 = ctx();
        let build: Vec<i64> = (0..1_000_000).collect();
        let payload = build.clone();
        let probes = keys(2_000_000, 1_500_000, 11);

        let mut mono_table = SimHashTable::new(&mut c1.sim.mem, build.len(), 1, "mono");
        let mut acc = Vec::new();
        for (&k, &v) in build.iter().zip(&payload) {
            mono_table.insert(k, &[v], &mut acc);
        }
        c1.sim.clear_cache();
        let mono = probe_monolithic(&mut c1, &mono_table, &probes);

        let mut c2 = ctx();
        let nparts = PartitionedHashTable::parts_for(build.len(), 1, c2.sim.spec().cache_bytes);
        assert!(
            nparts >= 8,
            "the table must actually need partitioning, got {nparts}"
        );
        let (pt, _) = build_partitioned(&mut c2, &build, &payload, nparts);
        c2.sim.clear_cache();
        let part = probe_partitioned(&mut c2, &pt, &probes);

        assert_eq!(mono.matches.len(), part.matches.len());
        let mono_hit = mono.profile.hit_ratio();
        let part_hit = part.profile.hit_ratio();
        assert!(
            part_hit > mono_hit + 0.2,
            "radix locality must show: {part_hit:.2} vs {mono_hit:.2}"
        );
        // The cycle win is bounded by the extra partition pass; require
        // a clear net gain.
        assert!(
            (part.profile.elapsed_cycles as f64) < 0.95 * mono.profile.elapsed_cycles as f64,
            "partitioned {} vs monolithic {}",
            part.profile.elapsed_cycles,
            mono.profile.elapsed_cycles
        );
    }

    #[test]
    fn small_tables_do_not_need_partitions() {
        let n = PartitionedHashTable::parts_for(1_000, 1, 4 << 20);
        assert_eq!(n, 1);
    }

    #[test]
    fn partition_routing_is_stable_and_covers_all_parts() {
        let mut ctx = ctx();
        let t = PartitionedHashTable::new(&mut ctx, 1_000, 0, 8, "t");
        let mut seen = [false; 8];
        for k in 0..1_000i64 {
            let p = t.part_of(k);
            assert_eq!(p, t.part_of(k), "routing must be deterministic");
            seen[p] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "keys must spread over all partitions"
        );
    }
}
