//! The `BenchArtifact` schema: one byte-reproducible JSON per `repro`
//! experiment, under `target/obs/BENCH_<experiment>.json`.
//!
//! Every field is derived from simulated state — cycles, row counts,
//! FNV fingerprints, drift summaries — never wall-clock, so two runs of
//! the same experiment produce byte-identical artifacts and `repro
//! bench` can diff trajectories across commits. The schema is
//! versioned (`gpl-bench-artifact-v1`); [`validate`] is the gate the
//! aggregator and `scripts/verify.sh` apply to every emitted file.
//!
//! Experiments do not write files themselves: the dispatcher hands each
//! one an [`ArtifactSink`] through `Opts`, collects what it recorded
//! ([`RunEntry`] per executed query, free-form facts for calibration
//! tables and sweeps), and writes the parse-checked artifact when the
//! experiment returns — so *every* experiment emits one, even if it
//! recorded nothing.

use gpl_obs::{parse, DriftSummary, Json};
use std::cell::RefCell;
use std::rc::Rc;

/// Schema tag checked by [`validate`].
pub const SCHEMA: &str = "gpl-bench-artifact-v1";
/// Where artifacts land, relative to the working directory.
pub const OUT_DIR: &str = "target/obs";

/// Stable lowercase key for an execution mode, used in artifact `mode`
/// fields and export file names.
pub fn mode_key(mode: gpl_core::ExecMode) -> &'static str {
    match mode {
        gpl_core::ExecMode::Kbe => "kbe",
        gpl_core::ExecMode::GplNoCe => "gpl-noce",
        gpl_core::ExecMode::Gpl => "gpl",
        gpl_core::ExecMode::GplPipelined => "gpl-pipelined",
    }
}

/// FNV-1a over a run's result rows — the same digest shape the serve
/// report uses, so artifacts can be compared across tools.
pub fn row_fingerprint(run: &gpl_core::QueryRun) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(&(run.output.rows.len() as u64).to_le_bytes());
    for row in &run.output.rows {
        for v in row {
            mix(&v.to_le_bytes());
        }
    }
    h
}

/// One executed query (or workload) inside an experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunEntry {
    /// Query or workload label, e.g. `Q9` or `serve-4w`.
    pub label: String,
    /// Execution mode key, e.g. `gpl-pipelined` (empty when the notion
    /// does not apply).
    pub mode: String,
    /// Observed simulated cycles.
    pub cycles: u64,
    /// Result rows.
    pub rows: u64,
    /// FNV-1a over the result rows (0 when not computed).
    pub fingerprint: u64,
    /// Predicted-vs-observed drift, when the experiment joined one.
    pub drift: Option<DriftSummary>,
    /// Experiment-specific extras (overlap windows, error percentages…).
    pub extra: Vec<(String, Json)>,
}

impl RunEntry {
    pub fn new(label: impl Into<String>, mode: impl Into<String>) -> Self {
        RunEntry {
            label: label.into(),
            mode: mode.into(),
            ..Default::default()
        }
    }

    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    pub fn rows(mut self, rows: u64) -> Self {
        self.rows = rows;
        self
    }

    pub fn fingerprint(mut self, fp: u64) -> Self {
        self.fingerprint = fp;
        self
    }

    pub fn drift(mut self, summary: DriftSummary) -> Self {
        self.drift = Some(summary);
        self
    }

    pub fn extra(mut self, key: &str, value: Json) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("label".to_string(), Json::Str(self.label.clone())),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("cycles".to_string(), Json::Int(self.cycles as i64)),
            ("rows".to_string(), Json::Int(self.rows as i64)),
            (
                "fingerprint".to_string(),
                Json::Str(format!("{:#018x}", self.fingerprint)),
            ),
        ];
        if let Some(d) = &self.drift {
            pairs.push(("drift".to_string(), d.to_json()));
        }
        if !self.extra.is_empty() {
            pairs.push(("extra".to_string(), Json::Obj(self.extra.clone())));
        }
        Json::Obj(pairs)
    }
}

/// Everything one experiment reports.
#[derive(Debug, Clone, Default)]
pub struct BenchArtifact {
    pub experiment: String,
    pub device: String,
    /// Scale factor, when the experiment resolved one.
    pub sf: Option<f64>,
    pub runs: Vec<RunEntry>,
    /// Non-query results: calibration points, sweep series, assertions.
    pub facts: Vec<(String, Json)>,
}

impl BenchArtifact {
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("device".to_string(), Json::Str(self.device.clone())),
        ];
        if let Some(sf) = self.sf {
            pairs.push(("sf".to_string(), Json::Num(sf)));
        }
        pairs.push((
            "runs".to_string(),
            Json::Arr(self.runs.iter().map(|r| r.to_json()).collect()),
        ));
        pairs.push(("facts".to_string(), Json::Obj(self.facts.clone())));
        Json::Obj(pairs)
    }
}

/// Check that a parsed `BENCH_*.json` is a well-formed v1 artifact.
pub fn validate(j: &Json) -> Result<(), String> {
    match j.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?}")),
        None => return Err("missing schema tag".to_string()),
    }
    for key in ["experiment", "device"] {
        if j.get(key).and_then(|v| v.as_str()).is_none() {
            return Err(format!("missing string field {key:?}"));
        }
    }
    let Some(runs) = j.get("runs").and_then(|r| r.as_arr()) else {
        return Err("missing runs array".to_string());
    };
    for (i, r) in runs.iter().enumerate() {
        for key in ["label", "mode", "fingerprint"] {
            if r.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("run {i}: missing string field {key:?}"));
            }
        }
        for key in ["cycles", "rows"] {
            if r.get(key).and_then(|v| v.as_f64()).is_none() {
                return Err(format!("run {i}: missing numeric {key:?}"));
            }
        }
    }
    if j.get("facts").is_none() {
        return Err("missing facts object".to_string());
    }
    Ok(())
}

/// Shared recording handle threaded through `Opts`. The dispatcher owns
/// the lifecycle ([`ArtifactSink::begin`] / [`ArtifactSink::finish`]);
/// experiments only record.
#[derive(Debug, Clone, Default)]
pub struct ArtifactSink {
    inner: Rc<RefCell<BenchArtifact>>,
}

impl ArtifactSink {
    /// Reset for a new experiment.
    pub fn begin(&self, experiment: &str, device: &str) {
        let mut a = self.inner.borrow_mut();
        *a = BenchArtifact {
            experiment: experiment.to_string(),
            device: device.to_string(),
            ..Default::default()
        };
    }

    /// Record the scale factor the experiment resolved.
    pub fn sf(&self, sf: f64) {
        self.inner.borrow_mut().sf = Some(sf);
    }

    /// Record one executed query.
    pub fn run(&self, entry: RunEntry) {
        self.inner.borrow_mut().runs.push(entry);
    }

    /// Record a non-query fact (calibration point, sweep series…).
    pub fn fact(&self, key: &str, value: Json) {
        self.inner.borrow_mut().facts.push((key.to_string(), value));
    }

    /// Parse-check and write `target/obs/BENCH_<experiment>.json`;
    /// returns the path. Panics if the export does not satisfy its own
    /// schema — an artifact that doesn't validate is a bug, not a report.
    pub fn finish(&self) -> String {
        let a = self.inner.borrow();
        assert!(!a.experiment.is_empty(), "finish before begin");
        std::fs::create_dir_all(OUT_DIR).expect("create target/obs");
        let path = format!("{OUT_DIR}/BENCH_{}.json", a.experiment);
        let text = a.to_json().to_pretty_string();
        let back =
            parse(&text).unwrap_or_else(|e| panic!("{path}: artifact does not re-parse: {e}"));
        validate(&back).unwrap_or_else(|e| panic!("{path}: artifact does not validate: {e}"));
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("{path}: {e}"));
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_and_validates() {
        let sink = ArtifactSink::default();
        sink.begin("unit", "Test GPU");
        sink.sf(0.01);
        sink.run(
            RunEntry::new("Q14", "gpl")
                .cycles(1234)
                .rows(1)
                .fingerprint(0xdead_beef)
                .extra("note", Json::Str("x".into())),
        );
        sink.fact("points", Json::Int(3));
        let a = sink.inner.borrow().clone();
        let text = a.to_json().to_pretty_string();
        let back = parse(&text).unwrap();
        validate(&back).expect("validates");
        assert_eq!(back.get("schema").unwrap().as_str().unwrap(), SCHEMA);
        let runs = back.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs[0].get("cycles").unwrap().as_f64().unwrap(), 1234.0);
        assert_eq!(
            runs[0].get("fingerprint").unwrap().as_str().unwrap(),
            "0x00000000deadbeef"
        );
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let j =
            parse(r#"{"schema":"v0","experiment":"x","device":"d","runs":[],"facts":{}}"#).unwrap();
        assert!(validate(&j).is_err());
        let j = parse(r#"{"experiment":"x"}"#).unwrap();
        assert!(validate(&j).is_err());
    }

    #[test]
    fn empty_artifact_is_still_well_formed() {
        let sink = ArtifactSink::default();
        sink.begin("nothing-recorded", "Test GPU");
        let text = sink.inner.borrow().to_json().to_pretty_string();
        validate(&parse(&text).unwrap()).expect("empty artifact validates");
    }
}
