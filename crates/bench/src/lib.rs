//! # gpl-bench — the experiment harness
//!
//! One subcommand per table/figure of the paper (see DESIGN.md's
//! per-experiment index), plus wall-clock micro/macro benches (see
//! [`harness`]). The `repro` binary prints the same rows and series the
//! paper reports.

pub mod artifact;
pub mod cli;
pub mod experiments;
pub mod harness;

pub use artifact::{ArtifactSink, BenchArtifact, RunEntry};
