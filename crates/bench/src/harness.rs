//! Minimal wall-clock benchmark harness (the offline replacement for
//! criterion, shaped like the subset this repo uses).
//!
//! Each benchmark runs one untimed warmup iteration, then up to
//! `sample_size` timed iterations (capped at ~2 s of wall clock so the
//! suite stays bounded), and prints min/mean/max per benchmark id.
//! `GPL_BENCH_SAMPLES=<n>` overrides the sample count globally.
//!
//! No statistics beyond that: these benches exist to regenerate the
//! paper's tables on whatever machine runs them, not to detect 1%
//! regressions. The simulator itself is deterministic, so variance here
//! is purely host noise.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark id once at least one sample landed.
const SAMPLE_BUDGET: Duration = Duration::from_secs(2);

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness handle; hands out benchmark groups.
pub struct Criterion {
    /// `GPL_BENCH_SAMPLES`, which beats call-site `sample_size`.
    forced: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::new()
    }
}

impl Criterion {
    pub fn new() -> Self {
        let forced = std::env::var("GPL_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.trim().parse().ok());
        Self { forced }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group {
        let name = name.into();
        println!("\n== {name} ==");
        Group {
            name,
            samples: self.forced.unwrap_or(10),
            forced: self.forced.is_some(),
        }
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct Group {
    name: String,
    samples: usize,
    forced: bool,
}

impl Group {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.forced {
            self.samples = n.max(1);
        }
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.id.clone(), &mut |b| f(b, input));
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        let times = b.times;
        if times.is_empty() {
            println!(
                "{}/{id}: no samples (Bencher::iter never called)",
                self.name
            );
            return;
        }
        let min = times.iter().min().unwrap();
        let max = times.iter().max().unwrap();
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{id}: [{} {} {}] ({} samples)",
            self.name,
            fmt_dur(*min),
            fmt_dur(mean),
            fmt_dur(*max),
            times.len(),
        );
    }
}

/// Handed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warmup, untimed
        let budget = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.times.push(t.elapsed());
            if budget.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into one group entry point
/// (the `criterion_group!` shape).
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::new();
            $( $f(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups (the `criterion_main!` shape).
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("q1", 64).to_string(), "q1/64");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut seen = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| seen += 1);
            // 3 timed + 1 warmup iterations.
            assert_eq!(seen, 4);
            assert_eq!(b.times.len(), 3);
        });
        g.finish();
    }
}
