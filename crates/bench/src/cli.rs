//! Command-line dispatch for the `repro` binary.

/// Entry point: `repro <experiment|all|list> [--sf <f>] [--device amd|nvidia]`.
pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    crate::experiments::dispatch(&args);
}
