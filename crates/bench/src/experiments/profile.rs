//! `repro profile <query>`: run one workload query under all three
//! execution modes with full observability on — SQL planning, the
//! cost-model search, per-stage execution, per-kernel simulator activity
//! and channel occupancy all recorded — then export a Chrome-trace JSON
//! per mode (drop it on <https://ui.perfetto.dev> or `chrome://tracing`)
//! and one flat metrics report, and print a side-by-side summary plus the
//! Eq. 8 predicted-vs-observed per-kernel cycle table.
//!
//! Every export is deterministic (simulated cycles and the recorder's
//! logical clock are the only time sources), and the command re-parses
//! its own output with the in-tree JSON parser before declaring success,
//! so a passing run guarantees well-formed files.

use super::Opts;
use crate::artifact::{mode_key, row_fingerprint, RunEntry};
use gpl_core::{run_query, ExecMode, QueryConfig, QueryRun};
use gpl_model::{build_models, drift_for_run, estimate_stats, optimize_models_traced};
use gpl_obs::{chrome_trace_string, metrics_report, parse, DriftReport, MetricsRegistry, Recorder};
use gpl_tpch::QueryId;

/// Where the exports land, relative to the working directory.
const OUT_DIR: &str = "target/obs";

fn query_by_name(name: &str) -> Option<QueryId> {
    QueryId::all()
        .into_iter()
        .find(|q| q.name().eq_ignore_ascii_case(name))
}

/// Write `text` to `path`, after asserting it round-trips the in-tree
/// JSON parser (an export that doesn't parse is a bug, not a report).
fn write_checked(path: &str, text: &str) {
    parse(text).unwrap_or_else(|e| panic!("{path}: export does not re-parse: {e}"));
    std::fs::write(path, text).unwrap_or_else(|e| panic!("{path}: {e}"));
}

pub fn profile(opts: &Opts) {
    let Some(qname) = opts.extra.first() else {
        eprintln!("usage: repro profile <query> [--sf <f>] [--device amd|nvidia]");
        eprintln!(
            "queries: {}",
            QueryId::all()
                .into_iter()
                .filter(|q| gpl_sql::sql_for(*q).is_some())
                .map(|q| q.name().to_lowercase())
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    };
    let Some(query) = query_by_name(qname) else {
        eprintln!("unknown query {qname:?}; run `repro profile` for the list");
        std::process::exit(2);
    };
    let Some(sql) = gpl_sql::sql_for(query) else {
        eprintln!(
            "{} has no SQL formulation; profile a TPC-H query instead",
            query.name()
        );
        std::process::exit(2);
    };
    let sf = opts.sf_or(0.01);
    let gamma = opts.gamma();
    opts.artifact.sf(sf);
    std::fs::create_dir_all(OUT_DIR).expect("create target/obs");

    println!(
        "profiling {} under all execution modes ({}, SF {sf}); traces land in {OUT_DIR}/",
        query.name(),
        opts.device.name
    );
    let mut registry = MetricsRegistry::new();
    let mut summary: Vec<(ExecMode, QueryRun)> = Vec::new();
    let mut written: Vec<String> = Vec::new();
    let mut gpl_drift: Option<DriftReport> = None;

    for mode in [ExecMode::Kbe, ExecMode::GplNoCe, ExecMode::Gpl] {
        // A fresh context and recorder per mode: each trace file stands
        // alone, and the modes never share cache state.
        let mut ctx = opts.ctx(sf);
        let rec = Recorder::new();
        let plan = gpl_sql::compile_traced(&ctx.db, sql, Some(&rec)).expect("corpus SQL compiles");
        let plan = gpl_model::optimize_join_order(&ctx.db, &plan);
        let stats = estimate_stats(&ctx.db, &plan);
        let models = build_models(&ctx.db, &plan, &stats, &opts.device);
        let cfg = match mode {
            // KBE ignores the pipeline knobs; it runs the paper default.
            ExecMode::Kbe => QueryConfig::default_for(&opts.device, &plan),
            _ => optimize_models_traced(&opts.device, &gamma, &plan, &models, Some(&rec)).config,
        };
        ctx.sim.attach_recorder(rec.clone());
        ctx.sim.enable_trace();
        let run = run_query(&mut ctx, &plan, mode, &cfg);
        gpl_sim::record_spans(&rec, &ctx.sim.take_trace());

        let labels = [
            ("query", query.name()),
            ("mode", mode.name()),
            ("device", opts.device.name.as_str()),
        ];
        run.profile.export_metrics(&mut registry, &labels);

        let path = format!(
            "{OUT_DIR}/profile-{}-{}.trace.json",
            query.name().to_lowercase(),
            mode_key(mode)
        );
        write_checked(&path, &chrome_trace_string(&rec));
        written.push(path);

        // Predicted-vs-observed drift, for the mode the model targets:
        // the Eq. 8 cycle estimates and the per-kernel λ joined against
        // the simulator's observed cycles and row counts, keyed by the
        // shared lowered-IR kernel names.
        let mut entry = RunEntry::new(query.name(), mode_key(mode))
            .cycles(run.cycles)
            .rows(run.output.rows.len() as u64)
            .fingerprint(row_fingerprint(&run));
        if mode == ExecMode::Gpl {
            let report = drift_for_run(
                &opts.device,
                &gamma,
                &models,
                &cfg,
                &run,
                query.name(),
                mode_key(mode),
            );
            entry = entry.drift(report.summary());
            gpl_drift = Some(report);
        }
        opts.artifact.run(entry);
        summary.push((mode, run));
    }

    println!(
        "\n{:<14} {:>12} {:>9} {:>12} {:>10} {:>10} {:>14}",
        "mode", "cycles", "ms", "VALUBusy", "MemBusy", "occupancy", "intermediates"
    );
    for (mode, run) in &summary {
        let p = &run.profile;
        println!(
            "{:<14} {:>12} {:>9.3} {:>11.1}% {:>9.1}% {:>9.1}% {:>13}B",
            mode.name(),
            run.cycles,
            run.ms(&opts.device),
            p.valu_busy() * 100.0,
            p.mem_unit_busy() * 100.0,
            p.occupancy() * 100.0,
            p.intermediate_footprint()
        );
    }

    if let Some(report) = &gpl_drift {
        println!("\nEq. 8 model vs simulator, per GPL kernel");
        println!("(whole-stage busy cycles over the kernel's effective CUs):");
        print!("{}", report.render());
        let path = format!(
            "{OUT_DIR}/profile-{}-drift.json",
            query.name().to_lowercase()
        );
        write_checked(&path, &report.to_json().to_pretty_string());
        written.push(path);
    }

    let sf_text = format!("{sf}");
    let meta = [
        ("query", query.name()),
        ("sf", sf_text.as_str()),
        ("device", opts.device.name.as_str()),
    ];
    let report = metrics_report(&registry, &meta).to_pretty_string();
    let path = format!(
        "{OUT_DIR}/profile-{}-metrics.json",
        query.name().to_lowercase()
    );
    write_checked(&path, &report);
    written.push(path);

    println!("\nexports (all re-parsed with the in-tree JSON parser):");
    for p in &written {
        println!("  {p}");
    }
    println!("load the .trace.json files in Perfetto (ui.perfetto.dev) or chrome://tracing;");
    println!("timestamps are simulated device cycles shown as µs.");
}
