//! `repro simperf` — wall-clock throughput of the simulator engine.
//!
//! Every other experiment reports *simulated* quantities, which are
//! deterministic and therefore pinnable. This one measures how fast the
//! simulator itself runs on the host: it replays the SF 0.3 serve
//! corpus, the same corpus under injected slowdown faults (the chaos
//! arm), and the multi-device shard sweep, and reports events/sec
//! (one event per simulated work unit), launches/sec and queries/sec
//! in *wall-clock* terms.
//!
//! Two output planes, kept strictly apart (see OBSERVABILITY.md):
//!
//! * the `BENCH_simperf.json` artifact carries only deterministic
//!   facts (queries, launches, events, simulated cycles, fingerprints)
//!   and must be byte-identical across runs;
//! * wall-clock numbers go to `target/obs/simperf-wall.txt`, a
//!   non-pinned report that also prints the speedup against the
//!   recorded pre-refactor reference in `scripts/simperf_reference.json`
//!   when the run parameters match the reference's.

use super::Opts;
use crate::artifact::{row_fingerprint, RunEntry};
use gpl_core::{
    plan_for, try_run_query_sharded, DeviceKind, ExecContext, ExecLimits, ExecMode, ShardPlan,
};
use gpl_model::place_query;
use gpl_obs::Json;
use gpl_sim::{FaultPlan, FaultSpec};
use gpl_sql::sql_for;
use gpl_tpch::{QueryId, TpchDb};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one arm of the benchmark did. The first four fields are
/// deterministic; `wall` is host-dependent and never pinned.
struct ArmResult {
    name: &'static str,
    queries: u64,
    launches: u64,
    events: u64,
    cycles: u64,
    fingerprint: u64,
    wall: Duration,
}

impl ArmResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-12)
    }
    fn launches_per_sec(&self) -> f64 {
        self.launches as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Fold one run's fingerprint into an arm-level FNV-style digest.
fn mix(acc: u64, fp: u64) -> u64 {
    (acc ^ fp).wrapping_mul(0x100_0000_01b3)
}

/// The serve corpus: the compilable TPC-H corpus queries cycled to `n`
/// requests, each on a fresh context over the shared database — the
/// exact per-query isolation the serve workers use.
fn corpus_arm(
    name: &'static str,
    opts: &Opts,
    db: &Arc<TpchDb>,
    n: usize,
    faults: Option<(&FaultSpec, u64)>,
) -> ArmResult {
    let sqls: Vec<&'static str> = QueryId::all().into_iter().filter_map(sql_for).collect();
    let mut r = ArmResult {
        name,
        queries: 0,
        launches: 0,
        events: 0,
        cycles: 0,
        fingerprint: 0xcbf2_9ce4_8422_2325,
        wall: Duration::ZERO,
    };
    let t0 = Instant::now();
    for i in 0..n {
        let mut ctx = ExecContext::with_shared(opts.device.clone(), db.clone());
        if let Some((spec, seed)) = faults {
            // Same per-query seed mixing as the serve scheduler.
            let qseed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ctx.sim.attach_faults(FaultPlan::new(spec.clone(), qseed));
        }
        let run = gpl_sql::run_sql(&mut ctx, sqls[i % sqls.len()], ExecMode::Gpl)
            .expect("corpus query compiles");
        r.queries += 1;
        r.cycles += run.cycles;
        r.launches += run.per_stage.len() as u64;
        r.events += run
            .per_stage
            .iter()
            .flat_map(|p| p.kernels.iter())
            .map(|k| k.units)
            .sum::<u64>();
        r.fingerprint = mix(r.fingerprint, row_fingerprint(&run));
    }
    r.wall = t0.elapsed();
    r
}

/// The shard sweep: the chaos experiment's shard-arm queries, run range-
/// sharded across the default heterogeneous pool under the placement
/// pass.
fn shard_arm(sf: f64) -> ArmResult {
    let db = Arc::new(TpchDb::at_scale(sf));
    let pool = gpl_core::DevicePool::default_pool();
    let gammas = super::shard::pool_gammas(&pool);
    let queries = [QueryId::Q6, QueryId::Q14, QueryId::Q5, QueryId::Q9];
    let plan2 = ShardPlan::range(2);
    let mut r = ArmResult {
        name: "shard",
        queries: 0,
        launches: 0,
        events: 0,
        cycles: 0,
        fingerprint: 0xcbf2_9ce4_8422_2325,
        wall: Duration::ZERO,
    };
    let t0 = Instant::now();
    for q in queries {
        let plan = plan_for(&db, q);
        let placement = place_query(&pool, &gammas, &db, &plan, Some(DeviceKind::Gpu));
        let run = try_run_query_sharded(
            &pool,
            &db,
            &plan,
            ExecMode::Gpl,
            &plan2,
            &placement.assignment,
            &ExecLimits::default(),
            None,
            None,
            None,
            None,
        )
        .expect("fault-free sharded run");
        r.queries += 1;
        r.cycles += run.cycles;
        for d in &run.per_device {
            r.launches += d.per_stage.len() as u64;
            r.events += d
                .per_stage
                .iter()
                .flat_map(|p| p.kernels.iter())
                .map(|k| k.units)
                .sum::<u64>();
        }
        let mut out_fp = 0xcbf2_9ce4_8422_2325u64;
        for row in &run.output.rows {
            for v in row {
                for b in v.to_le_bytes() {
                    out_fp = (out_fp ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        r.fingerprint = mix(r.fingerprint, out_fp);
    }
    r.wall = t0.elapsed();
    r
}

/// Load the recorded pre-refactor reference, if present and comparable
/// with this run's parameters.
fn load_reference(device: &str, sf: f64, queries: usize) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string("scripts/simperf_reference.json").ok()?;
    let j = gpl_obs::parse(&text).ok()?;
    if j.get("device")?.as_str()? != device {
        return None;
    }
    if j.get("sf")?.as_f64()? != sf || j.get("queries")?.as_f64()? != queries as f64 {
        return None;
    }
    let arms = j.get("arms")?.as_arr()?;
    Some(
        arms.iter()
            .filter_map(|a| {
                Some((
                    a.get("arm")?.as_str()?.to_string(),
                    a.get("events_per_sec")?.as_f64()?,
                ))
            })
            .collect(),
    )
}

pub fn simperf(opts: &Opts) {
    let sf = opts.sf_or(0.3);
    let n = opts.queries.unwrap_or(24);
    let shard_sf = sf.min(0.05);
    println!("simulator wall-clock throughput (SF {sf}, {n} corpus requests)");
    println!("(wall numbers are host-dependent: reported, never pinned)\n");
    opts.artifact.sf(sf);

    let db = Arc::new(TpchDb::at_scale(sf));
    let slowdown = FaultSpec::none().with_slowdown(0.3, 4.0, 1 << 18);
    let arms = [
        corpus_arm("serve", opts, &db, n, None),
        corpus_arm("chaos", opts, &db, n.div_ceil(3), Some((&slowdown, 1337))),
        shard_arm(shard_sf),
    ];

    let reference = load_reference(&opts.device.name, sf, n);
    if reference.is_none() {
        println!("(no comparable pre-refactor reference; speedup omitted)\n");
    }

    println!(
        "{:>6}  {:>8} {:>9} {:>10} {:>9} {:>11} {:>11} {:>8}",
        "arm", "queries", "launches", "events", "wall ms", "events/s", "launches/s", "speedup"
    );
    let mut report = String::from(
        "# simperf wall-clock plane — host-dependent, NON-DETERMINISTIC, never pinned\n\
         # deterministic twin of this run: target/obs/BENCH_simperf.json\n",
    );
    for a in &arms {
        let speedup = reference.as_ref().and_then(|r| {
            r.iter()
                .find(|(name, _)| name == a.name)
                .map(|(_, ref_eps)| a.events_per_sec() / ref_eps.max(1e-12))
        });
        let speedup_s = speedup.map_or("-".to_string(), |s| format!("{s:.2}x"));
        println!(
            "{:>6}  {:>8} {:>9} {:>10} {:>9.1} {:>11.0} {:>11.1} {:>8}",
            a.name,
            a.queries,
            a.launches,
            a.events,
            a.wall.as_secs_f64() * 1e3,
            a.events_per_sec(),
            a.launches_per_sec(),
            speedup_s,
        );
        report.push_str(&format!(
            "{} wall_ms={:.3} events_per_sec={:.1} launches_per_sec={:.2} speedup={}\n",
            a.name,
            a.wall.as_secs_f64() * 1e3,
            a.events_per_sec(),
            a.launches_per_sec(),
            speedup_s,
        ));
        // Only the deterministic facts reach the artifact plane.
        opts.artifact.run(
            RunEntry::new(a.name, "gpl")
                .cycles(a.cycles)
                .rows(a.queries)
                .fingerprint(a.fingerprint)
                .extra("launches", Json::Int(a.launches as i64))
                .extra("events", Json::Int(a.events as i64)),
        );
    }
    std::fs::create_dir_all("target/obs").ok();
    let wall_path = "target/obs/simperf-wall.txt";
    std::fs::write(wall_path, &report).expect("write wall report");
    println!("\nwall report: {wall_path} (non-pinned plane)");
}
