//! `repro chaos` — straggler defense and partial-progress recovery
//! under gray failures, end to end.
//!
//! Sweeps **slowdown severity × hard-fault rate** and, at every grid
//! point, measures the tail (p50/p95/p99 simulated cycles) twice:
//!
//! * the **serving layer** over the corpus workload, PR 4's retry-only
//!   recovery vs the same policy with **slice-checkpoint resume**
//!   (`RecoveryPolicy::with_checkpoints`): a faulted blocking stage
//!   re-runs from the last verified slice instead of row 0;
//! * the **sharded pool**, hedging off vs on (`HedgePlan` from the
//!   placement's estimate matrix): a shard observed past its modeled
//!   deadline gets a speculative backup on the modeled-cheapest other
//!   live device, first verified finisher wins, loser cancelled.
//!
//! Hard faults here are *mid-launch*: `FaultSpec::fail_progress(1.0)`
//! defers detection to end-of-launch verification, so a failing stage
//! loses the work it had executed — the regime where resuming from a
//! checkpoint has something to save. `fail_hazard_cycles` makes the
//! failure rate constant per executed cycle rather than per launch, so
//! slicing a stage into K launches does not multiply its fault
//! exposure. (PR 4's admission-time model charges a failed launch only
//! its detection cost, under which whole-stage retry loses nothing and
//! checkpoints can only add overhead.)
//!
//! Both defenses trade duplicate/checkpoint cycles for tail latency and
//! **never rows**: every defended run is asserted bit-identical (rows
//! and fingerprints) to its fault-free baseline, and at the heaviest
//! grid point the defended p95 must not regress the undefended p95.
//!
//! Everything printed is deterministic (simulated cycles only), so two
//! runs of the same command are byte-identical — `scripts/verify.sh`
//! diffs them. `target/obs/BENCH_chaos.json` carries the same numbers
//! for the baseline pinning in `scripts/bench_baseline.json`.

use super::Opts;
use crate::artifact::RunEntry;
use gpl_core::shard::{try_run_query_sharded, DevicePool, ShardFaults, ShardPlan};
use gpl_core::{plan_for, ExecLimits, ExecMode, RecoveryPolicy};
use gpl_model::{hedge_plan, place_query, GammaTable};
use gpl_obs::Json;
use gpl_serve::{BatchReport, FaultConfig, QueryRequest, ServeConfig, Server};
use gpl_sim::FaultSpec;
use gpl_sql::sql_for;
use gpl_tpch::{QueryId, TpchDb};
use std::sync::Arc;

const OUT_PATH: &str = "target/obs/chaos-report.txt";
const CHAOS_SEED: u64 = 1337;
/// Duration of one injected slowdown window, in simulated cycles.
const SLOWDOWN_CYCLES: u64 = 1 << 18;
/// Checkpoint slices per blocking stage for the defended serve runs.
/// Two slices halve the work a mid-stage fault destroys while paying
/// the per-launch overhead only once more per stage; the probe grid
/// showed higher K losing its savings to that fixed tax.
const CKPT_SLICES: u32 = 2;
/// Hedge lateness threshold for the defended sharded runs: a shard 2×
/// over its *whole stage's* modeled cycles is a straggler.
const HEDGE_THRESHOLD: f64 = 2.0;
/// Constant-hazard window: a launch spanning this many cycles carries
/// the spec's full per-launch failure probability, shorter launches
/// proportionally less. Sized above the heaviest blocking-stage launch
/// of the serve corpus at its scale factor — if a launch saturates the
/// window, slicing it multiplies fault draws without the offsetting
/// probability discount and the constant-hazard property is lost.
const HAZARD_WINDOW: u64 = 1 << 25;
/// The sharded arm re-runs each placement under this many fault seeds.
const SHARD_SEEDS: u64 = 3;
/// Scale factor of the sharded arm: hedging reacts to slowdown
/// windows, whose economics do not need the serve arm's deep stages,
/// so the pool sweep stays cheap.
const SHARD_SF: f64 = 0.05;

/// The sweep grid: hard-fault rate per hazard-window of executed
/// cycles × slowdown severity `(probability, throughput factor)`.
/// Rates are per [`HAZARD_WINDOW`]: a stage launch spanning the whole
/// window draws a failure with `3 × rate` probability (uniform arms
/// three failing kinds), short launches proportionally less.
const RATES: [f64; 2] = [1.5e-1, 3e-1];
const SEVERITIES: [(f64, f64); 2] = [(0.02, 4.0), (0.05, 8.0)];

/// The corpus workload, like `repro faults`: `n` requests cycling the
/// compilable corpus queries under full GPL.
fn workload(n: usize) -> Vec<QueryRequest> {
    let sqls: Vec<&'static str> = QueryId::all().into_iter().filter_map(sql_for).collect();
    (0..n)
        .map(|i| QueryRequest::new(i as u64, sqls[i % sqls.len()], ExecMode::Gpl))
        .collect()
}

/// Exact nearest-rank percentile over the raw samples (not the log2
/// histogram — both arms have few samples per point, so factor-2
/// bucket edges would hide real differences).
fn pct(samples: &[u64], p: f64) -> u64 {
    assert!(!samples.is_empty());
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = ((p / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
    v[rank.min(v.len()) - 1]
}

/// Per-query execution cycles of every successful response (exact, no
/// queue wait — a pure function of the fault stream and policy).
fn exec_cycles(report: &BatchReport) -> Vec<u64> {
    report
        .responses
        .iter()
        .filter_map(|r| r.result.as_ref().ok().map(|q| q.cycles))
        .collect()
}

/// Execution cycles indexed by request id (the workload ids are dense
/// `0..n`), for matching a defended run to its fault-free twin.
fn cycles_by_id(report: &BatchReport, n: usize) -> Vec<u64> {
    let mut v = vec![0u64; n];
    for r in &report.responses {
        if let Ok(q) = r.result.as_ref() {
            v[r.id as usize] = q.cycles;
        }
    }
    v
}

fn pool_gammas(pool: &DevicePool) -> Vec<GammaTable> {
    pool.devices()
        .iter()
        .map(|d| {
            let file = format!(
                "target/gamma-{}.txt",
                d.spec.name.to_lowercase().replace(' ', "-")
            );
            GammaTable::load_or_calibrate(&d.spec, std::path::Path::new(&file))
        })
        .collect()
}

pub fn chaos(opts: &Opts) {
    let sf = opts.sf_or(0.3);
    let n = opts.queries.unwrap_or(24);
    let db = Arc::new(TpchDb::at_scale(sf));
    let gamma = Arc::new(opts.gamma());
    let mut out = String::new();
    let emit = |line: String, out: &mut String| {
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    };
    opts.artifact.sf(sf);

    emit(
        format!(
            "chaos: straggler defense & partial-progress recovery, {n} corpus requests, SF {sf}, seed {CHAOS_SEED}",
        ),
        &mut out,
    );
    emit(
        "(mid-launch faults lose executed work, constant hazard per cycle; slowdowns inflate cycles, never rows)\n"
            .into(),
        &mut out,
    );

    // ---- Serve arm: retry-only vs slice-checkpoint resume ----------
    let serve = |recovery: RecoveryPolicy, spec: Option<FaultSpec>| {
        Server::start(
            ServeConfig {
                workers: 1,
                faults: spec.map(|spec| FaultConfig {
                    seed: CHAOS_SEED,
                    spec,
                }),
                recovery: Some(recovery),
                ..ServeConfig::default()
            },
            opts.device.clone(),
            db.clone(),
            gamma.clone(),
        )
        .run_batch_report(workload(n))
    };
    let retry_only = || RecoveryPolicy::with_retries(2);
    let ckpt = || RecoveryPolicy::with_retries(2).with_checkpoints(CKPT_SLICES);
    let chaos_spec = |rate: f64, sp: f64, factor: f64| {
        FaultSpec::uniform(rate)
            .with_slowdown(sp, factor, SLOWDOWN_CYCLES)
            .with_fail_progress(1.0)
            .with_fail_hazard(HAZARD_WINDOW)
    };

    let base = serve(retry_only(), None);
    assert_eq!(base.err_count(), 0, "fault-free baseline must be clean");
    let base_rows_fp = base.rows_fingerprint();
    let base_cycles = exec_cycles(&base);
    let base_by_id = cycles_by_id(&base, n);
    opts.artifact.run(
        RunEntry::new("serve-baseline", "gpl")
            .cycles(base.simulated_makespan())
            .rows(n as u64)
            .fingerprint(base_rows_fp),
    );
    emit(
        format!(
            "serve baseline (no faults, retry-only): p50 {} / p95 {} / p99 {} exec cycles, rows fp {base_rows_fp:#018x}",
            pct(&base_cycles, 50.0),
            pct(&base_cycles, 95.0),
            pct(&base_cycles, 99.0),
        ),
        &mut out,
    );
    // The checkpoint tax in isolation: same fault-free workload, sliced.
    let base_ckpt = serve(ckpt(), None);
    assert_eq!(base_ckpt.rows_fingerprint(), base_rows_fp);
    let tax = exec_cycles(&base_ckpt);
    emit(
        format!(
            "checkpoint tax (no faults, {CKPT_SLICES} slices): p95 {} exec cycles ({:+.1}% over baseline)\n",
            pct(&tax, 95.0),
            (pct(&tax, 95.0) as f64 / pct(&base_cycles, 95.0) as f64 - 1.0) * 100.0,
        ),
        &mut out,
    );

    emit(
        format!(
            "{:>14}  {:>7}  {:>6}  {:>8}  {:>12}  {:>12}  {:>12}  {:>7}  {:>7}",
            "slowdown", "rate", "policy", "faults", "p50", "p95", "p99", "resumed", "rows"
        ),
        &mut out,
    );
    // Sweep-wide per-query *inflation* over the fault-free twin, in
    // permille (1000 = unchanged). Absolute per-query cycles are
    // dominated by how big each query inherently is; inflation puts
    // every fault-struck query in the tail regardless of its size, so
    // the percentiles measure what the faults (and the defense) did.
    let mut retry_inflation: Vec<u64> = Vec::new();
    let mut ckpt_inflation: Vec<u64> = Vec::new();
    let mut total_resumed = 0u64;
    for &(sp, factor) in &SEVERITIES {
        for &rate in &RATES {
            for (label, policy, defended) in
                [("retry", retry_only(), false), ("ckpt", ckpt(), true)]
            {
                let report = serve(policy, Some(chaos_spec(rate, sp, factor)));
                assert_eq!(
                    report.err_count(),
                    0,
                    "recovery must absorb every fault (slowdown {factor}x, rate {rate})"
                );
                let rows_fp = report.rows_fingerprint();
                assert_eq!(
                    rows_fp, base_rows_fp,
                    "defended rows must match the fault-free baseline (slowdown {factor}x, rate {rate}, {label})"
                );
                let (faults, _, _, _) = report.recovery_totals();
                let (_, _, resumed, saved) = report.hedge_totals();
                let cycles = exec_cycles(&report);
                let (p50, p95, p99) = (pct(&cycles, 50.0), pct(&cycles, 95.0), pct(&cycles, 99.0));
                let by_id = cycles_by_id(&report, n);
                let inflation = if defended {
                    &mut ckpt_inflation
                } else {
                    &mut retry_inflation
                };
                inflation.extend(
                    by_id
                        .iter()
                        .zip(&base_by_id)
                        .map(|(&c, &b)| c * 1000 / b.max(1)),
                );
                if defended {
                    total_resumed += resumed;
                }
                opts.artifact.run(
                    RunEntry::new(format!("sv{factor}x-r{rate:.0e}-{label}"), "gpl")
                        .cycles(report.simulated_makespan())
                        .rows(report.ok_count() as u64)
                        .fingerprint(rows_fp)
                        .extra("p50", Json::Int(p50 as i64))
                        .extra("p95", Json::Int(p95 as i64))
                        .extra("p99", Json::Int(p99 as i64))
                        .extra("resumed_slices", Json::Int(resumed as i64))
                        .extra("saved_cycles", Json::Int(saved as i64)),
                );
                emit(
                    format!(
                        "{:>10}@p={sp:<4}  {rate:>7.0e}  {label:>6}  {faults:>8}  {p50:>12}  {p95:>12}  {p99:>12}  {resumed:>7}  {}",
                        format!("{factor}x"),
                        if rows_fp == base_rows_fp { "= base" } else { "DIFFER" },
                    ),
                    &mut out,
                );
            }
        }
    }

    assert!(
        total_resumed > 0,
        "checkpoints must resume slices somewhere in the sweep"
    );

    // ---- Sharded arm: hedging off vs on ----------------------------
    let shard_db = Arc::new(TpchDb::at_scale(SHARD_SF));
    let pool = DevicePool::default_pool();
    let gammas = pool_gammas(&pool);
    let queries = [QueryId::Q6, QueryId::Q14, QueryId::Q5, QueryId::Q9];
    let shard = ShardPlan::range(2);
    emit(
        format!(
            "\nsharded pool ({}), SF {SHARD_SF}, {} shards, hedge threshold {HEDGE_THRESHOLD}x modeled:",
            pool.key(),
            shard.shards
        ),
        &mut out,
    );
    emit(
        format!(
            "{:>14}  {:>7}  {:>6}  {:>12}  {:>12}  {:>12}  {:>7}  {:>5}  {:>7}",
            "slowdown", "rate", "hedge", "p50", "p95", "p99", "hedges", "wins", "rows"
        ),
        &mut out,
    );

    // Placements (and fault-free oracles) once per query.
    let placed: Vec<_> = queries
        .iter()
        .map(|&q| {
            let plan = plan_for(&shard_db, q);
            let placement = place_query(&pool, &gammas, &shard_db, &plan, None);
            let clean = try_run_query_sharded(
                &pool,
                &shard_db,
                &plan,
                ExecMode::Gpl,
                &shard,
                &placement.assignment,
                &ExecLimits::default(),
                None,
                None,
                None,
                None,
            )
            .expect("fault-free sharded run");
            (q, plan, placement, clean)
        })
        .collect();

    let mut shard_p95: Vec<(bool, u64)> = Vec::new();
    for &(sp, factor) in &SEVERITIES {
        for &rate in &RATES {
            let spec = chaos_spec(rate, sp, factor);
            for hedged in [false, true] {
                let mut samples = Vec::new();
                let (mut hedges, mut wins) = (0u64, 0u64);
                let mut rows_ok = true;
                for (q, plan, placement, clean) in &placed {
                    let hedge = hedge_plan(placement, HEDGE_THRESHOLD);
                    for seed_ix in 0..SHARD_SEEDS {
                        let faults = ShardFaults {
                            spec: spec.clone(),
                            seed: CHAOS_SEED ^ (seed_ix.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        };
                        let run = try_run_query_sharded(
                            &pool,
                            &shard_db,
                            plan,
                            ExecMode::Gpl,
                            &shard,
                            &placement.assignment,
                            &ExecLimits::default(),
                            Some(&RecoveryPolicy::default()),
                            Some(&faults),
                            hedged.then_some(&hedge),
                            None,
                        )
                        .unwrap_or_else(|e| {
                            panic!("{} chaos run failed (hedge {hedged}): {e}", q.name())
                        });
                        rows_ok &= run.output.rows == clean.output.rows
                            && run.fingerprint() == clean.fingerprint();
                        assert!(
                            rows_ok,
                            "{} rows diverged under chaos (hedge {hedged}, seed {seed_ix})",
                            q.name()
                        );
                        samples.push(run.cycles);
                        hedges += run.recovery.hedges;
                        wins += run.recovery.hedge_wins;
                    }
                }
                let (p50, p95, p99) = (
                    pct(&samples, 50.0),
                    pct(&samples, 95.0),
                    pct(&samples, 99.0),
                );
                if (sp, factor) == SEVERITIES[SEVERITIES.len() - 1]
                    && rate == RATES[RATES.len() - 1]
                {
                    shard_p95.push((hedged, p95));
                }
                let label = if hedged { "on" } else { "off" };
                opts.artifact.run(
                    RunEntry::new(
                        format!("shard-sv{factor}x-r{rate:.0e}-hedge-{label}"),
                        "gpl",
                    )
                    .cycles(p95)
                    .rows(samples.len() as u64)
                    .extra("p50", Json::Int(p50 as i64))
                    .extra("p99", Json::Int(p99 as i64))
                    .extra("hedges", Json::Int(hedges as i64))
                    .extra("hedge_wins", Json::Int(wins as i64)),
                );
                emit(
                    format!(
                        "{:>10}@p={sp:<4}  {rate:>7.0e}  {label:>6}  {p50:>12}  {p95:>12}  {p99:>12}  {hedges:>7}  {wins:>5}  {}",
                        format!("{factor}x"),
                        if rows_ok { "= base" } else { "DIFFER" },
                    ),
                    &mut out,
                );
                if hedged && (sp, factor) == SEVERITIES[SEVERITIES.len() - 1] {
                    assert!(
                        hedges > 0,
                        "heavy slowdowns must trip the hedge (severity {factor}x)"
                    );
                }
            }
        }
    }

    // The acceptance gate. Serve: pooled over the whole sweep, the
    // per-query inflation tail must improve under checkpoints — retry
    // re-runs a faulted stage from row 0, resume from the last verified
    // slice. Shard: at the heaviest grid point, hedging must not
    // regress the absolute p95 (the query mix per point is fixed, so
    // absolute cycles compare like for like).
    let tail = |v: &[(bool, u64)], defended: bool| {
        v.iter()
            .find(|(d, _)| *d == defended)
            .map(|&(_, p)| p)
            .expect("both arms measured")
    };
    let (s_off_95, s_on_95) = (pct(&retry_inflation, 95.0), pct(&ckpt_inflation, 95.0));
    let (s_off_99, s_on_99) = (pct(&retry_inflation, 99.0), pct(&ckpt_inflation, 99.0));
    let (h_off, h_on) = (tail(&shard_p95, false), tail(&shard_p95, true));
    emit(
        format!(
            "\nsweep-wide serve inflation (permille of fault-free twin): \
             retry-only p50 {} / p95 {s_off_95} / p99 {s_off_99}, \
             checkpointed p50 {} / p95 {s_on_95} / p99 {s_on_99}",
            pct(&retry_inflation, 50.0),
            pct(&ckpt_inflation, 50.0),
        ),
        &mut out,
    );
    emit(
        format!(
            "tails: serve p95 {:+.1}% / p99 {:+.1}% under checkpoints; \
             shard heaviest-point p95 {h_off} -> {h_on} ({:+.1}%) under hedging",
            (s_on_95 as f64 / s_off_95 as f64 - 1.0) * 100.0,
            (s_on_99 as f64 / s_off_99 as f64 - 1.0) * 100.0,
            (h_on as f64 / h_off as f64 - 1.0) * 100.0,
        ),
        &mut out,
    );
    opts.artifact.fact(
        "tail_gate",
        Json::obj(vec![
            ("serve_retry_p95_permille", Json::Int(s_off_95 as i64)),
            ("serve_ckpt_p95_permille", Json::Int(s_on_95 as i64)),
            ("serve_retry_p99_permille", Json::Int(s_off_99 as i64)),
            ("serve_ckpt_p99_permille", Json::Int(s_on_99 as i64)),
            ("shard_hedge_off_p95", Json::Int(h_off as i64)),
            ("shard_hedge_on_p95", Json::Int(h_on as i64)),
        ]),
    );

    // The report goes to disk before the gate so a failing sweep still
    // leaves its evidence behind.
    std::fs::create_dir_all("target/obs").expect("create target/obs");
    std::fs::write(OUT_PATH, &out).unwrap_or_else(|e| panic!("{OUT_PATH}: {e}"));
    println!("\nreport written to {OUT_PATH} (deterministic: byte-identical per seed)");

    assert!(
        s_on_95 <= s_off_95,
        "checkpoint resume must not regress the p95 inflation tail ({s_on_95} > {s_off_95})"
    );
    assert!(
        s_on_99 <= s_off_99,
        "checkpoint resume must not regress the p99 inflation tail ({s_on_99} > {s_off_99})"
    );
    assert!(
        h_on <= h_off,
        "hedging must not regress the p95 tail ({h_on} > {h_off})"
    );
}
