//! Intermediate-result materialization experiments (Figures 3, 4, 17, 18)
//! — Observation 1 and its resolution by channels.

use super::Opts;
use crate::artifact::{mode_key, row_fingerprint, RunEntry};
use gpl_core::plan::q14_plan;
use gpl_core::{plan_for, run_query, ExecMode, QueryConfig, QueryPlan};
use gpl_obs::Json;
use gpl_tpch::{q14_window_for_selectivity, QueryId, TpchDb};

/// Selectivity grid used by the Q14 studies (the paper sweeps 1%–100%;
/// the default predicate is ~16.4% selective on their data).
pub const SELECTIVITIES: [f64; 7] = [0.01, 0.05, 0.1, 0.164, 0.25, 0.5, 1.0];

/// Bytes of input the query actually reads: the loaded columns of every
/// stage's driving relation (the normalization basis of Figures 3/18).
pub fn input_bytes(db: &TpchDb, plan: &QueryPlan) -> u64 {
    plan.stages
        .iter()
        .map(|s| {
            let t = db.table(&s.driver);
            s.loads
                .iter()
                .map(|c| t.col(c).data_type().width())
                .sum::<u64>()
                * t.rows() as u64
        })
        .sum()
}

fn q14_sweep(opts: &Opts, mode: ExecMode) -> Vec<(f64, f64, u64)> {
    let sf = opts.sf_or(0.1);
    let mut ctx = opts.ctx(sf);
    opts.artifact.sf(sf);
    let mut out = Vec::new();
    for &sel in &SELECTIVITIES {
        let params = q14_window_for_selectivity(&ctx.db, sel);
        let plan = q14_plan(&ctx.db, params);
        let cfg = QueryConfig::default_for(&opts.device, &plan);
        let input = input_bytes(&ctx.db, &plan);
        ctx.sim.clear_cache();
        let run = run_query(&mut ctx, &plan, mode, &cfg);
        let norm = run.profile.intermediate_footprint() as f64 / input as f64;
        out.push((sel, norm, run.cycles));
    }
    opts.artifact.fact(
        "q14_selectivity_sweep",
        Json::Arr(
            out.iter()
                .map(|(sel, norm, cycles)| {
                    Json::obj(vec![
                        ("selectivity", Json::Num(*sel)),
                        ("intermediate_over_input", Json::Num(*norm)),
                        ("cycles", Json::Int(*cycles as i64)),
                    ])
                })
                .collect(),
        ),
    );
    out
}

/// Figure 3: size of intermediate results in KBE with varying
/// selectivity (Q14), normalized to the query's input size.
pub fn fig3(opts: &Opts) {
    println!(
        "KBE Q14 (SF {}): materialized intermediates / input size",
        opts.sf_or(0.1)
    );
    println!("{:>12} {:>22}", "selectivity", "intermediate / input");
    for (sel, norm, _) in q14_sweep(opts, ExecMode::Kbe) {
        println!("{:>11.0}% {:>22.2}", sel * 100.0, norm);
    }
    println!(
        "expected shape: grows with selectivity; the paper reports intermediates exceeding \
         the input beyond ~75% selectivity (1.38x at 100%)."
    );
}

/// Figure 4: communication cost in KBE with varying selectivity (Q14):
/// the share of execution attributable to memory stalls.
pub fn fig4(opts: &Opts) {
    let sf = opts.sf_or(0.1);
    let mut ctx = opts.ctx(sf);
    opts.artifact.sf(sf);
    println!("KBE Q14 (SF {sf}): execution-time split, memory vs other");
    println!("{:>12} {:>10} {:>10}", "selectivity", "Mem_cost", "Others");
    let mut points = Vec::new();
    for &sel in &SELECTIVITIES {
        let params = q14_window_for_selectivity(&ctx.db, sel);
        let plan = q14_plan(&ctx.db, params);
        let cfg = QueryConfig::default_for(&opts.device, &plan);
        ctx.sim.clear_cache();
        let run = run_query(&mut ctx, &plan, ExecMode::Kbe, &cfg);
        let mem = run.profile.total_mem_cycles() as f64;
        let other =
            run.profile.total_compute_cycles() as f64 + run.profile.total_delay_cycles() as f64;
        let total = (mem + other).max(1.0);
        points.push(Json::obj(vec![
            ("selectivity", Json::Num(sel)),
            ("mem_share", Json::Num(mem / total)),
        ]));
        println!(
            "{:>11.0}% {:>9.1}% {:>9.1}%",
            sel * 100.0,
            mem / total * 100.0,
            other / total * 100.0
        );
    }
    opts.artifact.fact("q14_mem_share", Json::Arr(points));
    println!("expected shape: the memory share grows with selectivity (up to ~1/3 or more).");
}

/// Figure 17: intermediates materialized in global memory by GPL,
/// normalized to KBE, for the whole workload.
pub fn fig17(opts: &Opts) {
    let sf = opts.sf_or(0.1);
    let mut ctx = opts.ctx(sf);
    opts.artifact.sf(sf);
    println!(
        "materialized intermediates, GPL / KBE (SF {sf}, {})",
        opts.device.name
    );
    println!(
        "{:>5} {:>12} {:>12} {:>10}",
        "query", "KBE bytes", "GPL bytes", "GPL/KBE"
    );
    for q in QueryId::evaluation_set() {
        let plan = plan_for(&ctx.db, q);
        let cfg = QueryConfig::default_for(&opts.device, &plan);
        ctx.sim.clear_cache();
        let kbe = run_query(&mut ctx, &plan, ExecMode::Kbe, &cfg);
        ctx.sim.clear_cache();
        let gpl = run_query(&mut ctx, &plan, ExecMode::Gpl, &cfg);
        let (kb, gb) = (
            kbe.profile.intermediate_footprint(),
            gpl.profile.intermediate_footprint(),
        );
        for (mode, run, bytes) in [(ExecMode::Kbe, &kbe, kb), (ExecMode::Gpl, &gpl, gb)] {
            opts.artifact.run(
                RunEntry::new(q.name(), mode_key(mode))
                    .cycles(run.cycles)
                    .rows(run.output.rows.len() as u64)
                    .fingerprint(row_fingerprint(run))
                    .extra("intermediate_bytes", Json::Int(bytes as i64)),
            );
        }
        println!(
            "{:>5} {:>12} {:>12} {:>9.0}%",
            q.name(),
            kb,
            gb,
            gb as f64 / kb as f64 * 100.0
        );
    }
    println!("paper: GPL materializes only 15–33% of what KBE does.");
}

/// Figure 18: GPL Q14 intermediates vs selectivity, normalized to the
/// input size (compare with Figure 3's KBE curve).
pub fn fig18(opts: &Opts) {
    println!(
        "GPL Q14 (SF {}): materialized intermediates / input size",
        opts.sf_or(0.1)
    );
    println!("{:>12} {:>22}", "selectivity", "intermediate / input");
    for (sel, norm, _) in q14_sweep(opts, ExecMode::Gpl) {
        println!("{:>11.0}% {:>22.3}", sel * 100.0, norm);
    }
    println!(
        "expected shape: far below the KBE curve at every selectivity (paper: 0.22x vs \
         1.38x of the input at 100%) — only blocking kernels materialize."
    );
}
