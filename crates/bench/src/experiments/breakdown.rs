//! Execution-time breakdown (Figure 20 / Figure 29): where the cycles go
//! under KBE vs GPL — the communication-cost claim of Section 5.3.2.

use super::Opts;
use crate::artifact::{mode_key, row_fingerprint, RunEntry};
use gpl_core::{plan_for, run_query, ExecMode, QueryConfig, QueryRun};
use gpl_obs::Json;
use gpl_tpch::QueryId;

fn breakdown(run: &QueryRun) -> (f64, f64, f64, f64) {
    let c = run.profile.total_compute_cycles() as f64;
    let m = run.profile.total_mem_cycles() as f64;
    let dc = run.profile.total_dc_cycles() as f64;
    let delay = run.profile.total_delay_cycles() as f64;
    let total = (c + m + dc + delay).max(1.0);
    (
        c / total * 100.0,
        m / total * 100.0,
        dc / total * 100.0,
        delay / total * 100.0,
    )
}

fn run_breakdown(opts: &Opts) {
    let sf = opts.sf_or(0.2);
    let mut ctx = opts.ctx(sf);
    opts.artifact.sf(sf);
    let plan = plan_for(&ctx.db, QueryId::Q8);
    let cfg = QueryConfig::default_for(&opts.device, &plan);
    println!(
        "Q8 execution-time breakdown (SF {sf}, {})",
        opts.device.name
    );
    println!(
        "{:>12} {:>9} {:>9} {:>9} {:>9} {:>16}",
        "mode", "compute", "memory", "DC_cost", "delay", "communication*"
    );
    for (name, mode) in [("KBE", ExecMode::Kbe), ("GPL", ExecMode::Gpl)] {
        ctx.sim.clear_cache();
        let run = run_query(&mut ctx, &plan, mode, &cfg);
        let (c, m, dc, delay) = breakdown(&run);
        // Section 5.3.2: in GPL, memory + DC + delay is "communication";
        // in KBE it is the memory cost.
        let comm = if matches!(mode, ExecMode::Gpl) {
            m + dc + delay
        } else {
            m
        };
        opts.artifact.run(
            RunEntry::new("Q8", mode_key(mode))
                .cycles(run.cycles)
                .rows(run.output.rows.len() as u64)
                .fingerprint(row_fingerprint(&run))
                .extra("compute_pct", Json::Num(c))
                .extra("mem_pct", Json::Num(m))
                .extra("dc_pct", Json::Num(dc))
                .extra("delay_pct", Json::Num(delay))
                .extra("communication_pct", Json::Num(comm)),
        );
        println!("{name:>12} {c:>8.1}% {m:>8.1}% {dc:>8.1}% {delay:>8.1}% {comm:>15.1}%");
    }
    println!(
        "* communication = Mem (KBE) vs Mem + DC + Delay (GPL). paper: up to 34% of KBE \
         time vs at most ~14% in GPL; note this simulator's KBE is heavily memory-bound, \
         so its absolute shares differ (see EXPERIMENTS.md)."
    );
}

/// Figure 20: AMD breakdown.
pub fn fig20(opts: &Opts) {
    run_breakdown(opts);
}

/// Figure 29: NVIDIA breakdown.
pub fn fig29(opts: &Opts) {
    let mut o = opts.clone();
    o.device = gpl_sim::nvidia_k40();
    run_breakdown(&o);
}
