//! `repro bench`: aggregate every `target/obs/BENCH_*.json` artifact
//! into one trajectory table, sourced *only* from the artifacts (no
//! re-execution) — so the table is byte-identical for identical
//! artifact sets and can be diffed across commits.
//!
//! Subcommands (positional, after `bench`):
//!
//! * `repro bench` — print the trajectory table.
//! * `repro bench baseline <path>` — pin the current per-run cycle
//!   counts (plus a tolerance) to a baseline file.
//! * `repro bench check <path>` — re-read the artifacts and exit
//!   nonzero if any baselined run's cycles drifted beyond the pinned
//!   tolerance, or disappeared. New runs are reported, not failed.

use super::Opts;
use crate::artifact::{validate, OUT_DIR, SCHEMA};
use gpl_obs::{parse, Json};
use std::collections::BTreeMap;

pub const DESCRIPTION: &str = "aggregate BENCH_*.json artifacts into one trajectory table";

/// Baseline schema tag.
const BASELINE_SCHEMA: &str = "gpl-bench-baseline-v1";
/// Default relative cycle tolerance pinned into new baselines.
const DEFAULT_TOLERANCE: f64 = 0.10;

/// One run row, keyed `experiment/label/mode`.
struct Row {
    experiment: String,
    label: String,
    mode: String,
    cycles: u64,
    rows: u64,
    fingerprint: String,
    drift_max: Option<f64>,
}

impl Row {
    fn key(&self) -> String {
        format!("{}/{}/{}", self.experiment, self.label, self.mode)
    }
}

/// Load, parse-check and validate every `BENCH_*.json`, in name order.
/// Returns `(artifact file names, run rows)`; exits on a malformed file
/// — a bad artifact is a bug in the emitting experiment.
fn load() -> (Vec<String>, Vec<Row>) {
    let mut names: Vec<String> = match std::fs::read_dir(OUT_DIR) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(_) => Vec::new(),
    };
    names.sort();
    let mut rows = Vec::new();
    for name in &names {
        let path = format!("{OUT_DIR}/{name}");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        let j = parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: does not parse: {e}");
            std::process::exit(1);
        });
        if let Err(e) = validate(&j) {
            eprintln!("{path}: not a {SCHEMA} artifact: {e}");
            std::process::exit(1);
        }
        let experiment = j.get("experiment").unwrap().as_str().unwrap().to_string();
        for r in j.get("runs").unwrap().as_arr().unwrap() {
            rows.push(Row {
                experiment: experiment.clone(),
                label: r.get("label").unwrap().as_str().unwrap().to_string(),
                mode: r.get("mode").unwrap().as_str().unwrap().to_string(),
                cycles: r.get("cycles").unwrap().as_f64().unwrap() as u64,
                rows: r.get("rows").unwrap().as_f64().unwrap() as u64,
                fingerprint: r.get("fingerprint").unwrap().as_str().unwrap().to_string(),
                drift_max: r
                    .get("drift")
                    .and_then(|d| d.get("max_cycles_err"))
                    .and_then(|v| v.as_f64()),
            });
        }
    }
    (names, rows)
}

pub fn bench(opts: &Opts) {
    match opts.extra.first().map(String::as_str) {
        None => table(),
        Some("baseline") => baseline(opts.extra.get(1).map(String::as_str)),
        Some("check") => check(opts.extra.get(1).map(String::as_str)),
        Some(other) => {
            eprintln!("unknown bench subcommand {other:?}; use: bench [baseline|check] <path>");
            std::process::exit(2);
        }
    }
}

fn table() {
    let (names, rows) = load();
    if names.is_empty() {
        println!("no BENCH_*.json artifacts under {OUT_DIR}/; run some experiments first");
        return;
    }
    println!(
        "trajectory across {} artifact(s), {} run(s):",
        names.len(),
        rows.len()
    );
    println!(
        "\n{:<12} {:<12} {:<14} {:>14} {:>8} {:<20} {:>10}",
        "experiment", "label", "mode", "cycles", "rows", "fingerprint", "drift max"
    );
    for r in &rows {
        let drift = r
            .drift_max
            .map(|d| format!("{d:.4}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<12} {:<12} {:<14} {:>14} {:>8} {:<20} {:>10}",
            r.experiment, r.label, r.mode, r.cycles, r.rows, r.fingerprint, drift
        );
    }
    println!("\nsourced only from {OUT_DIR}/BENCH_*.json (no re-execution):");
    for n in &names {
        println!("  {OUT_DIR}/{n}");
    }
}

fn baseline(path: Option<&str>) {
    let Some(path) = path else {
        eprintln!("usage: repro bench baseline <path>");
        std::process::exit(2);
    };
    let (_, rows) = load();
    if rows.is_empty() {
        eprintln!("no runs to baseline; run some experiments first");
        std::process::exit(1);
    }
    let entries: Vec<(String, Json)> = rows
        .iter()
        .map(|r| (r.key(), Json::Int(r.cycles as i64)))
        .collect();
    let j = Json::obj(vec![
        ("schema", Json::Str(BASELINE_SCHEMA.to_string())),
        ("tolerance", Json::Num(DEFAULT_TOLERANCE)),
        ("entries", Json::Obj(entries)),
    ]);
    std::fs::write(path, j.to_pretty_string()).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    println!(
        "pinned {} run(s) at tolerance {DEFAULT_TOLERANCE} into {path}",
        rows.len()
    );
}

fn check(path: Option<&str>) {
    let Some(path) = path else {
        eprintln!("usage: repro bench check <path>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let base = parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: does not parse: {e}");
        std::process::exit(1);
    });
    match base.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == BASELINE_SCHEMA => {}
        other => {
            eprintln!("{path}: not a {BASELINE_SCHEMA} file (schema {other:?})");
            std::process::exit(1);
        }
    }
    let tolerance = base
        .get("tolerance")
        .and_then(|t| t.as_f64())
        .unwrap_or(DEFAULT_TOLERANCE);
    let Some(Json::Obj(entries)) = base.get("entries") else {
        eprintln!("{path}: missing entries object");
        std::process::exit(1);
    };

    let (_, rows) = load();
    let current: BTreeMap<String, u64> = rows.iter().map(|r| (r.key(), r.cycles)).collect();
    let mut failures = 0usize;
    let mut checked = 0usize;
    for (key, v) in entries {
        let pinned = v.as_f64().unwrap_or(0.0);
        match current.get(key) {
            None => {
                eprintln!("REGRESSION {key}: baselined run missing from artifacts");
                failures += 1;
            }
            Some(&cycles) => {
                checked += 1;
                let err = if pinned > 0.0 {
                    (cycles as f64 - pinned).abs() / pinned
                } else {
                    0.0
                };
                if err > tolerance {
                    eprintln!(
                        "REGRESSION {key}: cycles {cycles} vs pinned {pinned:.0} \
                         (rel {err:.4} > tolerance {tolerance})"
                    );
                    failures += 1;
                }
            }
        }
    }
    let new: Vec<&String> = current
        .keys()
        .filter(|k| !entries.iter().any(|(bk, _)| bk == *k))
        .collect();
    if !new.is_empty() {
        println!("{} run(s) not in the baseline (not failed):", new.len());
        for k in new {
            println!("  {k}");
        }
    }
    if failures > 0 {
        eprintln!("bench check FAILED: {failures} regression(s) across {checked} pinned run(s)");
        std::process::exit(1);
    }
    println!("bench check passed: {checked} pinned run(s) within tolerance {tolerance}");
}
