//! `repro pipeline [<query>...]`: cross-segment pipelining, modeled vs
//! observed. For each query (default: the two acceptance workloads, Q9
//! and Q14) the command plans once, runs the overlap predicate
//! ([`gpl_model::attach_overlap`]) over the paper-default configuration,
//! then executes the plan twice — sequential GPL and GPL (pipelined) —
//! asserting the outputs bit-identical before reporting anything.
//!
//! The printed table and the `target/obs/BENCH_pipeline.json` artifact
//! (standard [`crate::artifact::BenchArtifact`] schema, written by the
//! dispatcher) carry, per fused pair: the chosen slice count K, the
//! model's sequential and pipelined cycle estimates, and the
//! simulator's observed build/probe spans with the measured overlap
//! window. All numbers are simulated cycles, so two runs of the same
//! command are byte-identical — the verify gate diffs them.

use super::Opts;
use crate::artifact::{row_fingerprint, RunEntry};
use gpl_core::{plan_for, run_query, ExecMode, QueryConfig, QueryRun};
use gpl_model::{attach_overlap, build_models, estimate_stats, OverlapDecision};
use gpl_obs::Json;
use gpl_tpch::{QueryId, TpchDb};

fn query_by_name(name: &str) -> Option<QueryId> {
    QueryId::all()
        .into_iter()
        .find(|q| q.name().eq_ignore_ascii_case(name))
}

/// The simulated span `[first dispatch, last complete]` of one stage's
/// kernels in a finished run.
fn stage_span(run: &QueryRun, stage: usize) -> (u64, u64) {
    let ks = &run.per_stage[stage].kernels;
    let start = ks.iter().map(|k| k.first_dispatch).min().unwrap_or(0);
    let end = ks.iter().map(|k| k.last_complete).max().unwrap_or(0);
    (start, end)
}

/// Observed overlap between a fused pair's segments: how many cycles the
/// build stage's span and the probe stage's span share.
fn observed_overlap(run: &QueryRun, d: &OverlapDecision) -> u64 {
    let (b0, b1) = stage_span(run, d.build_stage);
    let (p0, p1) = stage_span(run, d.probe_stage);
    b1.min(p1).saturating_sub(b0.max(p0))
}

pub fn pipeline(opts: &Opts) {
    let names: Vec<String> = if opts.extra.is_empty() {
        vec!["q9".into(), "q14".into()]
    } else {
        opts.extra.clone()
    };
    let queries: Vec<QueryId> = names
        .iter()
        .map(|n| {
            query_by_name(n).unwrap_or_else(|| {
                eprintln!("unknown query {n:?}; run `repro profile` for the list");
                std::process::exit(2);
            })
        })
        .collect();
    let sf = opts.sf_or(0.01);
    let gamma = opts.gamma();
    opts.artifact.sf(sf);

    println!(
        "cross-segment pipelining, GPL vs GPL (pipelined) ({}, SF {sf})",
        opts.device.name
    );
    println!(
        "\n{:<6} {:>5} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12}",
        "query", "K", "model seq", "model pipe", "obs seq", "obs pipe", "obs Δ", "overlap cyc"
    );

    for query in queries {
        let db = TpchDb::at_scale(sf);
        let plan = plan_for(&db, query);
        let stats = estimate_stats(&db, &plan);
        let models = build_models(&db, &plan, &stats, &opts.device);
        let base = QueryConfig::default_for(&opts.device, &plan);
        let mut piped = base.clone();
        let decisions = attach_overlap(&opts.device, &gamma, &plan, &models, &mut piped);

        let mut ctx = opts.ctx(sf);
        let seq = run_query(&mut ctx, &plan, ExecMode::Gpl, &base);
        let mut ctx = opts.ctx(sf);
        let pipe = run_query(&mut ctx, &plan, ExecMode::GplPipelined, &piped);
        assert_eq!(
            seq.output,
            pipe.output,
            "{}: pipelined output must be bit-identical to sequential",
            query.name()
        );
        let fp = row_fingerprint(&seq);
        assert_eq!(fp, row_fingerprint(&pipe));

        let model_seq: f64 = decisions.iter().map(|d| d.sequential).sum();
        let model_pipe: f64 = decisions.iter().map(|d| d.pipelined).sum();
        let k_text = decisions
            .iter()
            .map(|d| d.slices.to_string())
            .collect::<Vec<_>>()
            .join("+");
        let delta = 100.0 * (seq.cycles as f64 - pipe.cycles as f64) / seq.cycles as f64;
        let overlap: u64 = decisions
            .iter()
            .filter(|d| d.slices > 0)
            .map(|d| observed_overlap(&pipe, d))
            .sum();
        println!(
            "{:<6} {:>5} {:>12.0} {:>12.0} {:>12} {:>12} {:>8.1}% {:>12}",
            query.name(),
            k_text,
            model_seq,
            model_pipe,
            seq.cycles,
            pipe.cycles,
            delta,
            overlap
        );

        let pair_entries: Vec<Json> = decisions
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("build_stage", Json::Int(d.build_stage as i64)),
                    ("probe_stage", Json::Int(d.probe_stage as i64)),
                    ("slices", Json::Int(i64::from(d.slices))),
                    ("model_sequential_cycles", Json::Num(d.sequential)),
                    ("model_pipelined_cycles", Json::Num(d.pipelined)),
                    (
                        "observed_overlap_cycles",
                        Json::Int(observed_overlap(&pipe, d) as i64),
                    ),
                ])
            })
            .collect();
        opts.artifact.run(
            RunEntry::new(query.name(), "gpl")
                .cycles(seq.cycles)
                .rows(seq.output.rows.len() as u64)
                .fingerprint(fp),
        );
        opts.artifact.run(
            RunEntry::new(query.name(), "gpl-pipelined")
                .cycles(pipe.cycles)
                .rows(pipe.output.rows.len() as u64)
                .fingerprint(fp)
                .extra("pairs", Json::Arr(pair_entries)),
        );
    }

    println!("\noutputs asserted bit-identical between modes before reporting;");
    println!("per-pair overlap details land in the BENCH_pipeline.json artifact.");
}
