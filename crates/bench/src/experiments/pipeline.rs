//! `repro pipeline [<query>...]`: cross-segment pipelining, modeled vs
//! observed. For each query (default: the two acceptance workloads, Q9
//! and Q14) the command plans once, runs the overlap predicate
//! ([`gpl_model::attach_overlap`]) over the paper-default configuration,
//! then executes the plan twice — sequential GPL and GPL (pipelined) —
//! asserting the outputs bit-identical before reporting anything.
//!
//! The printed table and the `target/obs/BENCH_pipeline.json` artifact
//! carry, per fused pair: the chosen slice count K, the model's
//! sequential and pipelined cycle estimates, and the simulator's
//! observed build/probe spans with the measured overlap window. All
//! numbers are simulated cycles, so two runs of the same command are
//! byte-identical — the verify gate diffs them.

use super::Opts;
use gpl_core::{plan_for, run_query, ExecMode, QueryConfig, QueryRun};
use gpl_model::{attach_overlap, build_models, estimate_stats, OverlapDecision};
use gpl_obs::{parse, Json};
use gpl_tpch::{QueryId, TpchDb};

const OUT_DIR: &str = "target/obs";

fn query_by_name(name: &str) -> Option<QueryId> {
    QueryId::all()
        .into_iter()
        .find(|q| q.name().eq_ignore_ascii_case(name))
}

/// FNV-1a over the result rows — the same digest shape the serve report
/// uses, so artifacts can be compared across tools.
fn row_fingerprint(run: &QueryRun) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(&(run.output.rows.len() as u64).to_le_bytes());
    for row in &run.output.rows {
        for v in row {
            mix(&v.to_le_bytes());
        }
    }
    h
}

/// The simulated span `[first dispatch, last complete]` of one stage's
/// kernels in a finished run.
fn stage_span(run: &QueryRun, stage: usize) -> (u64, u64) {
    let ks = &run.per_stage[stage].kernels;
    let start = ks.iter().map(|k| k.first_dispatch).min().unwrap_or(0);
    let end = ks.iter().map(|k| k.last_complete).max().unwrap_or(0);
    (start, end)
}

/// Observed overlap between a fused pair's segments: how many cycles the
/// build stage's span and the probe stage's span share.
fn observed_overlap(run: &QueryRun, d: &OverlapDecision) -> u64 {
    let (b0, b1) = stage_span(run, d.build_stage);
    let (p0, p1) = stage_span(run, d.probe_stage);
    b1.min(p1).saturating_sub(b0.max(p0))
}

fn write_checked(path: &str, text: &str) {
    parse(text).unwrap_or_else(|e| panic!("{path}: export does not re-parse: {e}"));
    std::fs::write(path, text).unwrap_or_else(|e| panic!("{path}: {e}"));
}

pub fn pipeline(opts: &Opts) {
    let names: Vec<String> = if opts.extra.is_empty() {
        vec!["q9".into(), "q14".into()]
    } else {
        opts.extra.clone()
    };
    let queries: Vec<QueryId> = names
        .iter()
        .map(|n| {
            query_by_name(n).unwrap_or_else(|| {
                eprintln!("unknown query {n:?}; run `repro profile` for the list");
                std::process::exit(2);
            })
        })
        .collect();
    let sf = opts.sf_or(0.01);
    let gamma = opts.gamma();
    std::fs::create_dir_all(OUT_DIR).expect("create target/obs");

    println!(
        "cross-segment pipelining, GPL vs GPL (pipelined) ({}, SF {sf})",
        opts.device.name
    );
    println!(
        "\n{:<6} {:>5} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12}",
        "query", "K", "model seq", "model pipe", "obs seq", "obs pipe", "obs Δ", "overlap cyc"
    );

    let mut query_entries: Vec<Json> = Vec::new();
    for query in queries {
        let db = TpchDb::at_scale(sf);
        let plan = plan_for(&db, query);
        let stats = estimate_stats(&db, &plan);
        let models = build_models(&db, &plan, &stats, &opts.device);
        let base = QueryConfig::default_for(&opts.device, &plan);
        let mut piped = base.clone();
        let decisions = attach_overlap(&opts.device, &gamma, &plan, &models, &mut piped);

        let mut ctx = opts.ctx(sf);
        let seq = run_query(&mut ctx, &plan, ExecMode::Gpl, &base);
        let mut ctx = opts.ctx(sf);
        let pipe = run_query(&mut ctx, &plan, ExecMode::GplPipelined, &piped);
        assert_eq!(
            seq.output,
            pipe.output,
            "{}: pipelined output must be bit-identical to sequential",
            query.name()
        );
        let fp = row_fingerprint(&seq);
        assert_eq!(fp, row_fingerprint(&pipe));

        let model_seq: f64 = decisions.iter().map(|d| d.sequential).sum();
        let model_pipe: f64 = decisions.iter().map(|d| d.pipelined).sum();
        let k_text = decisions
            .iter()
            .map(|d| d.slices.to_string())
            .collect::<Vec<_>>()
            .join("+");
        let delta = 100.0 * (seq.cycles as f64 - pipe.cycles as f64) / seq.cycles as f64;
        let overlap: u64 = decisions
            .iter()
            .filter(|d| d.slices > 0)
            .map(|d| observed_overlap(&pipe, d))
            .sum();
        println!(
            "{:<6} {:>5} {:>12.0} {:>12.0} {:>12} {:>12} {:>8.1}% {:>12}",
            query.name(),
            k_text,
            model_seq,
            model_pipe,
            seq.cycles,
            pipe.cycles,
            delta,
            overlap
        );

        let pair_entries: Vec<Json> = decisions
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("build_stage", Json::Int(d.build_stage as i64)),
                    ("probe_stage", Json::Int(d.probe_stage as i64)),
                    ("slices", Json::Int(i64::from(d.slices))),
                    ("model_sequential_cycles", Json::Num(d.sequential)),
                    ("model_pipelined_cycles", Json::Num(d.pipelined)),
                    (
                        "observed_overlap_cycles",
                        Json::Int(observed_overlap(&pipe, d) as i64),
                    ),
                ])
            })
            .collect();
        query_entries.push(Json::obj(vec![
            ("query", Json::Str(query.name().to_string())),
            ("sequential_cycles", Json::Int(seq.cycles as i64)),
            ("pipelined_cycles", Json::Int(pipe.cycles as i64)),
            ("row_fingerprint", Json::Str(format!("{fp:#018x}"))),
            ("rows", Json::Int(seq.output.rows.len() as i64)),
            ("pairs", Json::Arr(pair_entries)),
        ]));
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("pipeline".to_string())),
        ("device", Json::Str(opts.device.name.clone())),
        ("sf", Json::Num(sf)),
        ("queries", Json::Arr(query_entries)),
    ]);
    let path = format!("{OUT_DIR}/BENCH_pipeline.json");
    write_checked(&path, &report.to_pretty_string());
    println!("\nwrote {path} (re-parsed with the in-tree JSON parser)");
    println!("outputs asserted bit-identical between modes before reporting.");
}
