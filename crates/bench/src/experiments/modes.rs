//! Execution-mode comparisons: the headline results (Figures 7, 16, 21,
//! 22, 27).

use super::Opts;
use crate::artifact::{mode_key, row_fingerprint, RunEntry};
use gpl_core::{plan_for, run_query, ExecContext, ExecMode, QueryConfig};
use gpl_model::{optimize, GammaTable};
use gpl_obs::Json;
use gpl_ocelot::OcelotContext;
use gpl_tpch::QueryId;

/// Model-optimized configuration for a plan (what GPL actually runs with
/// in the headline comparisons, as in the paper).
fn optimized_config(
    opts: &Opts,
    gamma: &GammaTable,
    ctx: &ExecContext,
    plan: &gpl_core::QueryPlan,
) -> QueryConfig {
    optimize(&opts.device, gamma, &ctx.db, plan).config
}

/// Figure 7: the KBE and GPL plans side by side.
pub fn fig7(opts: &Opts) {
    let ctx = opts.ctx(0.002);
    let l1 = gpl_core::plan::listing1_plan(gpl_tpch::queries::literals::listing1_cutoff());
    println!("{}", l1.explain());
    for q in QueryId::evaluation_set() {
        println!("{}", plan_for(&ctx.db, q).explain());
    }
    opts.artifact.fact(
        "plans_printed",
        Json::Int(1 + QueryId::evaluation_set().len() as i64),
    );
}

/// Figures 9/10 made visible: trace Q8 under KBE and GPL and render the
/// per-kernel occupancy Gantt charts (an extra view, not a paper figure —
/// the paper draws the channel mechanism; this shows its effect).
pub fn timeline(opts: &Opts) {
    let sf = opts.sf_or(0.05);
    let mut ctx = opts.ctx(sf);
    let plan = plan_for(&ctx.db, QueryId::Q8);
    let cfg = QueryConfig::default_for(&opts.device, &plan);
    opts.artifact.sf(sf);
    for mode in [ExecMode::Kbe, ExecMode::Gpl] {
        ctx.sim.clear_cache();
        ctx.sim.enable_trace();
        let run = run_query(&mut ctx, &plan, mode, &cfg);
        opts.artifact.run(
            RunEntry::new("Q8", mode_key(mode))
                .cycles(run.cycles)
                .rows(run.output.rows.len() as u64)
                .fingerprint(row_fingerprint(&run)),
        );
        let spans = ctx.sim.take_trace();
        println!(
            "Q8 under {} ({}, SF {sf}) — {} cycles, kernel overlap {:.0}%",
            mode.name(),
            opts.device.name,
            run.cycles,
            100.0 * gpl_sim::overlap_fraction(&spans)
        );
        println!(
            "{}",
            gpl_sim::render_timeline(&spans, 96, opts.device.num_cus)
        );
    }
    println!(
        "shades ' . : = # @' = idle..all-CUs-busy; KBE kernels run strictly one \
         after another, GPL's probe rows shade the same cycles as the scan feeding them."
    );
}

/// Figure 16 (AMD) / Figure 27 (NVIDIA): KBE vs GPL (w/o CE) vs GPL.
pub fn fig16(opts: &Opts) {
    mode_comparison(opts);
}

pub fn fig27(opts: &Opts) {
    let mut o = opts.clone();
    o.device = gpl_sim::nvidia_k40();
    mode_comparison(&o);
}

fn mode_comparison(opts: &Opts) {
    let sf = opts.sf_or(0.2);
    let gamma = opts.gamma();
    let mut ctx = opts.ctx(sf);
    opts.artifact.sf(sf);
    println!(
        "query runtimes (SF {sf}, {}), normalized to KBE",
        opts.device.name
    );
    println!(
        "{:>5} {:>12} {:>14} {:>12}   {:>11} {:>8}",
        "query", "KBE cyc", "GPL(w/o CE)", "GPL cyc", "w/oCE/KBE", "GPL/KBE"
    );
    let mut best = f64::MAX;
    for q in QueryId::evaluation_set() {
        let plan = plan_for(&ctx.db, q);
        let default_cfg = QueryConfig::default_for(&opts.device, &plan);
        let gpl_cfg = optimized_config(opts, &gamma, &ctx, &plan);
        ctx.sim.clear_cache();
        let kbe = run_query(&mut ctx, &plan, ExecMode::Kbe, &default_cfg);
        ctx.sim.clear_cache();
        let noce = run_query(&mut ctx, &plan, ExecMode::GplNoCe, &gpl_cfg);
        ctx.sim.clear_cache();
        let gpl = run_query(&mut ctx, &plan, ExecMode::Gpl, &gpl_cfg);
        for (mode, run) in [
            (ExecMode::Kbe, &kbe),
            (ExecMode::GplNoCe, &noce),
            (ExecMode::Gpl, &gpl),
        ] {
            opts.artifact.run(
                RunEntry::new(q.name(), mode_key(mode))
                    .cycles(run.cycles)
                    .rows(run.output.rows.len() as u64)
                    .fingerprint(row_fingerprint(run)),
            );
        }
        let r_noce = noce.cycles as f64 / kbe.cycles as f64;
        let r_gpl = gpl.cycles as f64 / kbe.cycles as f64;
        best = best.min(r_gpl);
        println!(
            "{:>5} {:>12} {:>14} {:>12}   {:>10.2}x {:>7.2}x",
            q.name(),
            kbe.cycles,
            noce.cycles,
            gpl.cycles,
            r_noce,
            r_gpl
        );
    }
    println!(
        "best GPL improvement over KBE: {:.0}% (paper: up to 48% on AMD, ~50% on NVIDIA; \
         GPL w/o CE degrades vs KBE — tiling alone only adds launch and materialization \
         overhead, amplified at this reduced scale)",
        (1.0 - best) * 100.0
    );
}

/// Figure 21: runtime vs data size. The paper sweeps SF 0.1–10; this
/// reproduction's default sweep is scaled down 20x (see DESIGN.md).
pub fn fig21(opts: &Opts) {
    // The paper sweeps SF 0.1..10; the equivalent regimes on the scaled
    // data sit lower — KBE's intermediates cross the 4 MB cache around
    // SF 0.05. An explicit --sf collapses the sweep to that one point
    // (like fig22), which keeps `repro all --sf <tiny>` cheap.
    let sweep: Vec<f64> = match opts.sf {
        Some(sf) => vec![sf],
        None => vec![0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
    };
    let gamma = opts.gamma();
    println!("runtime vs scale factor ({}), Q8 and Q14", opts.device.name);
    println!(
        "{:>6} {:>14} {:>14} {:>9}   {:>14} {:>14} {:>9}",
        "SF", "Q8 KBE ms", "Q8 GPL ms", "speedup", "Q14 KBE ms", "Q14 GPL ms", "speedup"
    );
    for &sf in &sweep {
        let mut ctx = opts.ctx(sf);
        let mut cells = Vec::new();
        for q in [QueryId::Q8, QueryId::Q14] {
            let plan = plan_for(&ctx.db, q);
            let kbe_cfg = QueryConfig::default_for(&opts.device, &plan);
            let gpl_cfg = optimized_config(opts, &gamma, &ctx, &plan);
            ctx.sim.clear_cache();
            let kbe = run_query(&mut ctx, &plan, ExecMode::Kbe, &kbe_cfg);
            ctx.sim.clear_cache();
            let gpl = run_query(&mut ctx, &plan, ExecMode::Gpl, &gpl_cfg);
            for (mode, run) in [(ExecMode::Kbe, &kbe), (ExecMode::Gpl, &gpl)] {
                opts.artifact.run(
                    RunEntry::new(format!("{}@{sf}", q.name()), mode_key(mode))
                        .cycles(run.cycles)
                        .rows(run.output.rows.len() as u64)
                        .fingerprint(row_fingerprint(run)),
                );
            }
            cells.push((kbe.ms(&opts.device), gpl.ms(&opts.device)));
        }
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>8.2}x   {:>14.2} {:>14.2} {:>8.2}x",
            sf,
            cells[0].0,
            cells[0].1,
            cells[0].0 / cells[0].1,
            cells[1].0,
            cells[1].1,
            cells[1].0 / cells[1].1
        );
    }
    println!(
        "GPL wins decisively at every size. The paper additionally reports the margin \
         growing with data size; at this reduced scale both engines converge on simulated \
         DRAM bandwidth past SF ~0.1 and the ratio compresses toward ~2x instead — see \
         EXPERIMENTS.md, Figure 21."
    );
}

/// Figure 22: GPL vs Ocelot. The paper's SF 1 / 5 / 10 map to the scaled
/// defaults 0.05 / 0.25 / 0.5.
pub fn fig22(opts: &Opts) {
    let sweep = match opts.sf {
        Some(sf) => vec![sf],
        None => vec![0.05, 0.25, 0.5],
    };
    let gamma = opts.gamma();
    println!(
        "GPL vs Ocelot ({}); Ocelot runs warm (hash-table cache primed)",
        opts.device.name
    );
    println!(
        "{:>6} {:>5} {:>12} {:>12} {:>14}",
        "SF", "query", "GPL cyc", "Ocelot cyc", "GPL/Ocelot"
    );
    for &sf in &sweep {
        let mut ctx = opts.ctx(sf);
        let mut oc = OcelotContext::new();
        for q in QueryId::evaluation_set() {
            let plan = plan_for(&ctx.db, q);
            let gpl_cfg = optimized_config(opts, &gamma, &ctx, &plan);
            ctx.sim.clear_cache();
            let gpl = run_query(&mut ctx, &plan, ExecMode::Gpl, &gpl_cfg);
            // Warm Ocelot: first run builds the hash tables, second reuses.
            ctx.sim.clear_cache();
            let _cold = gpl_ocelot::run_query(&mut ctx, &mut oc, &plan);
            ctx.sim.clear_cache();
            let warm = gpl_ocelot::run_query(&mut ctx, &mut oc, &plan);
            assert_eq!(gpl.output, warm.output, "{} outputs diverged", q.name());
            opts.artifact.run(
                RunEntry::new(format!("{}@{sf}", q.name()), "gpl")
                    .cycles(gpl.cycles)
                    .rows(gpl.output.rows.len() as u64)
                    .fingerprint(row_fingerprint(&gpl)),
            );
            opts.artifact.run(
                RunEntry::new(format!("{}@{sf}", q.name()), "ocelot-warm")
                    .cycles(warm.cycles)
                    .rows(warm.output.rows.len() as u64)
                    .fingerprint(row_fingerprint(&warm)),
            );
            println!(
                "{:>6} {:>5} {:>12} {:>12} {:>13.2}x",
                sf,
                q.name(),
                gpl.cycles,
                warm.cycles,
                gpl.cycles as f64 / warm.cycles as f64
            );
        }
    }
    println!(
        "expected shape: comparable on most queries, GPL clearly ahead on the highly \
         selective Q8/Q9 where Ocelot's bitmap pipeline keeps scanning full columns \
         (Section 5.5)."
    );
}
