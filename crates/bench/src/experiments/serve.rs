//! `repro serve` — the multi-query serving experiment.
//!
//! Drives the `gpl-serve` scheduler over the TPC-H corpus (the 10
//! compilable corpus queries cycled to the requested workload size) at
//! worker counts 1/2/4/8 and reports, per count:
//!
//! * *simulated* throughput and queue latency — each worker owns its
//!   own simulated GPU, so a fleet of `w` workers is `w` devices; the
//!   deterministic schedule (requests packed onto the earliest-available
//!   device) yields machine-independent queries/sec and p50/p95 queue
//!   waits at the device clock rate;
//! * *wall-clock* throughput and queue latency on the host, which scale
//!   with however many cores the machine actually has;
//! * the batch's result fingerprint, which must be identical at every
//!   worker count (the scheduler's determinism contract).
//!
//! A second phase replays the same workload against a warm server to
//! show the plan cache collapsing repeat planning cost.

use super::Opts;
use crate::artifact::RunEntry;
use gpl_obs::Json;
use gpl_serve::{QueryRequest, ServeConfig, Server};
use gpl_sql::sql_for;
use gpl_tpch::{QueryId, TpchDb};
use std::sync::Arc;
use std::time::Duration;

/// The corpus workload: `n` requests cycling the compilable corpus
/// queries in `QueryId` order, all under the full GPL mode.
fn workload(n: usize) -> Vec<QueryRequest> {
    let sqls: Vec<&'static str> = QueryId::all().into_iter().filter_map(sql_for).collect();
    (0..n)
        .map(|i| QueryRequest::new(i as u64, sqls[i % sqls.len()], gpl_core::ExecMode::Gpl))
        .collect()
}

fn avg_ms(walls: &[Duration]) -> f64 {
    if walls.is_empty() {
        return 0.0;
    }
    walls.iter().map(|w| w.as_secs_f64() * 1e3).sum::<f64>() / walls.len() as f64
}

pub fn serve(opts: &Opts) {
    let sf = opts.sf_or(0.01);
    let n = opts.queries.unwrap_or(22);
    let sweep: Vec<usize> = match opts.workers {
        Some(w) => vec![w.max(1)],
        None => vec![1, 2, 4, 8],
    };
    println!(
        "multi-query serving: {n} requests over the corpus, SF {sf}, device {}",
        opts.device.name
    );
    println!("(simulated q/s treats each worker as one simulated GPU; wall q/s is host-bound)\n");

    let db = Arc::new(TpchDb::at_scale(sf));
    let gamma = Arc::new(opts.gamma());
    opts.artifact.sf(sf);

    println!(
        "{:>7}  {:>10}  {:>12}  {:>12}  {:>9}  {:>18}",
        "workers", "sim q/s", "sim p50 ms", "sim p95 ms", "wall q/s", "fingerprint"
    );
    let mut sim_qps = Vec::new();
    let mut fingerprints = Vec::new();
    for &w in &sweep {
        // A fresh server per count: every sweep point starts cold, so
        // the comparison across counts is apples to apples.
        let srv = Server::start(
            ServeConfig {
                workers: w,
                plan_cache_capacity: 64,
                record_traces: false,
                ..ServeConfig::default()
            },
            opts.device.clone(),
            db.clone(),
            gamma.clone(),
        );
        let report = srv.run_batch_report(workload(n));
        assert_eq!(report.err_count(), 0, "corpus queries must all succeed");
        let makespan_s = opts.device.cycles_to_ms(report.simulated_makespan()) / 1e3;
        let qps = n as f64 / makespan_s.max(1e-12);
        sim_qps.push(qps);
        fingerprints.push(report.fingerprint());
        // Only simulated quantities go into the artifact — wall-clock
        // throughput varies per host and would break byte-reproducibility.
        opts.artifact.run(
            RunEntry::new(format!("serve-{w}w"), "gpl")
                .cycles(report.simulated_makespan())
                .rows(report.ok_count() as u64)
                .fingerprint(report.fingerprint())
                .extra(
                    "queue_p50_cycles",
                    Json::Int(report.simulated_queue_pct(50.0) as i64),
                )
                .extra(
                    "queue_p95_cycles",
                    Json::Int(report.simulated_queue_pct(95.0) as i64),
                ),
        );
        println!(
            "{:>7}  {:>10.1}  {:>12.2}  {:>12.2}  {:>9.1}  {:#018x}",
            w,
            qps,
            opts.device.cycles_to_ms(report.simulated_queue_pct(50.0)),
            opts.device.cycles_to_ms(report.simulated_queue_pct(95.0)),
            report.queries_per_sec(),
            report.fingerprint(),
        );
    }
    assert!(
        fingerprints.windows(2).all(|p| p[0] == p[1]),
        "result fingerprint changed with worker count"
    );
    if sweep.len() > 1 {
        let speedup = sim_qps.last().unwrap() / sim_qps[0].max(1e-12);
        println!(
            "\nsimulated throughput {}x{} vs 1 worker: {speedup:.2}x (identical fingerprints)",
            sweep.last().unwrap(),
            if speedup >= 3.0 { "" } else { " (below 3x)" }
        );
    }

    // Plan-cache effect: replay the identical workload against a warm
    // 4-worker server and compare per-query planning wall time.
    let srv = Server::start(
        ServeConfig {
            workers: sweep.last().copied().unwrap_or(4).min(4),
            plan_cache_capacity: 64,
            record_traces: false,
            ..ServeConfig::default()
        },
        opts.device.clone(),
        db.clone(),
        gamma.clone(),
    );
    let cold = srv.run_batch_report(workload(n));
    let warm = srv.run_batch_report(workload(n));
    let cold_miss_ms = avg_ms(
        &cold
            .responses
            .iter()
            .filter(|r| !r.plan_cache_hit)
            .map(|r| r.plan_wall)
            .collect::<Vec<_>>(),
    );
    let warm_hit_ms = avg_ms(
        &warm
            .responses
            .iter()
            .filter(|r| r.plan_cache_hit)
            .map(|r| r.plan_wall)
            .collect::<Vec<_>>(),
    );
    let (hits, misses) = srv.plan_cache().stats();
    opts.artifact.fact(
        "plan_cache",
        Json::obj(vec![
            ("hits", Json::Int(hits as i64)),
            ("misses", Json::Int(misses as i64)),
        ]),
    );
    let ratio = cold_miss_ms / warm_hit_ms.max(1e-6);
    println!("\nplan cache across a repeat of the workload ({hits} hits / {misses} misses):");
    println!("  cold plan (miss): {cold_miss_ms:.3} ms avg");
    println!("  warm plan (hit):  {warm_hit_ms:.3} ms avg");
    println!("  speedup: {ratio:.0}x");
    assert_eq!(
        cold.fingerprint(),
        warm.fingerprint(),
        "a warm cache must not change results"
    );
}
