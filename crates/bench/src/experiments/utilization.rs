//! Resource-utilization experiments (Figures 5, 19, 28) — Observation 2
//! and its resolution by concurrent kernel execution.

use super::Opts;
use gpl_core::{plan_for, run_query, ExecMode, QueryConfig};
use gpl_obs::Json;
use gpl_tpch::QueryId;

fn util_point(q: QueryId, mode: &str, v: f64, m: f64, o: f64) -> Json {
    Json::obj(vec![
        ("query", Json::Str(q.name().to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("valu_busy", Json::Num(v / 100.0)),
        ("mem_unit_busy", Json::Num(m / 100.0)),
        ("occupancy", Json::Num(o / 100.0)),
    ])
}

fn utilization_row(
    ctx: &mut gpl_core::ExecContext,
    opts: &Opts,
    q: QueryId,
    mode: ExecMode,
) -> (f64, f64, f64) {
    let plan = plan_for(&ctx.db, q);
    let cfg = QueryConfig::default_for(&opts.device, &plan);
    ctx.sim.clear_cache();
    let run = run_query(ctx, &plan, mode, &cfg);
    (
        run.profile.valu_busy() * 100.0,
        run.profile.mem_unit_busy() * 100.0,
        run.profile.occupancy() * 100.0,
    )
}

/// Figure 5: VALUBusy / MemUnitBusy under KBE for the five queries.
pub fn fig5(opts: &Opts) {
    let sf = opts.sf_or(0.1);
    let mut ctx = opts.ctx(sf);
    println!("KBE resource utilization (SF {sf}, {})", opts.device.name);
    println!(
        "{:>5} {:>10} {:>12} {:>11}",
        "query", "VALUBusy", "MemUnitBusy", "occupancy"
    );
    opts.artifact.sf(sf);
    let mut avg = (0.0, 0.0);
    let mut points = Vec::new();
    for q in QueryId::evaluation_set() {
        let (v, m, o) = utilization_row(&mut ctx, opts, q, ExecMode::Kbe);
        avg.0 += v / 5.0;
        avg.1 += m / 5.0;
        points.push(util_point(q, "kbe", v, m, o));
        println!("{:>5} {:>9.1}% {:>11.1}% {:>10.1}%", q.name(), v, m, o);
    }
    opts.artifact.fact("utilization", Json::Arr(points));
    println!("{:>5} {:>9.1}% {:>11.1}%", "avg", avg.0, avg.1);
    println!(
        "expected shape: one kernel at a time leaves at least one unit under-used; \
         utilization varies strongly across kernels/queries (Observation 2)."
    );
}

/// Figure 19: utilization under GPL vs KBE for the five queries.
pub fn fig19(opts: &Opts) {
    let sf = opts.sf_or(0.1);
    let mut ctx = opts.ctx(sf);
    println!(
        "resource utilization, KBE vs GPL (SF {sf}, {})",
        opts.device.name
    );
    println!(
        "{:>5} {:>14} {:>14}   {:>14} {:>14}",
        "query", "KBE VALUBusy", "KBE MemUnit", "GPL VALUBusy", "GPL MemUnit"
    );
    opts.artifact.sf(sf);
    let mut points = Vec::new();
    for q in QueryId::evaluation_set() {
        let (kv, km, ko) = utilization_row(&mut ctx, opts, q, ExecMode::Kbe);
        let (gv, gm, go) = utilization_row(&mut ctx, opts, q, ExecMode::Gpl);
        points.push(util_point(q, "kbe", kv, km, ko));
        points.push(util_point(q, "gpl", gv, gm, go));
        println!(
            "{:>5} {:>13.1}% {:>13.1}%   {:>13.1}% {:>13.1}%",
            q.name(),
            kv,
            km,
            gv,
            gm
        );
    }
    opts.artifact.fact("utilization", Json::Arr(points));
    println!("expected shape: GPL sustains steadier, higher utilization than KBE.");
}

/// Figure 28: utilization for Q8 on the NVIDIA profile.
pub fn fig28(opts: &Opts) {
    let mut o = opts.clone();
    o.device = gpl_sim::nvidia_k40();
    let sf = o.sf_or(0.1);
    let mut ctx = o.ctx(sf);
    opts.artifact.sf(sf);
    println!("Q8 resource utilization (SF {sf}, {})", o.device.name);
    let mut points = Vec::new();
    for (name, key, mode) in [("KBE", "kbe", ExecMode::Kbe), ("GPL", "gpl", ExecMode::Gpl)] {
        let (v, m, occ) = utilization_row(&mut ctx, &o, QueryId::Q8, mode);
        points.push(util_point(QueryId::Q8, key, v, m, occ));
        println!("{name:>4}: VALUBusy {v:>5.1}%  MemUnitBusy {m:>5.1}%  occupancy {occ:>5.1}%");
    }
    opts.artifact.fact("utilization", Json::Arr(points));
}
