//! Resource-utilization experiments (Figures 5, 19, 28) — Observation 2
//! and its resolution by concurrent kernel execution.

use super::Opts;
use gpl_core::{plan_for, run_query, ExecMode, QueryConfig};
use gpl_tpch::QueryId;

fn utilization_row(
    ctx: &mut gpl_core::ExecContext,
    opts: &Opts,
    q: QueryId,
    mode: ExecMode,
) -> (f64, f64, f64) {
    let plan = plan_for(&ctx.db, q);
    let cfg = QueryConfig::default_for(&opts.device, &plan);
    ctx.sim.clear_cache();
    let run = run_query(ctx, &plan, mode, &cfg);
    (
        run.profile.valu_busy() * 100.0,
        run.profile.mem_unit_busy() * 100.0,
        run.profile.occupancy() * 100.0,
    )
}

/// Figure 5: VALUBusy / MemUnitBusy under KBE for the five queries.
pub fn fig5(opts: &Opts) {
    let sf = opts.sf_or(0.1);
    let mut ctx = opts.ctx(sf);
    println!("KBE resource utilization (SF {sf}, {})", opts.device.name);
    println!(
        "{:>5} {:>10} {:>12} {:>11}",
        "query", "VALUBusy", "MemUnitBusy", "occupancy"
    );
    let mut avg = (0.0, 0.0);
    for q in QueryId::evaluation_set() {
        let (v, m, o) = utilization_row(&mut ctx, opts, q, ExecMode::Kbe);
        avg.0 += v / 5.0;
        avg.1 += m / 5.0;
        println!("{:>5} {:>9.1}% {:>11.1}% {:>10.1}%", q.name(), v, m, o);
    }
    println!("{:>5} {:>9.1}% {:>11.1}%", "avg", avg.0, avg.1);
    println!(
        "expected shape: one kernel at a time leaves at least one unit under-used; \
         utilization varies strongly across kernels/queries (Observation 2)."
    );
}

/// Figure 19: utilization under GPL vs KBE for the five queries.
pub fn fig19(opts: &Opts) {
    let sf = opts.sf_or(0.1);
    let mut ctx = opts.ctx(sf);
    println!(
        "resource utilization, KBE vs GPL (SF {sf}, {})",
        opts.device.name
    );
    println!(
        "{:>5} {:>14} {:>14}   {:>14} {:>14}",
        "query", "KBE VALUBusy", "KBE MemUnit", "GPL VALUBusy", "GPL MemUnit"
    );
    for q in QueryId::evaluation_set() {
        let (kv, km, _) = utilization_row(&mut ctx, opts, q, ExecMode::Kbe);
        let (gv, gm, _) = utilization_row(&mut ctx, opts, q, ExecMode::Gpl);
        println!(
            "{:>5} {:>13.1}% {:>13.1}%   {:>13.1}% {:>13.1}%",
            q.name(),
            kv,
            km,
            gv,
            gm
        );
    }
    println!("expected shape: GPL sustains steadier, higher utilization than KBE.");
}

/// Figure 28: utilization for Q8 on the NVIDIA profile.
pub fn fig28(opts: &Opts) {
    let mut o = opts.clone();
    o.device = gpl_sim::nvidia_k40();
    let sf = o.sf_or(0.1);
    let mut ctx = o.ctx(sf);
    println!("Q8 resource utilization (SF {sf}, {})", o.device.name);
    for (name, mode) in [("KBE", ExecMode::Kbe), ("GPL", ExecMode::Gpl)] {
        let (v, m, occ) = utilization_row(&mut ctx, &o, QueryId::Q8, mode);
        println!("{name:>4}: VALUBusy {v:>5.1}%  MemUnitBusy {m:>5.1}%  occupancy {occ:>5.1}%");
    }
}
