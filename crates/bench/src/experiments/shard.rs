//! `repro shard [<query>...]` — multi-device sharding with
//! heterogeneous CPU/GPU placement, modeled vs observed.
//!
//! For each query (default: the acceptance workloads Q9 and Q14) the
//! experiment runs the placement pass over the default device pool
//! (AMD + NVIDIA GPUs plus the host-CPU profile) twice — free
//! (heterogeneous) and restricted to the GPU class — then executes
//! both placements across the pool and every homogeneous single-device
//! baseline, asserting all outputs bit-identical before reporting:
//!
//! * a per-query table of **modeled** and **observed** simulated
//!   cycles: heterogeneous vs GPU-only placement vs each homogeneous
//!   device;
//! * per-`(device, kernel)` drift summaries joining each pool device's
//!   merged shard profiles against that device's model predictions;
//! * a **shard-count scaling** sweep on the first query (1, 2, 4
//!   shards under the heterogeneous placement).
//!
//! Everything printed is deterministic (simulated cycles only), so two
//! runs of the same command are byte-identical — `scripts/verify.sh`
//! diffs them. The `target/obs/BENCH_shard.json` artifact carries the
//! same numbers for the baseline pinning in `scripts/bench_baseline.json`.

use super::Opts;
use crate::artifact::RunEntry;
use gpl_core::shard::{
    try_run_query_sharded, DeviceKind, DevicePool, ShardAssignment, ShardPlan, ShardedRun,
};
use gpl_core::{plan_for, ExecLimits, ExecMode, QueryPlan};
use gpl_model::{
    build_models, drift_for_device_run, estimate_stats, place_query, GammaTable, Placement,
};
use gpl_obs::{DriftSummary, Json};
use gpl_tpch::{QueryId, TpchDb};
use std::sync::Arc;

/// One calibrated Γ table per pool device, cached on disk under
/// `target/` like [`Opts::gamma`] does for the CLI device.
pub(crate) fn pool_gammas(pool: &DevicePool) -> Vec<GammaTable> {
    pool.devices()
        .iter()
        .map(|d| {
            let file = format!(
                "target/gamma-{}.txt",
                d.spec.name.to_lowercase().replace(' ', "-")
            );
            GammaTable::load_or_calibrate(&d.spec, std::path::Path::new(&file))
        })
        .collect()
}

fn query_by_name(name: &str) -> Option<QueryId> {
    QueryId::all()
        .into_iter()
        .find(|q| q.name().eq_ignore_ascii_case(name))
}

fn run(
    pool: &DevicePool,
    db: &Arc<TpchDb>,
    plan: &QueryPlan,
    shard: &ShardPlan,
    assignment: &ShardAssignment,
) -> ShardedRun {
    try_run_query_sharded(
        pool,
        db,
        plan,
        ExecMode::Gpl,
        shard,
        assignment,
        &ExecLimits::default(),
        None,
        None,
        None,
        None,
    )
    .expect("fault-free sharded run")
}

/// The placement restricted to one anchor device for every stage (the
/// homogeneous baseline), reusing the tuned per-device configs.
fn pin_to(placement: &Placement, device: usize, stages: usize) -> ShardAssignment {
    ShardAssignment {
        stage_device: vec![device; stages],
        configs: placement.assignment.configs.clone(),
    }
}

pub fn shard(opts: &Opts) {
    let names: Vec<String> = if opts.extra.is_empty() {
        vec!["q5".into(), "q7".into(), "q9".into(), "q14".into()]
    } else {
        opts.extra.clone()
    };
    let queries: Vec<QueryId> = names
        .iter()
        .map(|n| {
            query_by_name(n).unwrap_or_else(|| {
                eprintln!("unknown query {n:?}; run `repro profile` for the list");
                std::process::exit(2);
            })
        })
        .collect();
    let sf = opts.sf_or(0.002);
    let db = Arc::new(TpchDb::at_scale(sf));
    let pool = DevicePool::default_pool();
    let gammas = pool_gammas(&pool);
    opts.artifact.sf(sf);

    println!(
        "multi-device sharding & heterogeneous placement (pool {}, SF {sf})",
        pool.key()
    );

    let mut hetero_won = false;
    for query in &queries {
        let plan = plan_for(&db, *query);
        let stages = plan.stages.len();
        let hetero = place_query(&pool, &gammas, &db, &plan, None);
        let gpu_only = place_query(&pool, &gammas, &db, &plan, Some(DeviceKind::Gpu));
        let single = ShardPlan::single();

        let het_run = run(&pool, &db, &plan, &single, &hetero.assignment);
        let gpu_run = run(&pool, &db, &plan, &single, &gpu_only.assignment);
        assert_eq!(
            het_run.output,
            gpu_run.output,
            "{}: placement must never change rows",
            query.name()
        );

        println!(
            "\n{}: placement {} (hetero) vs {} (gpu-only)",
            query.name(),
            hetero.assignment.key(),
            gpu_only.assignment.key()
        );
        println!(
            "{:<28} {:>14} {:>14}",
            "placement", "modeled cyc", "observed cyc"
        );
        println!(
            "{:<28} {:>14.0} {:>14}   stages {:?}",
            "heterogeneous", hetero.modeled_total, het_run.cycles, het_run.stage_cycles
        );
        println!(
            "{:<28} {:>14.0} {:>14}   stages {:?}",
            "gpu-only", gpu_only.modeled_total, gpu_run.cycles, gpu_run.stage_cycles
        );

        // Homogeneous single-GPU baselines: every stage pinned to one
        // GPU, that device's tuned config, outputs asserted identical.
        let mut best_gpu_observed = gpu_run.cycles;
        let mut best_gpu_modeled = gpu_only.modeled_total;
        for (d, dev) in pool.devices().iter().enumerate() {
            if dev.kind != DeviceKind::Gpu {
                continue;
            }
            let homo = run(&pool, &db, &plan, &single, &pin_to(&hetero, d, stages));
            assert_eq!(homo.output, het_run.output);
            println!(
                "{:<28} {:>14.0} {:>14}",
                format!("all @ {}", dev.spec.name),
                hetero.device_totals[d],
                homo.cycles
            );
            best_gpu_observed = best_gpu_observed.min(homo.cycles);
            best_gpu_modeled = best_gpu_modeled.min(hetero.device_totals[d]);
        }
        let wins = hetero.modeled_total < best_gpu_modeled && het_run.cycles < best_gpu_observed;
        hetero_won |= wins;
        println!(
            "heterogeneous {} the best all-GPU placement (modeled {:.0} vs {:.0}, observed {} vs {})",
            if wins { "beats" } else { "does not beat" },
            hetero.modeled_total,
            best_gpu_modeled,
            het_run.cycles,
            best_gpu_observed
        );

        // Per-(device, kernel) drift: each pool device's merged shard
        // profiles joined against that device's own model predictions.
        let stats = estimate_stats(&db, &plan);
        let mut reports = Vec::new();
        let mut drift_entries = Vec::new();
        for (d, dev) in pool.devices().iter().enumerate() {
            let dr = &het_run.per_device[d];
            if dr.cycles == 0 {
                continue; // never participated: nothing observed to join
            }
            let models = build_models(&db, &plan, &stats, &dev.spec);
            let report = drift_for_device_run(
                &dev.spec,
                &gammas[d],
                &models,
                &hetero.assignment.configs[d],
                &dr.per_stage,
                query.name(),
                &dev.spec.name,
                "gpl",
            );
            let s = report.summary();
            println!(
                "drift {:<22} kernels {:>2}  mean cycle err {:.4}  worst {}",
                dev.spec.name, s.kernels, s.mean_cycles_err, s.worst_kernel
            );
            drift_entries.push((d, s));
            reports.push(report);
        }

        let fp = het_run.fingerprint();
        opts.artifact.run(
            RunEntry::new(format!("{}-hetero", query.name()), "gpl")
                .cycles(het_run.cycles)
                .rows(het_run.output.rows.len() as u64)
                .fingerprint(fp)
                .drift(DriftSummary::from_reports(&reports))
                .extra("modeled_cycles", Json::Num(hetero.modeled_total))
                .extra("placement", Json::Str(hetero.assignment.key()))
                .extra(
                    "device_drift",
                    Json::Arr(
                        drift_entries
                            .iter()
                            .map(|(d, s)| {
                                Json::obj(vec![
                                    ("device", Json::Str(pool.devices()[*d].spec.name.clone())),
                                    ("summary", s.to_json()),
                                ])
                            })
                            .collect(),
                    ),
                ),
        );
        opts.artifact.run(
            RunEntry::new(format!("{}-gpu-best", query.name()), "gpl")
                .cycles(best_gpu_observed)
                .rows(gpu_run.output.rows.len() as u64)
                .fingerprint(fp)
                .extra("modeled_cycles", Json::Num(best_gpu_modeled)),
        );
    }
    // The acceptance fact — asserted on the default workload at the
    // default scale; a caller pinning one query or another SF still
    // gets the comparison printed without tripping the gate.
    if opts.extra.is_empty() && opts.sf.is_none() {
        assert!(
            hetero_won,
            "expected at least one query where the heterogeneous placement wins in both planes"
        );
    }

    // Shard-count scaling (on Q9 when present, else the first query):
    // the driving relation splits over the pool, so wall cycles (max
    // over devices per stage) drop as shards spread across devices of
    // the anchor class.
    let query = queries
        .iter()
        .copied()
        .find(|q| q.name().eq_ignore_ascii_case("q9"))
        .unwrap_or(queries[0]);
    let plan = plan_for(&db, query);
    let hetero = place_query(&pool, &gammas, &db, &plan, None);
    println!(
        "\n{} shard-count scaling (heterogeneous placement):",
        query.name()
    );
    println!("{:>7} {:>14} {:>10}", "shards", "observed cyc", "vs 1");
    let mut by_shards = Vec::new();
    for shards in [1usize, 2, 4] {
        let r = run(
            &pool,
            &db,
            &plan,
            &ShardPlan::range(shards),
            &hetero.assignment,
        );
        let base = by_shards.first().map(|&(_, c)| c).unwrap_or(r.cycles);
        println!(
            "{:>7} {:>14} {:>9.2}x",
            shards,
            r.cycles,
            base as f64 / r.cycles as f64
        );
        opts.artifact.run(
            RunEntry::new(format!("{}-shards-{shards}", query.name()), "gpl")
                .cycles(r.cycles)
                .rows(r.output.rows.len() as u64)
                .fingerprint(r.fingerprint()),
        );
        by_shards.push((shards, r.cycles));
    }
    let one = by_shards[0].1;
    let best = by_shards[1..].iter().map(|&(_, c)| c).min().unwrap();
    assert!(
        best < one,
        "{}: some multi-shard count must beat 1 shard in observed cycles ({best} vs {one})",
        query.name()
    );
    // The stronger 1→4 monotone-win claim only holds on the default
    // workload at the default scale (at tiny SFs the per-shard launch
    // overhead outweighs the spread past 2 shards).
    if opts.extra.is_empty() && opts.sf.is_none() {
        let four = by_shards.last().unwrap().1;
        assert!(
            four < one,
            "{}: 4 shards must beat 1 shard in observed cycles ({four} vs {one})",
            query.name()
        );
    }

    println!("\noutputs asserted bit-identical across placements and shard counts;");
    println!("per-device drift details land in the BENCH_shard.json artifact.");
}
