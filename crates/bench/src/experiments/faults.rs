//! `repro faults` — fault injection and the recovery stack, end to end.
//!
//! Drives the serving layer over the corpus workload on one worker
//! (one simulated device — the deterministic schedule) while sweeping
//! fault rate × recovery policy, and reports per point:
//!
//! * **goodput** — successfully answered queries per simulated second
//!   (faults and retries inflate the makespan, so goodput degrades
//!   smoothly instead of falling off a cliff);
//! * **fallback rate** — mode degradations (incl. the disarmed
//!   last-resort KBE run) per query;
//! * **p95 latency** — 95th-percentile simulated completion latency;
//! * the **rows fingerprint**, which must equal the fault-free
//!   baseline's whenever recovery is enabled: faults cost cycles, never
//!   rows.
//!
//! Two demo sections exercise the rest of the stack: a circuit-breaker
//! run (no recovery, high fault rate — the breaker trips, rejects, and
//! half-opens on the device-cycle timer) and a load-shedding run (queue
//! bound 8, so a 24-query batch sheds 16 deterministic rejections).
//!
//! Everything printed is also written to `target/obs/faults-report.txt`;
//! the report contains only deterministic facts (no wall-clock), so the
//! file is byte-identical across runs — `scripts/verify.sh` re-runs it
//! five times and compares hashes.

use super::Opts;
use crate::artifact::RunEntry;
use gpl_core::RecoveryPolicy;
use gpl_obs::Json;
use gpl_serve::{BreakerConfig, FaultConfig, QueryRequest, ServeConfig, ServeError, Server};
use gpl_sim::FaultSpec;
use gpl_sql::sql_for;
use gpl_tpch::{QueryId, TpchDb};
use std::sync::Arc;

const OUT_PATH: &str = "target/obs/faults-report.txt";
const FAULT_SEED: u64 = 42;

/// The corpus workload: `n` requests cycling the compilable corpus
/// queries, all under full GPL (the mode with the longest fallback
/// ladder).
fn workload(n: usize) -> Vec<QueryRequest> {
    let sqls: Vec<&'static str> = QueryId::all().into_iter().filter_map(sql_for).collect();
    (0..n)
        .map(|i| QueryRequest::new(i as u64, sqls[i % sqls.len()], gpl_core::ExecMode::Gpl))
        .collect()
}

fn server(
    opts: &Opts,
    db: &Arc<TpchDb>,
    gamma: &Arc<gpl_model::GammaTable>,
    cfg: ServeConfig,
) -> Server {
    Server::start(cfg, opts.device.clone(), db.clone(), gamma.clone())
}

pub fn faults(opts: &Opts) {
    let sf = opts.sf_or(0.01);
    let n = opts.queries.unwrap_or(24);
    let db = Arc::new(TpchDb::at_scale(sf));
    let gamma = Arc::new(opts.gamma());
    let mut out = String::new();
    let emit = |line: String, out: &mut String| {
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    };

    emit(
        format!(
            "fault injection & recovery: {n} corpus requests, 1 worker, SF {sf}, device {}, seed {FAULT_SEED}",
            opts.device.name
        ),
        &mut out,
    );
    emit(
        "(goodput in queries per simulated second; latency in simulated ms; rows fp excludes cycles)\n".into(),
        &mut out,
    );

    // Fault-free baseline: the rows fingerprint every recovered run
    // must reproduce, and the goodput to degrade from.
    let base = server(
        opts,
        &db,
        &gamma,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .run_batch_report(workload(n));
    assert_eq!(base.err_count(), 0, "baseline must be clean");
    let base_rows_fp = base.rows_fingerprint();
    let makespan_s = |cycles: u64| opts.device.cycles_to_ms(cycles) / 1e3;
    opts.artifact.sf(sf);
    opts.artifact.run(
        RunEntry::new("baseline", "gpl")
            .cycles(base.simulated_makespan())
            .rows(n as u64)
            .fingerprint(base_rows_fp)
            .extra(
                "p95_latency_cycles",
                Json::Int(base.simulated_latency_pct(95.0) as i64),
            ),
    );
    emit(
        format!(
            "baseline (no faults): goodput {:.1} q/s, p95 {:.2} ms, rows fp {base_rows_fp:#018x}\n",
            n as f64 / makespan_s(base.simulated_makespan()).max(1e-12),
            opts.device.cycles_to_ms(base.simulated_latency_pct(95.0)),
        ),
        &mut out,
    );

    emit(
        format!(
            "{:>9}  {:>8}  {:>5}  {:>8}  {:>8}  {:>10}  {:>8}  {:>10}  {:>8}",
            "rate",
            "policy",
            "ok",
            "faults",
            "retries",
            "fallbacks",
            "goodput",
            "p95 ms",
            "rows fp"
        ),
        &mut out,
    );
    for &rate in &[1e-3, 1e-2, 5e-2] {
        for (label, recovery) in [
            ("none", None),
            ("r=0", Some(RecoveryPolicy::with_retries(0))),
            ("r=2", Some(RecoveryPolicy::with_retries(2))),
        ] {
            let recovered = recovery.is_some();
            let report = server(
                opts,
                &db,
                &gamma,
                ServeConfig {
                    workers: 1,
                    faults: Some(FaultConfig {
                        seed: FAULT_SEED,
                        spec: FaultSpec::uniform(rate),
                    }),
                    recovery,
                    ..ServeConfig::default()
                },
            )
            .run_batch_report(workload(n));
            let (faults, retries, fallbacks, _) = report.recovery_totals();
            let rows_fp = report.rows_fingerprint();
            opts.artifact.run(
                RunEntry::new(format!("rate={rate:.0e}/{label}"), "gpl")
                    .cycles(report.simulated_makespan())
                    .rows(report.ok_count() as u64)
                    .fingerprint(rows_fp)
                    .extra("faults", Json::Int(faults as i64))
                    .extra("retries", Json::Int(retries as i64))
                    .extra("fallbacks", Json::Int(fallbacks as i64))
                    .extra(
                        "p95_latency_cycles",
                        Json::Int(report.simulated_latency_pct(95.0) as i64),
                    ),
            );
            if recovered {
                assert_eq!(
                    report.err_count(),
                    0,
                    "recovery must absorb every fault at rate {rate}"
                );
                assert_eq!(
                    rows_fp, base_rows_fp,
                    "recovered rows must match the fault-free baseline at rate {rate}"
                );
            }
            emit(
                format!(
                    "{rate:>9.0e}  {label:>8}  {:>2}/{n:<2}  {faults:>8}  {retries:>8}  {fallbacks:>10}  {:>8.1}  {:>10.2}  {}",
                    report.ok_count(),
                    report.ok_count() as f64 / makespan_s(report.simulated_makespan()).max(1e-12),
                    opts.device.cycles_to_ms(report.simulated_latency_pct(95.0)),
                    if rows_fp == base_rows_fp { "= base" } else { "differs" },
                ),
                &mut out,
            );
        }
    }

    // Circuit breaker: no recovery, heavy faults — consecutive failures
    // trip the worker's breaker, which then rejects without touching the
    // device and half-opens after its (simulated-cycle) cool-down.
    let breaker_report = server(
        opts,
        &db,
        &gamma,
        ServeConfig {
            workers: 1,
            faults: Some(FaultConfig {
                seed: FAULT_SEED,
                spec: FaultSpec::uniform(0.05),
            }),
            recovery: None,
            breaker: Some(BreakerConfig {
                trip_after: 2,
                open_cycles: 1 << 24,
                reject_cost_cycles: 1 << 22,
            }),
            ..ServeConfig::default()
        },
    )
    .run_batch_report(workload(n));
    let circuit_open = breaker_report
        .responses
        .iter()
        .filter(|r| matches!(r.result, Err(ServeError::CircuitOpen)))
        .count();
    emit(
        format!(
            "\ncircuit breaker @ rate 5e-2, trip_after 2, no recovery: {} ok, {} device-fault errors, {} rejected while open ({} opens)",
            breaker_report.ok_count(),
            breaker_report.err_count() - circuit_open,
            breaker_report.breaker.0,
            breaker_report.breaker.1,
        ),
        &mut out,
    );
    assert!(
        breaker_report.breaker.1 >= 1,
        "heavy faults must trip the breaker"
    );
    assert_eq!(circuit_open as u64, breaker_report.breaker.0);
    opts.artifact.fact(
        "breaker",
        Json::obj(vec![
            ("ok", Json::Int(breaker_report.ok_count() as i64)),
            (
                "rejected_while_open",
                Json::Int(breaker_report.breaker.0 as i64),
            ),
            ("opens", Json::Int(breaker_report.breaker.1 as i64)),
        ]),
    );

    // Load shedding: the 24-request batch against a queue bound of 8 —
    // submit_all holds the queue lock across the whole batch, so exactly
    // n - 8 requests are shed, deterministically.
    let shed_report = server(
        opts,
        &db,
        &gamma,
        ServeConfig {
            workers: 1,
            max_queue_depth: Some(8),
            ..ServeConfig::default()
        },
    )
    .run_batch_report(workload(n));
    emit(
        format!(
            "load shedding @ queue bound 8: {} answered, {} shed (every submission answered either way)",
            shed_report.ok_count(),
            shed_report.sheds,
        ),
        &mut out,
    );
    assert_eq!(shed_report.sheds as usize, n.saturating_sub(8));
    assert_eq!(
        shed_report.responses.len(),
        n,
        "shed requests still get responses"
    );
    opts.artifact.fact(
        "load_shedding",
        Json::obj(vec![
            ("answered", Json::Int(shed_report.ok_count() as i64)),
            ("shed", Json::Int(shed_report.sheds as i64)),
        ]),
    );

    std::fs::create_dir_all("target/obs").expect("create target/obs");
    std::fs::write(OUT_PATH, &out).unwrap_or_else(|e| panic!("{OUT_PATH}: {e}"));
    println!("\nreport written to {OUT_PATH} (deterministic: byte-identical per seed)");
}
