//! Table 1 and the channel calibration figures (Figure 2 / Figure 23).

use super::Opts;
use gpl_obs::Json;
use gpl_sim::{amd_a10, calibrate, nvidia_k40, DeviceSpec};

/// Table 1: hardware specification.
pub fn table1(opts: &Opts) {
    println!("{:<26} {:>14} {:>18}", "", "AMD", "NVIDIA");
    let a = amd_a10();
    let n = nvidia_k40();
    let rows: Vec<(&str, String, String)> = vec![
        ("#CU", a.num_cus.to_string(), n.num_cus.to_string()),
        (
            "Core frequency (MHz)",
            a.core_freq_mhz.to_string(),
            n.core_freq_mhz.to_string(),
        ),
        (
            "Private memory/CU (KB)",
            (a.private_mem_per_cu / 1024).to_string(),
            (n.private_mem_per_cu / 1024).to_string(),
        ),
        (
            "Local memory/CU (KB)",
            (a.local_mem_per_cu / 1024).to_string(),
            (n.local_mem_per_cu / 1024).to_string(),
        ),
        (
            "Global memory (GB)",
            (a.global_mem >> 30).to_string(),
            (n.global_mem >> 30).to_string(),
        ),
        (
            "Cache (MB)",
            format!("{:.1}", a.cache_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}", n.cache_bytes as f64 / (1 << 20) as f64),
        ),
        (
            "Concurrent kernels",
            a.concurrency.to_string(),
            n.concurrency.to_string(),
        ),
        (
            "Programming API",
            "OpenCL (simulated)".into(),
            "CUDA (simulated)".into(),
        ),
    ];
    for (k, va, vn) in &rows {
        println!("{k:<26} {va:>14} {vn:>18}");
    }
    opts.artifact.fact(
        "spec_rows",
        Json::Arr(
            rows.iter()
                .map(|(k, va, vn)| {
                    Json::obj(vec![
                        ("key", Json::Str(k.to_string())),
                        ("amd", Json::Str(va.clone())),
                        ("nvidia", Json::Str(vn.clone())),
                    ])
                })
                .collect(),
        ),
    );
}

/// Run the producer→consumer sweep and return the measured points as a
/// JSON series for the experiment's artifact.
fn channel_sweep(spec: &DeviceSpec) -> Json {
    let packet = spec.channel.fixed_packet_bytes;
    println!(
        "producer→consumer chain, packet size {packet} B, N = 512K..8M integers ({})",
        spec.name
    );
    let header = "throughput (bytes/cycle) by #channels  n=1     n=2     n=4     n=8    n=16";
    println!("{:>10} {:>10} {header}", "N (ints)", "bytes");
    let mut points = Vec::new();
    for ints in [512 * 1024u64, 1 << 20, 2 << 20, 4 << 20, 8 << 20] {
        let d = ints * 4;
        print!("{:>10} {:>10}", ints, d);
        print!("{:38}", " ");
        for n in [1u32, 2, 4, 8, 16] {
            let p = calibrate::run_producer_consumer(spec, n, packet, d);
            print!(" {:>7.3}", p.throughput);
            points.push(Json::obj(vec![
                ("ints", Json::Int(ints as i64)),
                ("channels", Json::Int(n as i64)),
                ("throughput", Json::Num(p.throughput)),
            ]));
        }
        println!();
    }
    println!(
        "expected shape: throughput rises with n then saturates; inverted U in N with a knee \
         near the {} MiB cache (paper: suitable N = 1M integers on the 4 MiB AMD cache).",
        spec.cache_bytes >> 20
    );
    Json::Arr(points)
}

/// Figure 2: AMD channel calibration.
pub fn fig2(opts: &Opts) {
    let series = channel_sweep(&amd_a10());
    opts.artifact.fact("channel_sweep", series);
    // The paper additionally varies the packet size on AMD.
    println!("\npacket-size sweep at N = 1M ints, n = 4:");
    let mut pkt = Vec::new();
    for p in [8u32, 16, 32, 64] {
        let r = calibrate::run_producer_consumer(&amd_a10(), 4, p, 4 << 20);
        println!("  p = {p:>3} B: {:.3} bytes/cycle", r.throughput);
        pkt.push(Json::obj(vec![
            ("packet_bytes", Json::Int(p as i64)),
            ("throughput", Json::Num(r.throughput)),
        ]));
    }
    opts.artifact.fact("packet_sweep", Json::Arr(pkt));
}

/// Figure 23: the NVIDIA profile (no packet-size knob, Appendix A.1).
pub fn fig23(opts: &Opts) {
    let series = channel_sweep(&nvidia_k40());
    opts.artifact.fact("channel_sweep", series);
}
