//! Analytical-model validation (Figures 11–15, 24–26).

use super::Opts;
use crate::artifact::RunEntry;
use gpl_core::{plan_for, run_query, ExecMode, QueryConfig};
use gpl_model::{evaluate, optimize};
use gpl_obs::Json;
use gpl_tpch::QueryId;

/// Figure 11 (AMD) / Figure 24 (NVIDIA): relative error of the runtime
/// estimate at each query's model-chosen optimal configuration.
pub fn fig11(opts: &Opts) {
    model_error(opts);
}

pub fn fig24(opts: &Opts) {
    let mut o = opts.clone();
    o.device = gpl_sim::nvidia_k40();
    model_error(&o);
}

fn model_error(opts: &Opts) {
    let sf = opts.sf_or(0.1);
    let gamma = opts.gamma();
    let mut ctx = opts.ctx(sf);
    println!(
        "model relative error at the optimal configuration (SF {sf}, {})",
        opts.device.name
    );
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>9} {:>12}",
        "query", "measured", "estimated", "rel.err", "signed", "search time"
    );
    opts.artifact.sf(sf);
    for q in QueryId::evaluation_set() {
        let plan = plan_for(&ctx.db, q);
        let out = optimize(&opts.device, &gamma, &ctx.db, &plan);
        let eval = evaluate(&mut ctx, &gamma, &plan, &out.config);
        opts.artifact.run(
            RunEntry::new(q.name(), "gpl")
                .cycles(eval.measured_cycles)
                .extra("estimated_cycles", Json::Num(eval.estimated_cycles))
                .extra("relative_error", Json::Num(eval.relative_error)),
        );
        println!(
            "{:>5} {:>12} {:>12.0} {:>9.1}% {:>8.0}% {:>11.1?}",
            q.name(),
            eval.measured_cycles,
            eval.estimated_cycles,
            eval.relative_error * 100.0,
            eval.signed_error * 100.0,
            out.elapsed
        );
    }
    println!(
        "paper: small relative errors, generally underestimating (ideal-parallelism \
         assumption in Eq. 9); optimization time well under 5 ms."
    );
}

/// Figures 12+13 (AMD) / 25+26 (NVIDIA): runtime and model error across
/// tile sizes for Q8, with the model's chosen Δ marked.
pub fn fig12_13(opts: &Opts) {
    tile_sweep(opts);
}

pub fn fig25_26(opts: &Opts) {
    let mut o = opts.clone();
    o.device = gpl_sim::nvidia_k40();
    tile_sweep(&o);
}

fn tile_sweep(opts: &Opts) {
    let sf = opts.sf_or(0.2);
    let gamma = opts.gamma();
    let mut ctx = opts.ctx(sf);
    let plan = plan_for(&ctx.db, QueryId::Q8);
    let chosen = optimize(&opts.device, &gamma, &ctx.db, &plan);
    // The paper varies Δ with the other parameters at their defaults.
    let mut results = Vec::new();
    for &tile in &gpl_model::search::tile_grid() {
        let mut cfg = QueryConfig::default_for(&opts.device, &plan);
        for s in &mut cfg.stages {
            s.tile_bytes = tile;
        }
        let eval = evaluate(&mut ctx, &gamma, &plan, &cfg);
        results.push((tile, eval));
    }
    let base = results[0].1.measured_cycles as f64;
    let best = results
        .iter()
        .min_by_key(|(_, e)| e.measured_cycles)
        .map(|(t, _)| *t)
        .expect("non-empty sweep");
    let model_tile = chosen.config.stages.last().expect("stages").tile_bytes;
    opts.artifact.sf(sf);
    opts.artifact.fact(
        "tile_sweep",
        Json::Arr(
            results
                .iter()
                .map(|(tile, e)| {
                    Json::obj(vec![
                        ("tile_bytes", Json::Int(*tile as i64)),
                        ("measured_cycles", Json::Int(e.measured_cycles as i64)),
                        ("estimated_cycles", Json::Num(e.estimated_cycles)),
                    ])
                })
                .collect(),
        ),
    );
    println!("Q8 tile-size sweep (SF {sf}, {})", opts.device.name);
    println!(
        "{:>9} {:>12} {:>14} {:>12} {:>9}",
        "tile", "measured", "norm. (256KB)", "estimated", "rel.err"
    );
    for (tile, e) in &results {
        let mark = if *tile == model_tile {
            "  <- model optimum"
        } else {
            ""
        };
        println!(
            "{:>7}KB {:>12} {:>14.2} {:>12.0} {:>8.1}%{mark}",
            tile >> 10,
            e.measured_cycles,
            e.measured_cycles as f64 / base,
            e.estimated_cycles,
            e.relative_error * 100.0
        );
    }
    println!(
        "measured optimum: {}KB; model optimum: {}KB (paper: both at 4MB on AMD, away \
         from the 1MB default). expected shape: inverted U — small tiles underutilize, \
         large tiles thrash the cache.",
        best >> 10,
        model_tile >> 10
    );
}

/// Figures 14+15: model error and (normalized) delay cost across the
/// work-group settings S1..S7, where S_i assigns 2^(i-1) x S1 work-groups
/// to every kernel (S1 = 2 on AMD).
pub fn fig14_15(opts: &Opts) {
    let sf = opts.sf_or(0.2);
    let gamma = opts.gamma();
    let mut ctx = opts.ctx(sf);
    let plan = plan_for(&ctx.db, QueryId::Q8);
    let mut rows = Vec::new();
    for i in 1..=7u32 {
        let wg = 2u32 << (i - 1); // S1 = 2, S2 = 4, ... S7 = 128
        let mut cfg = QueryConfig::default_for(&opts.device, &plan);
        for s in &mut cfg.stages {
            for w in &mut s.wg_counts {
                *w = wg;
            }
        }
        ctx.sim.clear_cache();
        let run = run_query(&mut ctx, &plan, ExecMode::Gpl, &cfg);
        let eval_est = {
            let st = gpl_model::estimate_stats(&ctx.db, &plan);
            let ms = gpl_model::build_models(&ctx.db, &plan, &st, &opts.device);
            gpl_model::estimate_query(&opts.device, &gamma, &ms, &cfg, true)
        };
        rows.push((
            i,
            wg,
            run.cycles,
            run.profile.total_delay_cycles(),
            eval_est,
        ));
    }
    let delay_base = rows[0].3.max(1) as f64;
    let best_measured = rows.iter().min_by_key(|r| r.2).map(|r| r.0).expect("rows");
    let best_model = rows
        .iter()
        .min_by(|a, b| a.4.partial_cmp(&b.4).expect("finite"))
        .map(|r| r.0)
        .expect("rows");
    opts.artifact.sf(sf);
    opts.artifact.fact(
        "wg_sweep",
        Json::Arr(
            rows.iter()
                .map(|(i, wg, cycles, delay, est)| {
                    Json::obj(vec![
                        ("setting", Json::Int(*i as i64)),
                        ("wg", Json::Int(*wg as i64)),
                        ("measured_cycles", Json::Int(*cycles as i64)),
                        ("delay_cycles", Json::Int(*delay as i64)),
                        ("estimated_cycles", Json::Num(*est)),
                    ])
                })
                .collect(),
        ),
    );
    println!(
        "Q8 work-group settings S1..S7 (SF {sf}, {})",
        opts.device.name
    );
    println!(
        "{:>4} {:>5} {:>12} {:>14} {:>12} {:>9}",
        "S", "wg", "measured", "delay (norm.)", "estimated", "rel.err"
    );
    for (i, wg, cycles, delay, est) in &rows {
        let err = (est - *cycles as f64).abs() / *cycles as f64;
        let mark = if *i == best_model {
            "  <- model optimum"
        } else {
            ""
        };
        println!(
            "{:>4} {:>5} {:>12} {:>14.2} {:>12.0} {:>8.1}%{mark}",
            format!("S{i}"),
            wg,
            cycles,
            *delay as f64 / delay_base,
            est,
            err * 100.0
        );
    }
    println!(
        "measured optimum: S{best_measured}; model optimum: S{best_model} (paper: S4 on AMD, \
         the setting with the lowest delay cost)."
    );
}
