//! The experiment registry: one entry per table/figure of the paper.
//!
//! Each experiment prints the same rows/series the paper reports, plus a
//! short note on what shape to expect. DESIGN.md carries the full
//! per-experiment index; EXPERIMENTS.md records paper-vs-measured.

pub mod bench;
pub mod breakdown;
pub mod calibration;
pub mod chaos;
pub mod faults;
pub mod intermediates;
pub mod model_eval;
pub mod modes;
pub mod pipeline;
pub mod profile;
pub mod serve;
pub mod shard;
pub mod simperf;
pub mod utilization;

use crate::artifact::ArtifactSink;
use gpl_core::ExecContext;
use gpl_model::GammaTable;
use gpl_sim::{amd_a10, nvidia_k40, DeviceSpec};
use gpl_tpch::TpchDb;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Parsed command-line options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Scale-factor override (each experiment has its own default).
    pub sf: Option<f64>,
    /// Device: "amd" (default) or "nvidia".
    pub device: DeviceSpec,
    /// Positional arguments after the experiment name (e.g. the query
    /// for `repro profile q1`).
    pub extra: Vec<String>,
    /// Pin the `repro serve` sweep to one worker count.
    pub workers: Option<usize>,
    /// Workload size for `repro serve` (default: 22 requests).
    pub queries: Option<usize>,
    /// Where the experiment records its [`crate::artifact::BenchArtifact`]
    /// entries; the dispatcher writes `BENCH_<name>.json` on return.
    pub artifact: ArtifactSink,
}

impl Opts {
    pub fn sf_or(&self, default: f64) -> f64 {
        self.sf.unwrap_or(default)
    }

    pub fn ctx(&self, sf: f64) -> ExecContext {
        ExecContext::new(self.device.clone(), TpchDb::at_scale(sf))
    }

    /// The calibrated Γ table for this device: cached in-process and on
    /// disk under `target/` (calibration is deterministic, so the file
    /// is just a time saver across `repro` invocations).
    pub fn gamma(&self) -> GammaTable {
        static CACHE: OnceLock<Mutex<HashMap<String, GammaTable>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("gamma cache lock");
        map.entry(self.device.name.clone())
            .or_insert_with(|| {
                let file = format!(
                    "target/gamma-{}.txt",
                    self.device.name.to_lowercase().replace(' ', "-")
                );
                GammaTable::load_or_calibrate(&self.device, std::path::Path::new(&file))
            })
            .clone()
    }
}

/// One runnable experiment.
pub struct Experiment {
    pub name: &'static str,
    pub paper_ref: &'static str,
    pub description: &'static str,
    pub run: fn(&Opts),
}

/// Every experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1",
            paper_ref: "Table 1",
            description: "hardware specification of the simulated devices",
            run: calibration::table1,
        },
        Experiment {
            name: "fig2",
            paper_ref: "Figure 2",
            description: "channel throughput vs data size and #channels (AMD)",
            run: calibration::fig2,
        },
        Experiment {
            name: "fig3",
            paper_ref: "Figure 3",
            description: "KBE intermediate size vs selectivity (Q14)",
            run: intermediates::fig3,
        },
        Experiment {
            name: "fig4",
            paper_ref: "Figure 4",
            description: "KBE communication cost vs selectivity (Q14)",
            run: intermediates::fig4,
        },
        Experiment {
            name: "fig5",
            paper_ref: "Figure 5",
            description: "GPU resource utilization under KBE",
            run: utilization::fig5,
        },
        Experiment {
            name: "fig7",
            paper_ref: "Figure 7",
            description: "KBE vs GPL query plans (Listing 1 and the workload)",
            run: modes::fig7,
        },
        Experiment {
            name: "timeline",
            paper_ref: "Figures 9+10",
            description: "traced per-kernel Gantt charts, KBE vs GPL (Q8)",
            run: modes::timeline,
        },
        Experiment {
            name: "fig11",
            paper_ref: "Figure 11",
            description: "model relative error per query (optimal config)",
            run: model_eval::fig11,
        },
        Experiment {
            name: "fig12",
            paper_ref: "Figures 12+13",
            description: "runtime and model error vs tile size (Q8)",
            run: model_eval::fig12_13,
        },
        Experiment {
            name: "fig14",
            paper_ref: "Figures 14+15",
            description: "model error and delay cost vs work-group settings S1..S7 (Q8)",
            run: model_eval::fig14_15,
        },
        Experiment {
            name: "fig16",
            paper_ref: "Figure 16",
            description: "KBE vs GPL (w/o CE) vs GPL runtimes",
            run: modes::fig16,
        },
        Experiment {
            name: "fig17",
            paper_ref: "Figure 17",
            description: "materialized intermediates, GPL normalized to KBE",
            run: intermediates::fig17,
        },
        Experiment {
            name: "fig18",
            paper_ref: "Figure 18",
            description: "GPL intermediate size vs selectivity (Q14)",
            run: intermediates::fig18,
        },
        Experiment {
            name: "fig19",
            paper_ref: "Figure 19",
            description: "GPU resource utilization, KBE vs GPL",
            run: utilization::fig19,
        },
        Experiment {
            name: "fig20",
            paper_ref: "Figure 20",
            description: "query execution time breakdown (Q8)",
            run: breakdown::fig20,
        },
        Experiment {
            name: "fig21",
            paper_ref: "Figure 21",
            description: "runtime vs data size (scale-factor sweep)",
            run: modes::fig21,
        },
        Experiment {
            name: "fig22",
            paper_ref: "Figure 22",
            description: "GPL vs Ocelot across scale factors",
            run: modes::fig22,
        },
        Experiment {
            name: "fig23",
            paper_ref: "Figure 23",
            description: "channel throughput calibration on the NVIDIA profile",
            run: calibration::fig23,
        },
        Experiment {
            name: "fig24",
            paper_ref: "Figure 24",
            description: "model relative error per query (NVIDIA)",
            run: model_eval::fig24,
        },
        Experiment {
            name: "fig25",
            paper_ref: "Figures 25+26",
            description: "runtime and model error vs tile size (Q8, NVIDIA)",
            run: model_eval::fig25_26,
        },
        Experiment {
            name: "fig27",
            paper_ref: "Figure 27",
            description: "GPL vs KBE normalized runtimes (NVIDIA)",
            run: modes::fig27,
        },
        Experiment {
            name: "fig28",
            paper_ref: "Figure 28",
            description: "resource utilization for Q8 (NVIDIA)",
            run: utilization::fig28,
        },
        Experiment {
            name: "fig29",
            paper_ref: "Figure 29",
            description: "execution-time breakdown for Q8 (NVIDIA)",
            run: breakdown::fig29,
        },
        Experiment {
            name: "faults",
            paper_ref: "robustness",
            description: "fault injection & recovery: goodput, fallbacks, breaker, shedding",
            run: faults::faults,
        },
        Experiment {
            name: "chaos",
            paper_ref: "robustness",
            description:
                "straggler defense: slowdown faults, speculative hedging, checkpoint resume",
            run: chaos::chaos,
        },
        Experiment {
            name: "serve",
            paper_ref: "serving",
            description: "multi-query scheduler: throughput and queue latency vs workers",
            run: serve::serve,
        },
        Experiment {
            name: "profile",
            paper_ref: "observability",
            description: "trace one query under all modes; Chrome-trace + metrics JSON export",
            run: profile::profile,
        },
        Experiment {
            name: "pipeline",
            paper_ref: "pipelining",
            description: "cross-segment overlap: modeled vs observed cycles, GPL vs pipelined",
            run: pipeline::pipeline,
        },
        Experiment {
            name: "shard",
            paper_ref: "multi-device",
            description: "heterogeneous CPU/GPU sharding: placement, modeled vs observed, scaling",
            run: shard::shard,
        },
        Experiment {
            name: "simperf",
            paper_ref: "engine perf",
            description: "simulator wall-clock throughput: events/sec vs recorded reference",
            run: simperf::simperf,
        },
    ]
}

/// Dispatch from raw CLI arguments.
pub fn dispatch(args: &[String]) {
    let mut name = None;
    let mut sf = None;
    let mut device = amd_a10();
    let mut extra = Vec::new();
    let mut workers = None;
    let mut queries = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                sf = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--workers" => {
                workers = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--queries" => {
                queries = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--device" => {
                device = match args.get(i + 1).map(String::as_str) {
                    Some("nvidia") => nvidia_k40(),
                    Some("amd") | None => amd_a10(),
                    Some(other) => {
                        eprintln!("unknown device {other:?}; use amd or nvidia");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            a if name.is_none() && !a.starts_with("--") => {
                name = Some(a.to_string());
                i += 1;
            }
            a if name.is_some() && !a.starts_with("--") => {
                extra.push(a.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let opts = Opts {
        sf,
        device,
        extra,
        workers,
        queries,
        artifact: ArtifactSink::default(),
    };
    match name.as_deref() {
        None | Some("list") => {
            println!("repro — regenerate the paper's tables and figures\n");
            println!(
                "usage: repro <experiment|all|bench> [args] [--sf <f>] [--device amd|nvidia]\n"
            );
            for e in registry() {
                println!("  {:<8} {:<14} {}", e.name, e.paper_ref, e.description);
            }
            println!(
                "  {:<8} {:<14} {}",
                "bench",
                "trajectory",
                bench::DESCRIPTION
            );
        }
        Some("all") => {
            for e in registry() {
                println!(
                    "==================== {} ({}) ====================",
                    e.name, e.paper_ref
                );
                run_with_artifact(&e, &opts);
                println!();
            }
        }
        Some("bench") => bench::bench(&opts),
        Some(n) => match registry().into_iter().find(|e| e.name == n) {
            Some(e) => run_with_artifact(&e, &opts),
            None => {
                eprintln!("unknown experiment {n:?}; run `repro list`");
                std::process::exit(2);
            }
        },
    }
}

/// Run one experiment with the artifact lifecycle around it: reset the
/// sink, run, then write the parse-checked `BENCH_<name>.json` — every
/// experiment emits an artifact, even one that records nothing.
fn run_with_artifact(e: &Experiment, opts: &Opts) {
    opts.artifact.begin(e.name, &opts.device.name);
    if let Some(sf) = opts.sf {
        opts.artifact.sf(sf);
    }
    (e.run)(opts);
    let path = opts.artifact.finish();
    println!("artifact: {path}");
}
