//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro <experiment> [--sf <f>] [--device amd|nvidia]`
//! Run `repro list` for the experiment index.

fn main() {
    gpl_bench::cli::main();
}
