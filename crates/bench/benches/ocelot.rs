//! Bench for the Ocelot comparison (Figure 22), cold and warm
//! (hash-table cache primed).

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_core::{plan_for, run_query, ExecContext, ExecMode, QueryConfig};
use gpl_ocelot::OcelotContext;
use gpl_sim::amd_a10;
use gpl_tpch::{QueryId, TpchDb};

const SF: f64 = 0.02;

fn bench_ocelot(c: &mut Criterion) {
    let spec = amd_a10();
    let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(SF));
    let mut g = c.benchmark_group("gpl_vs_ocelot");
    g.sample_size(10);
    for q in [QueryId::Q5, QueryId::Q8, QueryId::Q14] {
        let plan = plan_for(&ctx.db, q);
        let cfg = QueryConfig::default_for(&spec, &plan);
        g.bench_with_input(BenchmarkId::new("gpl", q.name()), &plan, |b, plan| {
            b.iter(|| {
                ctx.sim.clear_cache();
                run_query(&mut ctx, plan, ExecMode::Gpl, &cfg)
            });
        });
        g.bench_with_input(
            BenchmarkId::new("ocelot_cold", q.name()),
            &plan,
            |b, plan| {
                b.iter(|| {
                    let mut oc = OcelotContext::new();
                    ctx.sim.clear_cache();
                    gpl_ocelot::run_query(&mut ctx, &mut oc, plan)
                });
            },
        );
        let mut warm = OcelotContext::new();
        gpl_ocelot::run_query(&mut ctx, &mut warm, &plan);
        g.bench_with_input(
            BenchmarkId::new("ocelot_warm", q.name()),
            &plan,
            |b, plan| {
                b.iter(|| {
                    ctx.sim.clear_cache();
                    gpl_ocelot::run_query(&mut ctx, &mut warm, plan)
                });
            },
        );
    }
    g.finish();
}

bench_group!(benches, bench_ocelot);
bench_main!(benches);
