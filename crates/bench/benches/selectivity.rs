//! Bench for the Q14 selectivity studies (Figures 3, 4, 18).

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_core::plan::q14_plan;
use gpl_core::{run_query, ExecContext, ExecMode, QueryConfig};
use gpl_sim::amd_a10;
use gpl_tpch::{q14_window_for_selectivity, TpchDb};

const SF: f64 = 0.02;

fn bench_selectivity(c: &mut Criterion) {
    let spec = amd_a10();
    let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(SF));
    let mut g = c.benchmark_group("q14_selectivity");
    g.sample_size(10);
    for sel in [1u32, 16, 50, 100] {
        let params = q14_window_for_selectivity(&ctx.db, sel as f64 / 100.0);
        let plan = q14_plan(&ctx.db, params);
        let cfg = QueryConfig::default_for(&spec, &plan);
        for mode in [ExecMode::Kbe, ExecMode::Gpl] {
            g.bench_with_input(
                BenchmarkId::new(mode.name(), format!("{sel}pct")),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        ctx.sim.clear_cache();
                        run_query(&mut ctx, &plan, mode, &cfg)
                    });
                },
            );
        }
    }
    g.finish();
}

bench_group!(benches, bench_selectivity);
bench_main!(benches);
