//! Bench for the data-size sweep (Figure 21): KBE vs GPL as
//! the scale factor grows.

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_core::{plan_for, run_query, ExecContext, ExecMode, QueryConfig};
use gpl_sim::amd_a10;
use gpl_tpch::{QueryId, TpchDb};

fn bench_scale(c: &mut Criterion) {
    let spec = amd_a10();
    let mut g = c.benchmark_group("scale_sweep_q14");
    g.sample_size(10);
    for sf in [0.01, 0.05, 0.1] {
        let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(sf));
        let plan = plan_for(&ctx.db, QueryId::Q14);
        let cfg = QueryConfig::default_for(&spec, &plan);
        for mode in [ExecMode::Kbe, ExecMode::Gpl] {
            g.bench_with_input(
                BenchmarkId::new(mode.name(), format!("sf{sf}")),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        ctx.sim.clear_cache();
                        run_query(&mut ctx, &plan, mode, &cfg)
                    });
                },
            );
        }
    }
    g.finish();
}

bench_group!(benches, bench_scale);
bench_main!(benches);
