//! Bench for the channel calibration chain (Figure 2 / 23):
//! wall-clock cost of simulating the producer→consumer microbenchmark
//! across channel counts and data sizes.

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_sim::{amd_a10, nvidia_k40, run_producer_consumer};

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel_calibration");
    g.sample_size(10);
    for (dev, spec) in [("amd", amd_a10()), ("nvidia", nvidia_k40())] {
        for n in [1u32, 4, 16] {
            g.bench_with_input(BenchmarkId::new(format!("{dev}/n"), n), &n, |b, &n| {
                b.iter(|| run_producer_consumer(&spec, n, 16, 1 << 20));
            });
        }
        for d in [256u64 << 10, 4 << 20] {
            g.bench_with_input(BenchmarkId::new(format!("{dev}/bytes"), d), &d, |b, &d| {
                b.iter(|| run_producer_consumer(&spec, 4, 16, d));
            });
        }
    }
    g.finish();
}

bench_group!(benches, bench_calibration);
bench_main!(benches);
