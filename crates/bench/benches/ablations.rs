//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. channels vs global-memory handoff (GPL vs GPL w/o CE);
//! 2. concurrent kernel residency on/off (device capped at C = 1);
//! 3. model-chosen tile size vs the fixed 1 MB default;
//! 4. model-balanced per-kernel work-groups vs a uniform allocation;
//! 5. packet size.

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_core::{plan_for, run_query, ExecContext, ExecMode, QueryConfig};
use gpl_model::{optimize, GammaTable};
use gpl_sim::amd_a10;
use gpl_tpch::{QueryId, TpchDb};

const SF: f64 = 0.02;

fn small_gamma() -> GammaTable {
    GammaTable::calibrate_grid(
        &amd_a10(),
        vec![1, 4, 16],
        vec![16, 64],
        vec![256 << 10, 2 << 20, 16 << 20],
    )
}

fn bench_ablations(c: &mut Criterion) {
    let spec = amd_a10();
    let gamma = small_gamma();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let q = QueryId::Q8;

    // 1. Channels + concurrency vs per-tile kernel-at-a-time.
    {
        let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(SF));
        let plan = plan_for(&ctx.db, q);
        let cfg = QueryConfig::default_for(&spec, &plan);
        for mode in [ExecMode::Gpl, ExecMode::GplNoCe] {
            g.bench_with_input(
                BenchmarkId::new("channels", mode.name()),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        ctx.sim.clear_cache();
                        run_query(&mut ctx, &plan, mode, &cfg)
                    });
                },
            );
        }
    }

    // 2. Concurrency degree: the stock C = 2 device vs a C = 1 cap.
    for c_degree in [1u32, 2] {
        let mut dev = spec.clone();
        dev.concurrency = c_degree;
        let mut ctx = ExecContext::new(dev.clone(), TpchDb::at_scale(SF));
        let plan = plan_for(&ctx.db, q);
        let cfg = QueryConfig::default_for(&dev, &plan);
        g.bench_with_input(
            BenchmarkId::new("concurrency", format!("C{c_degree}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    ctx.sim.clear_cache();
                    run_query(&mut ctx, &plan, ExecMode::Gpl, cfg)
                });
            },
        );
    }

    // 3 + 4. Model-optimized configuration vs the 1 MB uniform default.
    {
        let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(SF));
        let plan = plan_for(&ctx.db, q);
        let default_cfg = QueryConfig::default_for(&spec, &plan);
        let tuned = optimize(&spec, &gamma, &ctx.db, &plan).config;
        for (label, cfg) in [
            ("default_1mb_uniform", &default_cfg),
            ("model_tuned", &tuned),
        ] {
            g.bench_with_input(BenchmarkId::new("config", label), cfg, |b, cfg| {
                b.iter(|| {
                    ctx.sim.clear_cache();
                    run_query(&mut ctx, &plan, ExecMode::Gpl, cfg)
                });
            });
        }
    }

    // 5b. Partitioned (radix) vs monolithic hash join on a table that
    //     overflows the cache (the Section 3.2 extension).
    {
        use gpl_core::ht::{mix64, SimHashTable};
        use gpl_core::partitioned::{build_partitioned, probe_monolithic, probe_partitioned};
        let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(0.001));
        let build: Vec<i64> = (0..600_000).collect();
        let payload = build.clone();
        let probes: Vec<i64> = (0..1_200_000)
            .map(|i| (mix64(11 ^ i as u64) as i64).rem_euclid(900_000))
            .collect();
        let mut mono_table = SimHashTable::new(&mut ctx.sim.mem, build.len(), 1, "mono");
        let mut acc = Vec::new();
        for (&k, &v) in build.iter().zip(&payload) {
            mono_table.insert(k, &[v], &mut acc);
        }
        let (pt, _) = build_partitioned(&mut ctx, &build, &payload, 8);
        g.bench_function("join/monolithic", |b| {
            b.iter(|| {
                ctx.sim.clear_cache();
                probe_monolithic(&mut ctx, &mono_table, &probes)
            });
        });
        g.bench_function("join/partitioned", |b| {
            b.iter(|| {
                ctx.sim.clear_cache();
                probe_partitioned(&mut ctx, &pt, &probes)
            });
        });
    }

    // 5. Packet size.
    {
        let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(SF));
        let plan = plan_for(&ctx.db, q);
        for p in [8u32, 16, 64] {
            let mut cfg = QueryConfig::default_for(&spec, &plan);
            for s in &mut cfg.stages {
                s.packet_bytes = p;
            }
            g.bench_with_input(BenchmarkId::new("packet_bytes", p), &cfg, |b, cfg| {
                b.iter(|| {
                    ctx.sim.clear_cache();
                    run_query(&mut ctx, &plan, ExecMode::Gpl, cfg)
                });
            });
        }
    }
    g.finish();
}

bench_group!(benches, bench_ablations);
bench_main!(benches);
