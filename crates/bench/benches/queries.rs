//! Bench for the headline comparison (Figures 5, 16, 17, 19,
//! 20, 27): simulating every workload query under each execution mode.

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_core::{plan_for, run_query, ExecContext, ExecMode, QueryConfig};
use gpl_sim::amd_a10;
use gpl_tpch::{QueryId, TpchDb};

const SF: f64 = 0.02;

fn bench_modes(c: &mut Criterion) {
    let spec = amd_a10();
    let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(SF));
    let mut g = c.benchmark_group("query_modes");
    g.sample_size(10);
    for q in QueryId::evaluation_set() {
        let plan = plan_for(&ctx.db, q);
        let cfg = QueryConfig::default_for(&spec, &plan);
        for mode in [ExecMode::Kbe, ExecMode::GplNoCe, ExecMode::Gpl] {
            g.bench_with_input(
                BenchmarkId::new(q.name(), mode.name()),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        ctx.sim.clear_cache();
                        run_query(&mut ctx, &plan, mode, &cfg)
                    });
                },
            );
        }
    }
    g.finish();
}

bench_group!(benches, bench_modes);
bench_main!(benches);
