//! Bench for the tile-size knob (Figures 12, 13, 25, 26).

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_core::{plan_for, run_query, ExecContext, ExecMode, QueryConfig};
use gpl_sim::amd_a10;
use gpl_tpch::{QueryId, TpchDb};

const SF: f64 = 0.05;

fn bench_tiles(c: &mut Criterion) {
    let spec = amd_a10();
    let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(SF));
    let plan = plan_for(&ctx.db, QueryId::Q8);
    let mut g = c.benchmark_group("q8_tile_sweep");
    g.sample_size(10);
    for tile in [256u64 << 10, 1 << 20, 4 << 20, 16 << 20] {
        let mut cfg = QueryConfig::default_for(&spec, &plan);
        for s in &mut cfg.stages {
            s.tile_bytes = tile;
        }
        g.bench_with_input(BenchmarkId::from_parameter(tile >> 10), &cfg, |b, cfg| {
            b.iter(|| {
                ctx.sim.clear_cache();
                run_query(&mut ctx, &plan, ExecMode::Gpl, cfg)
            });
        });
    }
    g.finish();
}

bench_group!(benches, bench_tiles);
bench_main!(benches);
