//! Bench for the analytical model (Figures 11, 14, 24): λ
//! estimation, cost evaluation and the full parameter search — the paper
//! claims the whole optimization stays under 5 ms per query.

use gpl_bench::harness::{BenchmarkId, Criterion};
use gpl_bench::{bench_group, bench_main};
use gpl_core::{plan_for, QueryConfig};
use gpl_model::{build_models, estimate_query, estimate_stats, optimize, GammaTable};
use gpl_sim::amd_a10;
use gpl_tpch::{QueryId, TpchDb};

const SF: f64 = 0.05;

fn bench_model(c: &mut Criterion) {
    let spec = amd_a10();
    let db = TpchDb::at_scale(SF);
    let gamma = GammaTable::calibrate_grid(
        &spec,
        vec![1, 4, 16],
        vec![16, 64],
        vec![256 << 10, 2 << 20, 16 << 20],
    );
    let mut g = c.benchmark_group("analytical_model");
    for q in [QueryId::Q8, QueryId::Q14] {
        let plan = plan_for(&db, q);
        g.bench_with_input(
            BenchmarkId::new("lambda_estimation", q.name()),
            &plan,
            |b, plan| {
                b.iter(|| estimate_stats(&db, plan));
            },
        );
        let stats = estimate_stats(&db, &plan);
        let models = build_models(&db, &plan, &stats, &spec);
        let cfg = QueryConfig::default_for(&spec, &plan);
        g.bench_with_input(
            BenchmarkId::new("cost_eval", q.name()),
            &models,
            |b, models| {
                b.iter(|| estimate_query(&spec, &gamma, models, &cfg, true));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("full_search", q.name()),
            &plan,
            |b, plan| {
                b.iter(|| optimize(&spec, &gamma, &db, plan));
            },
        );
    }
    g.finish();
}

bench_group!(benches, bench_model);
bench_main!(benches);
