//! Smoke test: every `repro` experiment must run end to end at a tiny
//! scale factor without panicking (the heavyweight fixed-sweep ones are
//! exercised by the repro binary itself and skipped here for time).

use gpl_bench::experiments::{registry, Opts};
use gpl_sim::amd_a10;

#[test]
fn cheap_experiments_run_at_tiny_scale() {
    // fig2/fig23 run full calibration sweeps and fig21/fig22 fixed SF
    // sweeps; they are covered by `repro all`. profile needs a query
    // argument and has its own smoke test below. chaos gates its tail
    // improvements at the pinned default scale (its hazard window is
    // sized for SF 0.3 launches, so a tiny-SF sweep never confirms a
    // fault) — verify.sh runs it twice at the defaults instead.
    let skip = ["fig2", "fig21", "fig22", "fig23", "profile", "chaos"];
    let opts = Opts {
        sf: Some(0.004),
        device: amd_a10(),
        extra: Vec::new(),
        // Keep `serve` cheap here: a pinned pool and a short workload.
        workers: Some(2),
        queries: Some(6),
        artifact: Default::default(),
    };
    for e in registry() {
        if skip.contains(&e.name) {
            continue;
        }
        (e.run)(&opts);
    }
}

#[test]
fn profile_runs_and_exports() {
    let opts = Opts {
        sf: Some(0.004),
        device: amd_a10(),
        extra: vec!["q1".to_string()],
        workers: None,
        queries: None,
        artifact: Default::default(),
    };
    let e = registry()
        .into_iter()
        .find(|e| e.name == "profile")
        .expect("registered");
    (e.run)(&opts);
    for f in [
        "profile-q1-kbe.trace.json",
        "profile-q1-gpl.trace.json",
        "profile-q1-metrics.json",
    ] {
        let text = std::fs::read_to_string(format!("target/obs/{f}")).expect(f);
        gpl_obs::parse(&text).expect(f);
    }
}
