//! Smoke test: every `repro` experiment must run end to end at a tiny
//! scale factor without panicking (the heavyweight fixed-sweep ones are
//! exercised by the repro binary itself and skipped here for time).

use gpl_bench::experiments::{registry, Opts};
use gpl_sim::amd_a10;

#[test]
fn cheap_experiments_run_at_tiny_scale() {
    // fig2/fig23 run full calibration sweeps and fig21/fig22 fixed SF
    // sweeps; they are covered by `repro all`.
    let skip = ["fig2", "fig21", "fig22", "fig23"];
    let opts = Opts { sf: Some(0.004), device: amd_a10() };
    for e in registry() {
        if skip.contains(&e.name) {
            continue;
        }
        (e.run)(&opts);
    }
}
