//! Choice-stream shrinking: given a failing stream, find a smaller one
//! that still fails. Two passes run to a fixpoint under a global
//! attempt budget:
//!
//! 1. **chunk deletion** (windows of 8, 4, 2, 1 choices, scanned from
//!    the tail) — shortens collections and drops irrelevant structure;
//! 2. **per-choice minimization** — try 0, else binary-search the
//!    smallest still-failing value (exact for monotone predicates,
//!    opportunistic otherwise).
//!
//! "Smaller" is the standard shortlex order: fewer choices, then
//! pointwise smaller values, so the process terminates.

/// Shrink `best` (a failing stream) with `still_fails` as the oracle.
/// `still_fails` must be pure with respect to the stream.
pub fn shrink(mut best: Vec<u64>, mut still_fails: impl FnMut(&[u64]) -> bool) -> Vec<u64> {
    let mut budget: u32 = 16_384;
    loop {
        let mut improved = false;

        // Pass 1: delete chunks, largest windows first, tail to head
        // (trailing choices are usually the least load-bearing).
        for size in [8usize, 4, 2, 1] {
            let mut i = best.len();
            while i > 0 && budget > 0 {
                i = i.saturating_sub(size);
                if best.is_empty() {
                    break;
                }
                let end = (i + size).min(best.len());
                if i >= end {
                    continue;
                }
                let mut cand = best.clone();
                cand.drain(i..end);
                budget -= 1;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                }
            }
        }

        // Pass 2: minimize individual choices toward zero.
        for idx in 0..best.len() {
            if budget == 0 {
                break;
            }
            let cur = best[idx];
            if cur == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand[idx] = 0;
            budget -= 1;
            if still_fails(&cand) {
                best[idx] = 0;
                improved = true;
                continue;
            }
            // Binary search the smallest failing value in (0, cur].
            let (mut lo, mut hi) = (0u64, cur);
            while lo + 1 < hi && budget > 0 {
                let mid = lo + (hi - lo) / 2;
                let mut cand = best.clone();
                cand[idx] = mid;
                budget -= 1;
                if still_fails(&cand) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            if hi != cur {
                best[idx] = hi;
                improved = true;
            }
        }

        if !improved || budget == 0 {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deletes_irrelevant_prefix_and_suffix() {
        // Fails iff the stream contains a 7 anywhere.
        let start = vec![3, 1, 7, 4, 1, 5, 9, 2, 6];
        let min = shrink(start, |s| s.contains(&7));
        assert_eq!(min, vec![7]);
    }

    #[test]
    fn minimizes_values_by_binary_search() {
        // Fails iff the first choice is >= 500.
        let min = shrink(vec![987_654], |s| s.first().is_some_and(|&v| v >= 500));
        assert_eq!(min, vec![500]);
    }

    #[test]
    fn combined_structure_and_value_shrink() {
        // Fails iff the sum exceeds 100. Deletion gets the stream down
        // to three elements (two sum to 80, passing) and minimization
        // lands exactly on the boundary sum of 101.
        let start = vec![40, 40, 40, 40];
        let min = shrink(start, |s| s.iter().sum::<u64>() > 100);
        assert_eq!(min.len(), 3);
        assert_eq!(min.iter().sum::<u64>(), 101);
    }

    #[test]
    fn passing_streams_are_left_alone() {
        // The oracle receiving the original stream must hold; a stream
        // that cannot shrink stays itself.
        let min = shrink(vec![0], |s| s == [0]);
        assert_eq!(min, vec![0]);
    }
}
