//! # gpl-check — a minimal, hermetic property-testing harness
//!
//! The offline replacement for `proptest`, covering exactly what this
//! repository uses: seeded random case generation, automatic shrinking
//! to a minimal counterexample, and regression-seed persistence next to
//! the test source (the `*.proptest-regressions` convention).
//!
//! ## Design: choice-stream generation
//!
//! A [`Strategy`] draws values through a [`Gen`], which records every
//! bounded integer "choice" it hands out. A test case is therefore
//! fully described by its choice stream (`Vec<u64>`), and shrinking is
//! plain data surgery on that stream — delete chunks (shorter
//! collections), binary-search individual choices toward zero (smaller
//! values) — with the strategy re-run after each edit. Mapped
//! strategies (`prop_map`) shrink for free because generation is simply
//! replayed; no inverse function is ever needed. (This is the
//! Hypothesis architecture, sized down.)
//!
//! ## Determinism
//!
//! There is no ambient entropy anywhere: case seeds derive from the
//! source file, test name, and case index via FNV-1a, so every run of
//! the suite — any machine, any day — executes byte-identical cases.
//! Set `GPL_CHECK_SEED=<n>` to explore a different universe, and
//! `GPL_CHECK_CASES=<n>` to change the per-property case count.
//!
//! ## Use
//!
//! ```ignore
//! gpl_check::prop! {
//!     #![cases(64)]                       // optional; default 256
//!     #[test]
//!     fn reverse_is_involutive(v in collection::vec(0u32..100, 0..50)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(v, w);
//!     }
//! }
//! ```
//!
//! On failure the harness shrinks, appends a `seed 0x…` line to
//! `<source>.proptest-regressions` (legacy proptest `cc` lines in the
//! same files are tolerated and ignored), and panics with the minimal
//! counterexample. Persisted seeds are re-run before fresh cases on
//! every subsequent run.

pub mod collection;
pub mod gen;
pub mod runner;
pub mod shrink;
pub mod strategy;

pub use gen::Gen;
pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// `proptest`-path compatibility: lets call sites keep writing
/// `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// One-stop import for test modules.
pub mod prelude {
    pub use crate::collection;
    // Imports both the `prop` module (`prop::collection::vec`) and the
    // `prop!` macro — they share the name across namespaces.
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::Gen;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof};
}

/// Define property tests. Accepts an optional `#![cases(N)]` header
/// followed by `fn name(pat in strategy, ...) { body }` items; each
/// becomes a deterministic, shrinking property. Attributes (including
/// the conventional `#[test]`) pass through.
#[macro_export]
macro_rules! prop {
    ( #![cases($cases:expr)] $($rest:tt)* ) => {
        $crate::__prop_tests!(($cases); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__prop_tests!(($crate::runner::DEFAULT_CASES); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_tests {
    ( ($cases:expr); $( $(#[$meta:meta])* fn $name:ident(
          $($arg:pat_param in $strat:expr),+ $(,)?
      ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(
                    ::core::file!(),
                    ::core::stringify!($name),
                    $cases,
                    ($($strat,)+),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
}

/// Assertion macros: plain `assert!` equivalents (the harness catches
/// the panic, shrinks, and reports). Kept under the `proptest` names so
/// property bodies read identically.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose among several strategies producing the same value type;
/// shrinking biases toward the first alternative.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
