//! Collection strategies: `vec` and `hash_map`, sized by a
//! [`SizeRange`] (built from `usize` ranges like `1..40`).
//!
//! Lengths are encoded as a run of continue/stop choices rather than a
//! single length draw: deleting a contiguous `[continue, element…]`
//! chunk from the choice stream then shrinks the collection by exactly
//! one element without disturbing its neighbours, which is what makes
//! minimal counterexamples like `[10]` reachable. The run length is
//! geometric with mean at the middle of the requested range.

use crate::strategy::Strategy;
use crate::Gen;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Requested collection size: `min..=max` inclusive.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.end() >= r.start(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    /// Drive the continue/stop run: `true` means "append another".
    /// Choice 0 is always "stop", so exhausted replay streams produce
    /// the shortest extension and chunk deletion shortens collections.
    fn more(&self, len: usize, g: &mut Gen) -> bool {
        if len < self.min {
            return true;
        }
        if len >= self.max {
            return false;
        }
        let avg_extra = ((self.max - self.min) / 2).max(1) as u64;
        g.draw(avg_extra + 1) != 0
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, g: &mut Gen) -> Self::Value {
        let mut v = Vec::new();
        while self.size.more(v.len(), g) {
            v.push(self.element.generate(g));
        }
        v
    }
}

/// A map with up to `size.max` entries; key collisions merge (matching
/// proptest's semantics of deduplicated keys), so the result may be
/// smaller than the drawn size.
pub fn hash_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> HashMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Eq + Hash,
{
    HashMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

pub struct HashMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for HashMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Eq + Hash,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, g: &mut Gen) -> Self::Value {
        let mut m = HashMap::new();
        let mut drawn = 0usize;
        while self.size.more(drawn, g) {
            let k = self.key.generate(g);
            let v = self.value.generate(g);
            m.insert(k, v);
            drawn += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_stay_in_range() {
        let s = vec(0u32..10, 2..7);
        let mut g = Gen::from_seed(4);
        for _ in 0..500 {
            let v = s.generate(&mut g);
            assert!((2..=6).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn vec_lengths_cover_the_range() {
        let s = vec(0u32..10, 0..5);
        let mut g = Gen::from_seed(6);
        let mut seen = [false; 5];
        for _ in 0..2_000 {
            seen[s.generate(&mut g).len()] = true;
        }
        assert!(seen.iter().all(|&x| x), "lengths hit: {seen:?}");
    }

    #[test]
    fn exact_size_vec() {
        use crate::strategy::any;
        let s = vec(any::<bool>(), 3);
        let mut g = Gen::from_seed(1);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut g).len(), 3);
        }
    }

    #[test]
    fn hash_map_respects_max_and_dedups() {
        let s = hash_map(0i64..5, 0i64..100, 0..40);
        let mut g = Gen::from_seed(11);
        for _ in 0..200 {
            let m = s.generate(&mut g);
            assert!(m.len() <= 5, "only 5 distinct keys possible");
            for k in m.keys() {
                assert!((0..5).contains(k));
            }
        }
    }
}
