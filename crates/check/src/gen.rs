//! The choice source. Strategies draw bounded integers from a [`Gen`];
//! every draw is recorded so a failing case can be replayed and shrunk
//! as a flat `Vec<u64>` choice stream.

use gpl_prng::{Pcg32, RngCore};

/// PCG stream selector for case generation (arbitrary odd-ish constant;
/// fixed so the universe of cases is stable forever).
const STREAM: u64 = 0x6770_6c5f_6368_6563;

pub struct Gen {
    rng: Pcg32,
    /// When `Some`, draws replay these choices instead of the RNG;
    /// exhausted positions yield 0 (the minimal choice).
    replay: Option<Vec<u64>>,
    pos: usize,
    record: Vec<u64>,
}

impl Gen {
    /// Fresh generation from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Pcg32::new(seed, STREAM),
            replay: None,
            pos: 0,
            record: Vec::new(),
        }
    }

    /// Deterministic replay of a recorded (possibly edited) stream.
    pub fn replay(choices: Vec<u64>) -> Self {
        Gen {
            rng: Pcg32::new(0, STREAM),
            replay: Some(choices),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// Uniform draw in `[0, bound)`; `bound >= 1`.
    pub fn draw(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1, "draw bound must be positive");
        let c = match &self.replay {
            Some(r) if self.pos < r.len() => r[self.pos] % bound.max(1),
            Some(_) => 0,
            None => (((self.rng.next_u64() as u128) * (bound as u128)) >> 64) as u64,
        };
        self.pos += 1;
        self.record.push(c);
        c
    }

    /// Full-width draw (for whole-domain `any::<u64>()`-style values).
    pub fn draw_raw(&mut self) -> u64 {
        let c = match &self.replay {
            Some(r) if self.pos < r.len() => r[self.pos],
            Some(_) => 0,
            None => self.rng.next_u64(),
        };
        self.pos += 1;
        self.record.push(c);
        c
    }

    /// The recorded choice stream so far.
    pub fn into_record(self) -> Vec<u64> {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_in_bounds_and_recorded() {
        let mut g = Gen::from_seed(1);
        for bound in [1u64, 2, 3, 10, 1 << 40] {
            for _ in 0..100 {
                assert!(g.draw(bound) < bound);
            }
        }
        assert_eq!(g.into_record().len(), 500);
    }

    #[test]
    fn replay_reproduces_and_clamps() {
        let mut g = Gen::from_seed(9);
        let vals: Vec<u64> = (0..20).map(|_| g.draw(100)).collect();
        let rec = g.into_record();
        let mut r = Gen::replay(rec.clone());
        let again: Vec<u64> = (0..20).map(|_| r.draw(100)).collect();
        assert_eq!(vals, again);
        // Out-of-range replay values clamp by modulo; exhausted → 0.
        let mut r = Gen::replay(vec![105]);
        assert_eq!(r.draw(100), 5);
        assert_eq!(r.draw(100), 0);
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut g = Gen::from_seed(7);
            (0..50).map(|_| g.draw(1 << 32)).collect()
        };
        let b: Vec<u64> = {
            let mut g = Gen::from_seed(7);
            (0..50).map(|_| g.draw(1 << 32)).collect()
        };
        assert_eq!(a, b);
    }
}
