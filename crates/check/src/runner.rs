//! The property runner: replay persisted regression seeds, run fresh
//! deterministic cases, and on failure shrink + persist + panic with
//! the minimal counterexample.

use crate::shrink::shrink;
use crate::strategy::Strategy;
use crate::Gen;
use std::cell::Cell;
use std::io::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

/// Default cases per property (proptest's default).
pub const DEFAULT_CASES: u32 = 256;

thread_local! {
    /// Set while the harness intentionally provokes panics (shrinking),
    /// so the default hook doesn't spam the test output.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// FNV-1a, the repo's standing fingerprint hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Locate the source file from a `file!()` path. `file!()` is relative
/// to the *workspace* root but tests run with CWD at the *package*
/// root, so probe a few parent levels.
fn locate_source(file: &str) -> Option<PathBuf> {
    for up in ["", "..", "../.."] {
        let p = Path::new(up).join(file);
        if p.exists() {
            return Some(p);
        }
    }
    None
}

/// `foo/bar.rs` → `foo/bar.proptest-regressions` (the proptest
/// convention, kept so existing files stay meaningful in place).
fn regressions_path(file: &str) -> Option<PathBuf> {
    locate_source(file).map(|p| p.with_extension("proptest-regressions"))
}

/// Parse persisted seeds for `name`. New-format lines look like
/// `seed 0x1234 # name: shrinks to …`; legacy proptest `cc <hash>`
/// lines cannot be replayed by this harness and are skipped.
fn load_seeds(path: &Path, name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("seed ") else {
            continue;
        };
        let token = rest.split_whitespace().next().unwrap_or("");
        let parsed = token.strip_prefix("0x").map_or_else(
            || token.parse::<u64>().ok(),
            |h| u64::from_str_radix(h, 16).ok(),
        );
        let Some(seed) = parsed else { continue };
        // A `# name:` comment scopes the seed to one property; unscoped
        // seeds are replayed by every property in the file (harmless).
        let scoped_elsewhere = rest
            .split_once('#')
            .map(|(_, c)| {
                let c = c.trim();
                c.contains(':') && !c.starts_with(&format!("{name}:"))
            })
            .unwrap_or(false);
        if !scoped_elsewhere {
            seeds.push(seed);
        }
    }
    seeds
}

fn persist_seed(path: &Path, name: &str, seed: u64, minimal: &str) {
    let fresh = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return; // read-only checkouts still get the panic report
    };
    if fresh {
        let _ = writeln!(
            f,
            "# Seeds for failure cases the gpl-check harness found in the past.\n\
             # Automatically read and re-run before any novel cases are generated.\n\
             # Check this file in so every checkout replays the same regressions.\n#"
        );
    }
    let one_line = minimal.replace('\n', " ");
    let _ = writeln!(f, "seed {seed:#x} # {name}: shrinks to {one_line}");
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Run one case from a seed; `Err` carries the recorded choice stream
/// and the panic message.
#[allow(clippy::type_complexity)]
fn run_seed<S: Strategy>(
    strat: &S,
    test: &impl Fn(S::Value),
    seed: u64,
) -> Result<(), (Vec<u64>, String)> {
    let mut g = Gen::from_seed(seed);
    let value = strat.generate(&mut g);
    let choices = g.into_record();
    QUIET.with(|q| q.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
    QUIET.with(|q| q.set(false));
    r.map_err(|p| (choices, payload_to_string(p)))
}

/// The main entry used by the [`prop!`](crate::prop) macro.
pub fn run<S: Strategy>(file: &str, name: &str, cases: u32, strat: S, test: impl Fn(S::Value)) {
    run_config(file, name, cases, true, strat, test)
}

pub fn run_config<S: Strategy>(
    file: &str,
    name: &str,
    cases: u32,
    persist: bool,
    strat: S,
    test: impl Fn(S::Value),
) {
    install_quiet_hook();
    let cases = env_u64("GPL_CHECK_CASES")
        .map(|n| n as u32)
        .unwrap_or(cases);
    // Hermetic by construction: the universe of cases is a pure function
    // of (file, name) unless GPL_CHECK_SEED overrides the base.
    let base =
        env_u64("GPL_CHECK_SEED").unwrap_or_else(|| fnv1a(format!("{file}::{name}").as_bytes()));

    let regressions = regressions_path(file);
    let persisted: Vec<u64> = regressions
        .as_deref()
        .map(|p| load_seeds(p, name))
        .unwrap_or_default();

    let total = persisted.len() as u64 + cases as u64;
    let seeds = persisted
        .into_iter()
        .chain((0..cases as u64).map(|i| base.wrapping_add(i)));
    for (i, seed) in seeds.enumerate() {
        let Err((choices, msg)) = run_seed(&strat, &test, seed) else {
            continue;
        };
        // Shrink on the recorded choice stream.
        QUIET.with(|q| q.set(true));
        let minimal = shrink(choices, |cand| {
            let mut g = Gen::replay(cand.to_vec());
            let v = strat.generate(&mut g);
            panic::catch_unwind(AssertUnwindSafe(|| test(v))).is_err()
        });
        QUIET.with(|q| q.set(false));
        let mut g = Gen::replay(minimal);
        let minimal_value = strat.generate(&mut g);
        let minimal_dbg = format!("{minimal_value:?}");
        let mut note = String::new();
        if persist {
            if let Some(p) = &regressions {
                persist_seed(p, name, seed, &minimal_dbg);
                note = format!("\nseed persisted to {}", p.display());
            }
        }
        panic!(
            "[gpl-check] property '{name}' failed at case {}/{total} (seed {seed:#x}).\n\
             minimal counterexample: {minimal_dbg}\n\
             original failure: {msg}{note}",
            i + 1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    fn failure_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        install_quiet_hook();
        QUIET.with(|q| q.set(true));
        let r = panic::catch_unwind(f);
        QUIET.with(|q| q.set(false));
        payload_to_string(r.expect_err("property must fail"))
    }

    #[test]
    fn passing_property_runs_all_cases() {
        run_config(
            "tests/x.rs",
            "always_passes",
            64,
            false,
            (0u32..100,),
            |(v,)| {
                assert!(v < 100);
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // Deliberately failing: rejects any vector containing an
        // element >= 10. The minimal counterexample is exactly [10].
        let msg = failure_message(|| {
            run_config(
                "tests/x.rs",
                "no_big_elements",
                256,
                false,
                (collection::vec(0u32..1000, 0..50),),
                |(v,)| {
                    assert!(v.iter().all(|&x| x < 10), "big element in {v:?}");
                },
            )
        });
        assert!(
            msg.contains("minimal counterexample: ([10],)"),
            "shrinker landed elsewhere: {msg}"
        );
    }

    #[test]
    fn scalar_failures_shrink_to_the_boundary() {
        let msg = failure_message(|| {
            run_config(
                "tests/x.rs",
                "boundary",
                256,
                false,
                (0i64..1_000_000,),
                |(v,)| {
                    assert!(v < 31_337);
                },
            )
        });
        assert!(msg.contains("minimal counterexample: (31337,)"), "{msg}");
    }

    #[test]
    fn mapped_strategies_shrink_through_the_map() {
        // prop_map has no inverse; shrinking must happen on choices.
        #[derive(Debug)]
        struct Wrap(u64);
        let strat = (0u64..100_000).prop_map(Wrap);
        let msg = failure_message(|| {
            run_config("tests/x.rs", "wrapped", 256, false, (strat,), |(w,)| {
                assert!(w.0 < 777);
            })
        });
        assert!(
            msg.contains("minimal counterexample: (Wrap(777),)"),
            "{msg}"
        );
    }

    #[test]
    fn seed_lines_parse_and_filter() {
        let dir = std::env::temp_dir().join("gpl-check-selftest");
        let _ = std::fs::create_dir_all(&dir);
        let p = dir.join("r.proptest-regressions");
        std::fs::write(
            &p,
            "# comment\n\
             cc 5c77b94e36e6bc9728955ac1b80212157992f70a6c8062995211fd4b7fb138e9 # legacy\n\
             seed 0x2a # mine: shrinks to []\n\
             seed 7 # other: shrinks to []\n\
             seed 9\n",
        )
        .unwrap();
        assert_eq!(load_seeds(&p, "mine"), vec![42, 9]);
        assert_eq!(load_seeds(&p, "other"), vec![7, 9]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn deterministic_across_invocations() {
        // The exact failing seed must be stable run over run.
        let grab = || {
            failure_message(|| {
                run_config("tests/x.rs", "det", 256, false, (0u32..1_000,), |(v,)| {
                    assert!(v < 900);
                })
            })
        };
        let a = grab();
        let b = grab();
        assert_eq!(a, b);
    }
}
