//! Strategies: composable descriptions of how to draw a value from a
//! [`Gen`]. The API mirrors the slice of `proptest` this repository
//! uses — integer ranges, `any`, `Just`, tuples, `prop_map`, and
//! `prop_oneof` unions — so porting a property is an import change.

use crate::Gen;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub trait Strategy {
    type Value: Debug;

    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Transform generated values. Shrinking still operates on the
    /// underlying choices, so mapped strategies shrink for free.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        self.0.generate(g)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives of one value type; shrinks
/// toward the first.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        let i = g.draw(self.options.len() as u64) as usize;
        self.options[i].generate(g)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, g: &mut Gen) -> U {
        (self.f)(self.inner.generate(g))
    }
}

/// Whole-domain strategy for simple types: `any::<bool>()`,
/// `any::<i64>()`, …
pub fn any<T: ArbValue>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: ArbValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        T::arb(g)
    }
}

/// Types with a canonical whole-domain draw.
pub trait ArbValue: Debug + Sized {
    fn arb(g: &mut Gen) -> Self;
}

impl ArbValue for bool {
    fn arb(g: &mut Gen) -> bool {
        g.draw(2) == 1
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl ArbValue for $ty {
            fn arb(g: &mut Gen) -> $ty {
                g.draw_raw() as $ty
            }
        }
    )*};
}
arb_int! { i8, u8, i16, u16, i32, u32, i64, u64, isize, usize }

/// Integer ranges are strategies: `-100i64..100`, `0u32..=50`.
macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, g: &mut Gen) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(g.draw(span) as $ty)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, g: &mut Gen) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    lo.wrapping_add(g.draw_raw() as $ty)
                } else {
                    lo.wrapping_add(g.draw(span as u64) as $ty)
                }
            }
        }
    )*};
}
range_strategy! { i8, u8, i16, u16, i32, u32, i64, u64, isize, usize }

macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(g),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::from_seed(3);
        for _ in 0..2_000 {
            let v = (-50i64..50).generate(&mut g);
            assert!((-50..50).contains(&v));
            let w = (0u16..=9).generate(&mut g);
            assert!(w <= 9);
            let x = (i64::MIN..=i64::MAX).generate(&mut g);
            let _ = x;
        }
    }

    #[test]
    fn map_and_union_compose() {
        let s = crate::prop_oneof![(0u32..10).prop_map(|v| v * 2), Just(99u32),];
        let mut g = Gen::from_seed(5);
        let mut saw_just = false;
        let mut saw_even = false;
        for _ in 0..200 {
            match s.generate(&mut g) {
                99 => saw_just = true,
                v => {
                    assert!(v < 20 && v % 2 == 0);
                    saw_even = true;
                }
            }
        }
        assert!(saw_just && saw_even);
    }

    #[test]
    fn tuples_and_any() {
        let mut g = Gen::from_seed(8);
        let (a, b, c) = (0u32..4, any::<bool>(), -5i32..=5).generate(&mut g);
        assert!(a < 4);
        let _ = b;
        assert!((-5..=5).contains(&c));
    }

    #[test]
    fn replayed_generation_is_identical() {
        let s = crate::collection::vec((0u32..100, any::<bool>()), 0..20);
        let mut g = Gen::from_seed(21);
        let v1 = s.generate(&mut g);
        let rec = g.into_record();
        let mut r = Gen::replay(rec);
        let v2 = s.generate(&mut r);
        assert_eq!(format!("{v1:?}"), format!("{v2:?}"));
    }
}
