//! Serving-layer integration tests: worker pools, admission control,
//! plan caching, and the determinism contract at small scale. (The
//! full 32-query 1/2/8-worker determinism pin and the failure-mode
//! suite live in the workspace-level `tests/`.)

use gpl_core::ExecMode;
use gpl_model::GammaTable;
use gpl_serve::{PlanCache, QueryRequest, ServeConfig, Server};
use gpl_sim::amd_a10;
use gpl_tpch::TpchDb;
use std::sync::Arc;

fn gamma() -> Arc<GammaTable> {
    Arc::new(GammaTable::calibrate_grid(
        &amd_a10(),
        vec![1, 4, 16],
        vec![16, 64],
        vec![256 << 10, 2 << 20, 16 << 20],
    ))
}

fn server(workers: usize) -> Server {
    Server::start(
        ServeConfig {
            workers,
            plan_cache_capacity: 32,
            record_traces: false,
            ..ServeConfig::default()
        },
        amd_a10(),
        Arc::new(TpchDb::at_scale(0.002)),
        gamma(),
    )
}

const SIMPLE: &str = "select sum(l_extendedprice * (1 - l_discount)) as revenue \
    from lineitem where l_shipdate <= date '1998-11-01'";
const GROUPED: &str = "select l_returnflag, count(*) as cnt from lineitem \
    group by l_returnflag order by l_returnflag";

#[test]
fn batch_results_are_complete_and_ordered() {
    let srv = server(2);
    let reqs: Vec<QueryRequest> = (0..6)
        .map(|i| QueryRequest::new(i, if i % 2 == 0 { SIMPLE } else { GROUPED }, ExecMode::Gpl))
        .collect();
    let responses = srv.run_batch(reqs);
    assert_eq!(responses.len(), 6);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.id, i as u64, "sorted by id");
        let res = r.result.as_ref().expect("query succeeds");
        assert!(!res.output.rows.is_empty());
        assert!(res.cycles > 0);
    }
    let (queued, running, done) = srv.gauges();
    assert_eq!((queued, running, done), (0, 0, 6));
}

#[test]
fn repeat_queries_hit_the_plan_cache_with_identical_answers() {
    let srv = server(2);
    let reqs: Vec<QueryRequest> = (0..8)
        .map(|i| QueryRequest::new(i, SIMPLE, ExecMode::Gpl))
        .collect();
    let responses = srv.run_batch(reqs);
    let hits = responses.iter().filter(|r| r.plan_cache_hit).count();
    let (cache_hits, cache_misses) = srv.plan_cache().stats();
    // Two cold workers may race on the first queries, so allow more
    // than one miss — but most of the batch must be served hot.
    assert!(hits >= 6, "{hits} hits of 8");
    assert_eq!(cache_hits + cache_misses, 8);
    assert!(cache_hits >= 6);
    let first = responses[0].result.as_ref().unwrap();
    for r in &responses[1..] {
        let res = r.result.as_ref().unwrap();
        assert_eq!(res.output, first.output, "cache must not change results");
        assert_eq!(res.cycles, first.cycles);
    }
}

#[test]
fn all_three_modes_agree_through_the_server() {
    let srv = server(3);
    let reqs = vec![
        QueryRequest::new(0, GROUPED, ExecMode::Kbe),
        QueryRequest::new(1, GROUPED, ExecMode::GplNoCe),
        QueryRequest::new(2, GROUPED, ExecMode::Gpl),
    ];
    let responses = srv.run_batch(reqs);
    let base = responses[0].result.as_ref().unwrap();
    for r in &responses[1..] {
        assert_eq!(r.result.as_ref().unwrap().output, base.output);
    }
}

#[test]
fn high_priority_jumps_the_queue() {
    // One worker; the batch is admitted atomically, so execution order
    // is exactly: high-priority requests in submit order, then normal
    // ones. Collect in completion order to observe it.
    let srv = server(1);
    let mut reqs: Vec<QueryRequest> = (0..4)
        .map(|i| QueryRequest::new(i, SIMPLE, ExecMode::Kbe))
        .collect();
    reqs.push(QueryRequest::new(99, GROUPED, ExecMode::Kbe).high_priority());
    srv.submit_all(reqs);
    let responses = srv.collect(5);
    assert_eq!(
        responses[0].id, 99,
        "the high-priority request must run first"
    );
}

#[test]
fn plan_errors_are_responses_not_panics() {
    let srv = server(1);
    let reqs = vec![
        QueryRequest::new(0, "select frobnicate from nowhere", ExecMode::Gpl),
        QueryRequest::new(1, SIMPLE, ExecMode::Gpl),
    ];
    let responses = srv.run_batch(reqs);
    assert!(matches!(
        responses[0].result,
        Err(gpl_serve::ServeError::Plan(_))
    ));
    assert!(
        responses[1].result.is_ok(),
        "bad SQL must not poison the pool"
    );
}

#[test]
fn traced_batch_merges_per_query_tracks() {
    let srv = Server::start(
        ServeConfig {
            workers: 2,
            plan_cache_capacity: 8,
            record_traces: true,
            ..ServeConfig::default()
        },
        amd_a10(),
        Arc::new(TpchDb::at_scale(0.002)),
        gamma(),
    );
    let reqs = vec![
        QueryRequest::new(0, SIMPLE, ExecMode::Gpl),
        QueryRequest::new(1, GROUPED, ExecMode::Gpl),
    ];
    let report = srv.run_batch_report(reqs);
    for r in &report.responses {
        let dump = r.trace.as_ref().expect("tracing enabled");
        assert!(!dump.spans.is_empty(), "q{} recorded no spans", r.id);
    }
    let merged = srv_trace_tracks(&report);
    assert!(merged.iter().any(|t| t.starts_with("q0/")), "{merged:?}");
    assert!(merged.iter().any(|t| t.starts_with("q1/")));
    let m = report.metrics();
    assert!(m.get("serve.done", &[]).is_some());
}

fn srv_trace_tracks(report: &gpl_serve::BatchReport) -> Vec<String> {
    report.merged_trace().track_names()
}

#[test]
fn eviction_keeps_the_cache_bounded_and_correct() {
    let db = TpchDb::at_scale(0.002);
    let spec = amd_a10();
    let g = gamma();
    let cache = PlanCache::new(2);
    let sqls = [SIMPLE, GROUPED, "select count(*) as c from orders"];
    for sql in &sqls {
        let (_, hit) = cache
            .get_or_plan(&db, &spec, &g, sql, ExecMode::Gpl)
            .unwrap();
        assert!(!hit);
    }
    assert_eq!(cache.len(), 2, "capacity bound holds");
    // The oldest entry (SIMPLE) was evicted; re-planning it is a miss
    // that evicts GROUPED in turn, but answers stay identical.
    let (entry, hit) = cache
        .get_or_plan(&db, &spec, &g, SIMPLE, ExecMode::Gpl)
        .unwrap();
    assert!(!hit);
    let fresh = gpl_sql::compile_optimized(&db, SIMPLE).unwrap();
    assert_eq!(entry.plan.display, fresh.display);
}
