//! Per-device circuit breaking.
//!
//! Each worker owns one simulated device; a device that keeps faulting
//! should stop receiving traffic instead of burning every query's retry
//! budget. The breaker is the classic three-state machine, driven
//! entirely by *simulated* device cycles so transitions are
//! deterministic and testable:
//!
//! * **Closed** — normal operation. Consecutive device faults are
//!   counted; [`BreakerConfig::trip_after`] of them in a row trip the
//!   breaker open. Any success resets the streak.
//! * **Open** — requests are rejected without touching the device
//!   ([`crate::ServeError::CircuitOpen`]), each charging
//!   [`BreakerConfig::reject_cost_cycles`] to the worker's device clock
//!   so the cool-down makes progress even under pure rejection load.
//!   After [`BreakerConfig::open_cycles`] the breaker half-opens.
//! * **HalfOpen** — exactly one probe query is admitted. Success closes
//!   the breaker; a device fault re-opens it for another full cool-down.

/// Breaker tuning, in deterministic units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive device faults (per worker) that trip the breaker.
    pub trip_after: u32,
    /// Simulated device cycles the breaker stays open before admitting
    /// a half-open probe.
    pub open_cycles: u64,
    /// Device cycles charged to the worker's clock per rejected request
    /// (models the admission check; guarantees the cool-down elapses).
    pub reject_cost_cycles: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            open_cycles: 1 << 22,
            reject_cost_cycles: 4_096,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Cumulative transition counts, for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/HalfOpen → Open transitions (trips and failed probes).
    pub opens: u64,
    /// Open → HalfOpen transitions (cool-down expiries).
    pub half_opens: u64,
    /// HalfOpen → Closed transitions (successful probes).
    pub closes: u64,
    /// Requests rejected while open.
    pub rejections: u64,
}

/// One worker's breaker: plain sequential state, no interior mutability
/// — the worker thread owns it.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_faults: u32,
    /// Device-clock reading when the breaker last opened.
    opened_at: u64,
    stats: BreakerStats,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_faults: 0,
            opened_at: 0,
            stats: BreakerStats::default(),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Gate one request at device-clock `now`. `false` means reject
    /// without executing (and charge the reject cost to the clock).
    pub fn admit(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.opened_at.saturating_add(self.cfg.open_cycles) {
                    self.state = BreakerState::HalfOpen;
                    self.stats.half_opens += 1;
                    true
                } else {
                    self.stats.rejections += 1;
                    false
                }
            }
        }
    }

    /// The admitted query completed without a device fault.
    pub fn on_success(&mut self) {
        self.consecutive_faults = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.stats.closes += 1;
        }
    }

    /// The admitted query died of (or absorbed retries into) a device
    /// fault at device-clock `now`.
    pub fn on_fault(&mut self, now: u64) {
        self.consecutive_faults += 1;
        match self.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open.
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.stats.opens += 1;
            }
            BreakerState::Closed if self.consecutive_faults >= self.cfg.trip_after => {
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.stats.opens += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            trip_after: 3,
            open_cycles: 1_000,
            reject_cost_cycles: 100,
        }
    }

    #[test]
    fn trips_after_consecutive_faults_only() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_fault(10);
        b.on_fault(20);
        b.on_success(); // streak broken
        b.on_fault(30);
        b.on_fault(40);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_fault(50);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().opens, 1);
    }

    #[test]
    fn open_rejects_until_cooldown_then_half_opens() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_fault(500);
        }
        assert!(!b.admit(600), "still cooling down");
        assert!(!b.admit(1_499));
        assert_eq!(b.stats().rejections, 2);
        assert!(b.admit(1_500), "cool-down over: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.stats().half_opens, 1);
    }

    #[test]
    fn half_open_probe_outcome_decides() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_fault(0);
        }
        assert!(b.admit(1_000));
        b.on_fault(1_100); // failed probe
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(1_200), "new full cool-down from the re-open");
        assert!(b.admit(2_100));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().closes, 1);
        assert!(b.admit(2_200), "closed admits freely");
    }
}
