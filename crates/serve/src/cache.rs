//! The shared plan/config cache.
//!
//! Planning a query costs two searches: join-order optimization at
//! compile time and the Section-4 knob search (<5 ms each, but per
//! query). A server answering the same normalized SQL thousands of
//! times pays both once: [`PlanCache`] memoizes the compiled
//! [`QueryPlan`] *and* the optimizer's chosen [`QueryConfig`], keyed by
//! `normalized SQL × device × exec mode`. The config half additionally
//! flows through `gpl-model`'s [`SearchCache`], whose hit/miss counters
//! the batch report surfaces.

use gpl_core::shard::{DevicePool, ShardPlan};
use gpl_core::{ExecMode, QueryConfig, QueryPlan};
use gpl_model::{
    build_models, estimate_stats, optimize_models_cached, place_query, GammaTable, Placement,
    SearchCache,
};
use gpl_sim::DeviceSpec;
use gpl_tpch::TpchDb;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One cached planning outcome.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    pub plan: QueryPlan,
    pub config: QueryConfig,
    /// The cost model's Eq. 8 estimate for `config`, in cycles.
    pub estimate: f64,
}

/// One cached sharded-planning outcome: the compiled plan plus the
/// heterogeneous placement pass's full output (per-stage device choice,
/// per-device tuned configs, and the modeled-cycle matrix).
#[derive(Debug, Clone)]
pub struct ShardEntry {
    pub plan: QueryPlan,
    pub placement: Placement,
}

struct PlanCacheInner {
    map: HashMap<String, Arc<PlanEntry>>,
    /// Recency order, least-recent first.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

struct ShardCacheInner {
    map: HashMap<String, Arc<ShardEntry>>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

/// Thread-safe LRU cache of [`PlanEntry`]s shared by all workers. When
/// the server runs sharded, a sibling map caches [`ShardEntry`]s under
/// keys that add the pool and the `ExecMode`-orthogonal [`ShardPlan`]
/// component.
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    sharded: Mutex<ShardCacheInner>,
    search: SearchCache,
    capacity: usize,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(PlanCacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            sharded: Mutex::new(ShardCacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            search: SearchCache::new(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Normalize SQL for cache keying: collapse runs of whitespace and
    /// strip a trailing semicolon, so reformatted copies of one query
    /// share an entry. Case is preserved — string literals are
    /// case-sensitive and keywords are cheap to leave alone.
    pub fn normalize(sql: &str) -> String {
        let mut out = String::with_capacity(sql.len());
        let mut in_ws = true; // also trims leading whitespace
        for c in sql.chars() {
            if c.is_whitespace() {
                if !in_ws {
                    out.push(' ');
                    in_ws = true;
                }
            } else {
                out.push(c);
                in_ws = false;
            }
        }
        while out.ends_with(' ') || out.ends_with(';') {
            out.pop();
        }
        out
    }

    fn key(spec: &DeviceSpec, mode: ExecMode, normalized: &str) -> String {
        format!("{}\u{1f}{}\u{1f}{normalized}", spec.name, mode.name())
    }

    /// Look up (or compile + optimize and insert) the plan for `sql`.
    /// Returns the entry and whether it was a cache hit. The cache lock
    /// is *not* held while planning, so a slow miss never blocks other
    /// workers; two workers racing on the same cold query both plan it
    /// (deterministically identically) and the second insert wins.
    pub fn get_or_plan(
        &self,
        db: &TpchDb,
        spec: &DeviceSpec,
        gamma: &GammaTable,
        sql: &str,
        mode: ExecMode,
    ) -> Result<(Arc<PlanEntry>, bool), String> {
        let normalized = Self::normalize(sql);
        let key = Self::key(spec, mode, &normalized);
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            if let Some(entry) = inner.map.get(&key).cloned() {
                inner.hits += 1;
                inner.order.retain(|k| k != &key);
                inner.order.push_back(key);
                return Ok((entry, true));
            }
            inner.misses += 1;
        }
        let plan = gpl_sql::compile_optimized(db, sql).map_err(|e| e.to_string())?;
        let stats = estimate_stats(db, &plan);
        let models = build_models(db, &plan, &stats, spec);
        let search_key = format!("{}\u{1f}{normalized}", mode.name());
        let out = optimize_models_cached(spec, gamma, &plan, &models, &self.search, &search_key);
        let mut config = out.config;
        // Cross-segment pipelining is a post-pass over the searched
        // config: only the pipelined mode consults the overlap predicate,
        // so the three sequential modes' cached outcomes stay
        // byte-identical to the base search.
        if mode == ExecMode::GplPipelined {
            gpl_model::attach_overlap(spec, gamma, &plan, &models, &mut config);
        }
        let entry = Arc::new(PlanEntry {
            plan,
            config,
            estimate: out.estimate,
        });
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if inner.map.insert(key.clone(), entry.clone()).is_none() {
            inner.order.push_back(key);
        } else {
            inner.order.retain(|k| k != &key);
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&victim);
        }
        Ok((entry, false))
    }

    /// The sharded sibling of [`PlanCache::key`]: the same mode ×
    /// normalized-SQL core plus the pool identity and the
    /// `ExecMode`-orthogonal shard-plan component, so one server can
    /// cache the same query at several shard counts side by side.
    fn shard_key(pool: &DevicePool, shard: &ShardPlan, mode: ExecMode, normalized: &str) -> String {
        format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{normalized}",
            pool.key(),
            shard.cache_key(),
            mode.name()
        )
    }

    /// Look up (or compile + place and insert) the sharded plan for
    /// `sql`: the heterogeneous placement pass runs once per (pool,
    /// shard plan, mode, SQL) and its full output — including the
    /// per-device tuned configs — is cached with the plan. Placement is
    /// a pure function of its inputs, so a cache hit returns exactly
    /// what a fresh search would (the drift guard in
    /// `tests/cross_engine.rs` pins this).
    pub fn get_or_place(
        &self,
        db: &TpchDb,
        pool: &DevicePool,
        gammas: &[GammaTable],
        sql: &str,
        mode: ExecMode,
        shard: &ShardPlan,
    ) -> Result<(Arc<ShardEntry>, bool), String> {
        let normalized = Self::normalize(sql);
        let key = Self::shard_key(pool, shard, mode, &normalized);
        {
            let mut inner = self.sharded.lock().expect("shard cache poisoned");
            if let Some(entry) = inner.map.get(&key).cloned() {
                inner.hits += 1;
                inner.order.retain(|k| k != &key);
                inner.order.push_back(key);
                return Ok((entry, true));
            }
            inner.misses += 1;
        }
        let plan = gpl_sql::compile_optimized(db, sql).map_err(|e| e.to_string())?;
        let placement = place_query(pool, gammas, db, &plan, None);
        let entry = Arc::new(ShardEntry { plan, placement });
        let mut inner = self.sharded.lock().expect("shard cache poisoned");
        if inner.map.insert(key.clone(), entry.clone()).is_none() {
            inner.order.push_back(key);
        } else {
            inner.order.retain(|k| k != &key);
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&victim);
        }
        Ok((entry, false))
    }

    /// Cumulative `(hits, misses)` of the sharded plan cache.
    pub fn shard_stats(&self) -> (u64, u64) {
        let inner = self.sharded.lock().expect("shard cache poisoned");
        (inner.hits, inner.misses)
    }

    /// Cumulative `(hits, misses)` of the plan cache.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("plan cache poisoned");
        (inner.hits, inner.misses)
    }

    /// Cumulative `(hits, misses)` of the inner config [`SearchCache`].
    pub fn search_stats(&self) -> (u64, u64) {
        self.search.stats()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_whitespace_and_trailing_semicolon() {
        assert_eq!(
            PlanCache::normalize("  select\n\t sum(x)  from t ; "),
            "select sum(x) from t"
        );
        assert_eq!(
            PlanCache::normalize("select 'A  B'"),
            "select 'A B'",
            "normalization is lexical, not literal-aware; keys only"
        );
    }
}
