//! The multi-query scheduler: a bounded pool of worker threads behind a
//! two-class (high/normal) FIFO queue.
//!
//! Each worker owns its own simulator: it builds a fresh
//! [`ExecContext`] per query over the shared `Arc<TpchDb>`, so a
//! query's simulated cycle count is a pure function of the request —
//! never of which worker ran it, what ran before it, or how many
//! workers exist. That is the scheduler's determinism contract
//! (`tests/determinism.rs` pins it): concurrency changes wall-clock
//! latencies only.

use crate::cache::PlanCache;
use crate::report::BatchReport;
use crate::request::{Priority, QueryRequest, QueryResponse, QueryResult, ServeError};
use gpl_core::{try_run_query, ExecContext, ExecLimits};
use gpl_model::GammaTable;
use gpl_obs::Recorder;
use gpl_sim::DeviceSpec;
use gpl_tpch::TpchDb;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each owns one simulator at a time).
    pub workers: usize,
    /// [`PlanCache`] capacity in entries.
    pub plan_cache_capacity: usize,
    /// Attach a per-query recorder and ship its dump in the response
    /// (merged into a multi-track trace by the batch report).
    pub record_traces: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            plan_cache_capacity: 64,
            record_traces: false,
        }
    }
}

struct Job {
    req: QueryRequest,
    submitted: Instant,
}

struct Queue {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    spec: DeviceSpec,
    db: Arc<TpchDb>,
    gamma: Arc<GammaTable>,
    plans: Arc<PlanCache>,
    queue: Mutex<Queue>,
    available: Condvar,
    record_traces: bool,
    /// `serve.queued/running/done` gauge backing (snapshot into the
    /// metrics registry by [`BatchReport::metrics`]).
    queued: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
}

/// The query server: owns the worker pool, the admission queue and the
/// shared [`PlanCache`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    results: Mutex<Receiver<QueryResponse>>,
}

impl Server {
    /// Start `config.workers` workers over a shared database and
    /// calibrated Γ table.
    pub fn start(
        config: ServeConfig,
        spec: DeviceSpec,
        db: Arc<TpchDb>,
        gamma: Arc<GammaTable>,
    ) -> Self {
        let shared = Arc::new(Shared {
            spec,
            db,
            gamma,
            plans: Arc::new(PlanCache::new(config.plan_cache_capacity)),
            queue: Mutex::new(Queue {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            record_traces: config.record_traces,
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            done: AtomicU64::new(0),
        });
        let (tx, rx) = channel();
        let workers = (0..config.workers.max(1))
            .map(|idx| {
                let shared = shared.clone();
                let tx: Sender<QueryResponse> = tx.clone();
                std::thread::Builder::new()
                    .name(format!("gpl-serve-{idx}"))
                    .spawn(move || worker_loop(idx, &shared, &tx))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            workers,
            results: Mutex::new(rx),
        }
    }

    /// The shared plan cache (for stats and tests).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.shared.plans
    }

    /// Current `(queued, running, done)` gauge values.
    pub fn gauges(&self) -> (u64, u64, u64) {
        (
            self.shared.queued.load(Ordering::Relaxed),
            self.shared.running.load(Ordering::Relaxed),
            self.shared.done.load(Ordering::Relaxed),
        )
    }

    /// Enqueue one request.
    pub fn submit(&self, req: QueryRequest) {
        self.submit_all(std::iter::once(req));
    }

    /// Enqueue a batch atomically: the queue lock is held across every
    /// push, so no worker observes a partially-admitted batch. With one
    /// worker this makes the *execution order* of a batch fully
    /// deterministic: all high-priority requests in submit order, then
    /// all normal ones.
    pub fn submit_all(&self, reqs: impl IntoIterator<Item = QueryRequest>) {
        let mut n = 0u64;
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            for req in reqs {
                let job = Job {
                    req,
                    submitted: Instant::now(),
                };
                match job.req.priority {
                    Priority::High => q.high.push_back(job),
                    Priority::Normal => q.normal.push_back(job),
                }
                n += 1;
            }
        }
        self.shared.queued.fetch_add(n, Ordering::Relaxed);
        self.shared.available.notify_all();
    }

    /// Collect `n` responses, blocking until all have arrived. Responses
    /// arrive in completion order (worker-count dependent).
    pub fn collect(&self, n: usize) -> Vec<QueryResponse> {
        let rx = self.results.lock().expect("results poisoned");
        (0..n)
            .map(|_| rx.recv().expect("worker pool alive"))
            .collect()
    }

    /// Submit a batch, wait for every response, and return them sorted
    /// by request id — the deterministic view of a workload.
    pub fn run_batch(&self, reqs: Vec<QueryRequest>) -> Vec<QueryResponse> {
        let n = reqs.len();
        self.submit_all(reqs);
        let mut responses = self.collect(n);
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// [`Server::run_batch`] wrapped into a [`BatchReport`] with
    /// throughput/latency aggregates and cache statistics.
    pub fn run_batch_report(&self, reqs: Vec<QueryRequest>) -> BatchReport {
        let workers = self.workers.len();
        let t0 = Instant::now();
        let responses = self.run_batch(reqs);
        BatchReport {
            responses,
            workers,
            wall: t0.elapsed(),
            plan_cache: self.shared.plans.stats(),
            search_cache: self.shared.plans.search_stats(),
        }
    }

    /// Stop accepting work, drain the queue, and join every worker.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(idx: usize, shared: &Shared, tx: &Sender<QueryResponse>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = q.high.pop_front().or_else(|| q.normal.pop_front()) {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("queue poisoned");
            }
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        shared.running.fetch_add(1, Ordering::Relaxed);
        let resp = process(idx, shared, job);
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared.done.fetch_add(1, Ordering::Relaxed);
        if tx.send(resp).is_err() {
            // Server dropped the receiver; nothing left to report to.
            return;
        }
    }
}

fn process(idx: usize, shared: &Shared, job: Job) -> QueryResponse {
    let queue_wall = job.submitted.elapsed();
    let req = job.req;
    let plan_t0 = Instant::now();
    let planned =
        shared
            .plans
            .get_or_plan(&shared.db, &shared.spec, &shared.gamma, &req.sql, req.mode);
    let plan_wall = plan_t0.elapsed();
    let (entry, hit) = match planned {
        Ok(v) => v,
        Err(msg) => {
            return QueryResponse {
                id: req.id,
                mode: req.mode,
                result: Err(ServeError::Plan(msg)),
                plan_cache_hit: false,
                plan_wall,
                queue_wall,
                exec_wall: Default::default(),
                worker: idx,
                trace: None,
            }
        }
    };
    // A fresh context per query: fresh simulator clock, cold data cache,
    // private memory map — the isolation that makes cycles per-query
    // pure. Layout installation is cheap (region bookkeeping, no copy).
    let exec_t0 = Instant::now();
    let mut ctx = ExecContext::with_shared(shared.spec.clone(), shared.db.clone());
    let rec = shared.record_traces.then(Recorder::new);
    if let Some(r) = &rec {
        ctx.sim.attach_recorder(r.clone());
    }
    let limits = ExecLimits {
        max_cycles: req.max_cycles,
        cancel: req.cancel.clone(),
    };
    let result = try_run_query(&mut ctx, &entry.plan, req.mode, &entry.config, &limits)
        .map(|run| QueryResult {
            output: run.output,
            cycles: run.cycles,
        })
        .map_err(ServeError::Exec);
    QueryResponse {
        id: req.id,
        mode: req.mode,
        result,
        plan_cache_hit: hit,
        plan_wall,
        queue_wall,
        exec_wall: exec_t0.elapsed(),
        worker: idx,
        trace: rec.map(|r| r.dump()),
    }
}
