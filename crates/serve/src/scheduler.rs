//! The multi-query scheduler: a bounded pool of worker threads behind a
//! two-class (high/normal) FIFO queue.
//!
//! Each worker owns its own simulator: it builds a fresh
//! [`ExecContext`] per query over the shared `Arc<TpchDb>`, so a
//! query's simulated cycle count is a pure function of the request —
//! never of which worker ran it, what ran before it, or how many
//! workers exist. That is the scheduler's determinism contract
//! (`tests/determinism.rs` pins it): concurrency changes wall-clock
//! latencies only.

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::cache::PlanCache;
use crate::report::BatchReport;
use crate::request::{KernelRows, Priority, QueryRequest, QueryResponse, QueryResult, ServeError};
use crate::telemetry::BreakerTransition;
use gpl_core::shard::{try_run_query_sharded, DevicePool, ShardFaults, ShardPlan};
use gpl_core::{try_run_query_recovering, ExecContext, ExecError, ExecLimits, RecoveryPolicy};
use gpl_model::GammaTable;
use gpl_obs::Recorder;
use gpl_sim::{DeviceSpec, FaultPlan, FaultSpec};
use gpl_tpch::TpchDb;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Seeded fault injection for every query the server runs. The
/// per-query plan seed is `seed ^ (id * φ64)`, so a query's fault
/// schedule is a pure function of (config seed, request id) —
/// independent of worker count and arrival order, like every other
/// deterministic per-query fact.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    pub seed: u64,
    pub spec: FaultSpec,
}

/// Per-query fault-plan seed: splitmix-style id mixing keeps nearby ids'
/// PCG streams uncorrelated.
pub(crate) fn per_query_seed(seed: u64, id: u64) -> u64 {
    seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Multi-device serving: run every query sharded across a heterogeneous
/// [`DevicePool`] instead of on the single worker device. The placement
/// pass (cached with the plan) picks CPU vs GPU per stage; shards
/// round-robin over live devices of the chosen class.
#[derive(Debug, Clone)]
pub struct ShardServeConfig {
    pub pool: DevicePool,
    /// One calibrated Γ table per pool device, in pool order.
    pub gammas: Vec<GammaTable>,
    /// Shard count + sharder, applied to every query.
    pub plan: ShardPlan,
    /// Straggler hedging: shards observed past `modeled × threshold`
    /// cycles get a speculative backup on the modeled-cheapest other
    /// live device (the modeled costs come from the cached placement).
    /// Per-query cycle budgets ([`QueryRequest::max_cycles`]) gate the
    /// duplicate launch. `None` disables hedging.
    pub hedge_threshold: Option<f64>,
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each owns one simulator at a time).
    pub workers: usize,
    /// [`PlanCache`] capacity in entries.
    pub plan_cache_capacity: usize,
    /// Attach a per-query recorder and ship its dump in the response
    /// (merged into a multi-track trace by the batch report).
    pub record_traces: bool,
    /// Load shedding: reject submissions once the admission queue holds
    /// this many jobs ([`ExecError::Rejected`]). `None` = unbounded.
    pub max_queue_depth: Option<usize>,
    /// Inject seeded faults into every query's simulator.
    pub faults: Option<FaultConfig>,
    /// Recovery stack applied to every query (retries / degradation /
    /// last-resort KBE). `None` = first fault surfaces as an error.
    pub recovery: Option<RecoveryPolicy>,
    /// Per-worker circuit breaker over device faults. Under
    /// [`ServeConfig::sharding`] the same config instead seeds one
    /// breaker *per pool device* per worker; a tripped device is
    /// excluded from that worker's next sharded runs until it cools
    /// down.
    pub breaker: Option<BreakerConfig>,
    /// Run queries sharded over a heterogeneous device pool. `None`
    /// (the default) keeps the classic single-device path — and its
    /// pinned fingerprints — untouched.
    pub sharding: Option<ShardServeConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            plan_cache_capacity: 64,
            record_traces: false,
            max_queue_depth: None,
            faults: None,
            recovery: None,
            breaker: None,
            sharding: None,
        }
    }
}

struct Job {
    req: QueryRequest,
    submitted: Instant,
}

struct Queue {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    spec: DeviceSpec,
    db: Arc<TpchDb>,
    gamma: Arc<GammaTable>,
    plans: Arc<PlanCache>,
    queue: Mutex<Queue>,
    available: Condvar,
    record_traces: bool,
    faults: Option<FaultConfig>,
    recovery: Option<RecoveryPolicy>,
    breaker: Option<BreakerConfig>,
    sharding: Option<ShardServeConfig>,
    /// `serve.queued/running/done` gauge backing (snapshot into the
    /// metrics registry by [`BatchReport::metrics`]).
    queued: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    /// Requests rejected by load shedding / an open breaker (the
    /// response stream carries the structured errors; these are the
    /// cheap aggregate gauges).
    sheds: AtomicU64,
    breaker_rejections: AtomicU64,
    breaker_opens: AtomicU64,
    /// Cumulative wall-clock nanoseconds workers spent processing jobs
    /// (the wall-clock plane: non-deterministic, never fingerprinted —
    /// the denominator for worker-utilization telemetry).
    busy_wall_ns: AtomicU64,
    /// Breaker state changes across all workers, each stamped with the
    /// owning worker's device clock (telemetry; fully deterministic with
    /// one worker).
    breaker_transitions: Mutex<Vec<BreakerTransition>>,
}

/// The query server: owns the worker pool, the admission queue and the
/// shared [`PlanCache`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    max_queue_depth: Option<usize>,
    /// Producer side of the response stream, for responses that never
    /// reach a worker (shed at admission, drained at shutdown).
    tx: Sender<QueryResponse>,
    results: Mutex<Receiver<QueryResponse>>,
}

/// A response manufactured outside any worker (shed / drained).
fn synthetic_response(req: QueryRequest, err: ExecError) -> QueryResponse {
    QueryResponse {
        id: req.id,
        mode: req.mode,
        result: Err(ServeError::Exec(err)),
        plan_cache_hit: false,
        plan_wall: Default::default(),
        queue_wall: Default::default(),
        exec_wall: Default::default(),
        worker: usize::MAX,
        trace: None,
        recovery: Default::default(),
    }
}

impl Server {
    /// Start `config.workers` workers over a shared database and
    /// calibrated Γ table.
    pub fn start(
        config: ServeConfig,
        spec: DeviceSpec,
        db: Arc<TpchDb>,
        gamma: Arc<GammaTable>,
    ) -> Self {
        if let Some(sc) = &config.sharding {
            assert_eq!(
                sc.gammas.len(),
                sc.pool.len(),
                "one gamma table per pool device"
            );
        }
        let shared = Arc::new(Shared {
            spec,
            db,
            gamma,
            plans: Arc::new(PlanCache::new(config.plan_cache_capacity)),
            queue: Mutex::new(Queue {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            record_traces: config.record_traces,
            faults: config.faults,
            recovery: config.recovery,
            breaker: config.breaker,
            sharding: config.sharding,
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            done: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            breaker_rejections: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            busy_wall_ns: AtomicU64::new(0),
            breaker_transitions: Mutex::new(Vec::new()),
        });
        let (tx, rx) = channel();
        let workers = (0..config.workers.max(1))
            .map(|idx| {
                let shared = shared.clone();
                let tx: Sender<QueryResponse> = tx.clone();
                std::thread::Builder::new()
                    .name(format!("gpl-serve-{idx}"))
                    .spawn(move || worker_loop(idx, &shared, &tx))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            workers,
            max_queue_depth: config.max_queue_depth,
            tx,
            results: Mutex::new(rx),
        }
    }

    /// The shared plan cache (for stats and tests).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.shared.plans
    }

    /// Current `(queued, running, done)` gauge values.
    pub fn gauges(&self) -> (u64, u64, u64) {
        (
            self.shared.queued.load(Ordering::Relaxed),
            self.shared.running.load(Ordering::Relaxed),
            self.shared.done.load(Ordering::Relaxed),
        )
    }

    /// Enqueue one request.
    pub fn submit(&self, req: QueryRequest) {
        self.submit_all(std::iter::once(req));
    }

    /// Enqueue a batch atomically: the queue lock is held across every
    /// push, so no worker observes a partially-admitted batch. With one
    /// worker this makes the *execution order* of a batch fully
    /// deterministic: all high-priority requests in submit order, then
    /// all normal ones.
    ///
    /// Load shedding happens here, under the same lock: once the queue
    /// holds [`ServeConfig::max_queue_depth`] jobs, further requests are
    /// answered immediately with [`ExecError::Rejected`] instead of
    /// queueing unboundedly. A shed response still arrives on the
    /// response stream, so `collect(n)` accounts for every submission.
    pub fn submit_all(&self, reqs: impl IntoIterator<Item = QueryRequest>) {
        let mut n = 0u64;
        let mut sheds = 0u64;
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            for req in reqs {
                let depth = q.high.len() + q.normal.len();
                if let Some(bound) = self.max_queue_depth {
                    if depth >= bound {
                        sheds += 1;
                        let resp = synthetic_response(
                            req,
                            ExecError::Rejected {
                                queue_depth: depth as u64,
                                bound: bound as u64,
                            },
                        );
                        let _ = self.tx.send(resp);
                        continue;
                    }
                }
                let job = Job {
                    req,
                    submitted: Instant::now(),
                };
                match job.req.priority {
                    Priority::High => q.high.push_back(job),
                    Priority::Normal => q.normal.push_back(job),
                }
                n += 1;
            }
        }
        self.shared.queued.fetch_add(n, Ordering::Relaxed);
        self.shared.sheds.fetch_add(sheds, Ordering::Relaxed);
        self.shared.available.notify_all();
    }

    /// Collect `n` responses, blocking until all have arrived. Responses
    /// arrive in completion order (worker-count dependent).
    pub fn collect(&self, n: usize) -> Vec<QueryResponse> {
        let rx = self.results.lock().expect("results poisoned");
        (0..n)
            .map(|_| rx.recv().expect("worker pool alive"))
            .collect()
    }

    /// Submit a batch, wait for every response, and return them sorted
    /// by request id — the deterministic view of a workload.
    pub fn run_batch(&self, reqs: Vec<QueryRequest>) -> Vec<QueryResponse> {
        let n = reqs.len();
        self.submit_all(reqs);
        let mut responses = self.collect(n);
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// [`Server::run_batch`] wrapped into a [`BatchReport`] with
    /// throughput/latency aggregates and cache statistics.
    pub fn run_batch_report(&self, reqs: Vec<QueryRequest>) -> BatchReport {
        let workers = self.workers.len();
        let t0 = Instant::now();
        let responses = self.run_batch(reqs);
        BatchReport {
            responses,
            workers,
            wall: t0.elapsed(),
            plan_cache: self.shared.plans.stats(),
            search_cache: self.shared.plans.search_stats(),
            sheds: self.shed_count(),
            breaker: self.breaker_counts(),
            breaker_transitions: self.breaker_transitions(),
            busy_wall: self.busy_wall(),
        }
    }

    /// Cumulative wall-clock time workers have spent processing jobs
    /// (across all workers, so it can exceed elapsed wall time).
    /// Wall-clock plane: host-dependent, never part of a fingerprint.
    pub fn busy_wall(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.shared.busy_wall_ns.load(Ordering::Relaxed))
    }

    /// Requests rejected so far by load shedding.
    pub fn shed_count(&self) -> u64 {
        self.shared.sheds.load(Ordering::Relaxed)
    }

    /// `(rejections, opens)` across every worker's circuit breaker.
    pub fn breaker_counts(&self) -> (u64, u64) {
        (
            self.shared.breaker_rejections.load(Ordering::Relaxed),
            self.shared.breaker_opens.load(Ordering::Relaxed),
        )
    }

    /// Every breaker state change so far, sorted by (device cycle,
    /// worker) for a stable view.
    pub fn breaker_transitions(&self) -> Vec<BreakerTransition> {
        let mut v = self
            .shared
            .breaker_transitions
            .lock()
            .expect("transitions poisoned")
            .clone();
        v.sort_by_key(|t| (t.cycle, t.worker));
        v
    }

    /// Stop accepting work, cancel whatever is still queued, join every
    /// worker, and return *all* outstanding responses — completed ones
    /// still buffered in the response stream plus a structured
    /// [`ExecError::Cancelled`] response for each drained job — sorted
    /// by id. Callers who submitted more than they collected therefore
    /// get an answer for every request instead of a hang.
    pub fn shutdown(mut self) -> Vec<QueryResponse> {
        let drained = self.shutdown_inner();
        let mut responses: Vec<QueryResponse> = drained
            .into_iter()
            .map(|job| synthetic_response(job.req, ExecError::Cancelled))
            .collect();
        {
            let rx = self.results.lock().expect("results poisoned");
            responses.extend(rx.try_iter());
        }
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// Flip the shutdown flag and drain the queue *atomically* (one lock
    /// scope): a worker either popped a job before this ran, or finds an
    /// empty queue with the flag set and exits — no job is both drained
    /// here and executed there.
    fn shutdown_inner(&mut self) -> Vec<Job> {
        let drained: Vec<Job> = {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
            let mut d: Vec<Job> = q.high.drain(..).collect();
            d.extend(q.normal.drain(..));
            d
        };
        self.shared
            .queued
            .fetch_sub(drained.len() as u64, Ordering::Relaxed);
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        drained
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(idx: usize, shared: &Shared, tx: &Sender<QueryResponse>) {
    // The worker's circuit breaker and its device clock: the sum of
    // simulated cycles this worker's device has executed (plus reject
    // costs), driving the breaker's deterministic cool-down timer.
    // Under sharding the single breaker is replaced by one breaker and
    // one clock *per pool device*: a tripped device is excluded from
    // this worker's next sharded runs while it cools down, instead of
    // rejecting whole queries.
    let mut breaker = if shared.sharding.is_none() {
        shared.breaker.clone().map(CircuitBreaker::new)
    } else {
        None
    };
    let mut device_cycles = 0u64;
    let mut device_breakers: Option<Vec<CircuitBreaker>> = match (&shared.sharding, &shared.breaker)
    {
        (Some(sc), Some(cfg)) => Some(
            (0..sc.pool.len())
                .map(|_| CircuitBreaker::new(cfg.clone()))
                .collect(),
        ),
        _ => None,
    };
    let mut device_clocks: Vec<u64> = shared
        .sharding
        .as_ref()
        .map(|sc| vec![0; sc.pool.len()])
        .unwrap_or_default();
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = q.high.pop_front().or_else(|| q.normal.pop_front()) {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("queue poisoned");
            }
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        shared.running.fetch_add(1, Ordering::Relaxed);
        let busy_t0 = Instant::now();
        let resp = if let Some(sc) = &shared.sharding {
            run_sharded_job(
                idx,
                shared,
                sc,
                job,
                device_breakers.as_mut(),
                &mut device_clocks,
            )
        } else {
            let admitted = match breaker.as_mut() {
                Some(b) => {
                    let before = b.state();
                    let admitted = b.admit(device_cycles);
                    record_transition(shared, idx, None, device_cycles, before, b.state());
                    admitted
                }
                None => true,
            };
            if !admitted {
                let cfg = shared.breaker.as_ref().expect("breaker configured");
                device_cycles += cfg.reject_cost_cycles;
                shared.breaker_rejections.fetch_add(1, Ordering::Relaxed);
                synthetic_response_on(idx, job, ServeError::CircuitOpen)
            } else {
                let (resp, spent) = process(idx, shared, job);
                device_cycles += spent;
                if let Some(b) = breaker.as_mut() {
                    let opens_before = b.stats().opens;
                    let before = b.state();
                    match &resp.result {
                        Err(ServeError::Exec(e)) if e.is_device_fault() => {
                            b.on_fault(device_cycles)
                        }
                        Err(_) => {} // query problem: no breaker signal
                        Ok(_) => b.on_success(),
                    }
                    record_transition(shared, idx, None, device_cycles, before, b.state());
                    shared
                        .breaker_opens
                        .fetch_add(b.stats().opens - opens_before, Ordering::Relaxed);
                }
                resp
            }
        };
        shared
            .busy_wall_ns
            .fetch_add(busy_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared.done.fetch_add(1, Ordering::Relaxed);
        if tx.send(resp).is_err() {
            // Server dropped the receiver; nothing left to report to.
            return;
        }
    }
}

/// What one sharded query did on one pool device, as seen by that
/// device's breaker.
#[derive(Debug, Clone, Copy, Default)]
struct DeviceOutcome {
    cycles: u64,
    lost: bool,
    /// Whether the device participated (breakers only hear from devices
    /// that actually ran or died; an idle device's streak is untouched).
    ran: bool,
}

/// One sharded job end to end: per-device breaker admission (a tripped
/// device is excluded, the query only rejects when *every* device is
/// open), execution across the pool, and per-device breaker feedback
/// from each device's outcome.
fn run_sharded_job(
    idx: usize,
    shared: &Shared,
    sc: &ShardServeConfig,
    job: Job,
    mut breakers: Option<&mut Vec<CircuitBreaker>>,
    clocks: &mut [u64],
) -> QueryResponse {
    let excluded: Option<Vec<bool>> = breakers.as_deref_mut().map(|bs| {
        bs.iter_mut()
            .enumerate()
            .map(|(d, b)| {
                let before = b.state();
                let ok = b.admit(clocks[d]);
                record_transition(shared, idx, Some(d), clocks[d], before, b.state());
                !ok
            })
            .collect()
    });
    if excluded.as_ref().is_some_and(|e| e.iter().all(|&x| x)) {
        let cfg = shared.breaker.as_ref().expect("breaker configured");
        for c in clocks.iter_mut() {
            *c += cfg.reject_cost_cycles;
        }
        shared.breaker_rejections.fetch_add(1, Ordering::Relaxed);
        return synthetic_response_on(idx, job, ServeError::CircuitOpen);
    }
    let (resp, outcomes) = process_sharded(idx, shared, sc, job, excluded.as_deref());
    if let Some(bs) = breakers {
        for (d, b) in bs.iter_mut().enumerate() {
            clocks[d] += outcomes[d].cycles;
            if !outcomes[d].ran {
                continue;
            }
            let opens_before = b.stats().opens;
            let before = b.state();
            if outcomes[d].lost {
                b.on_fault(clocks[d]);
            } else {
                b.on_success();
            }
            record_transition(shared, idx, Some(d), clocks[d], before, b.state());
            shared
                .breaker_opens
                .fetch_add(b.stats().opens - opens_before, Ordering::Relaxed);
        }
    } else {
        for (d, o) in outcomes.iter().enumerate() {
            clocks[d] += o.cycles;
        }
    }
    resp
}

/// Log one breaker state change (no-op when the state did not move).
fn record_transition(
    shared: &Shared,
    worker: usize,
    device: Option<usize>,
    cycle: u64,
    from: crate::breaker::BreakerState,
    to: crate::breaker::BreakerState,
) {
    if from != to {
        shared
            .breaker_transitions
            .lock()
            .expect("transitions poisoned")
            .push(BreakerTransition {
                worker,
                device,
                cycle,
                from,
                to,
            });
    }
}

/// A breaker rejection, attributed to the worker whose breaker is open.
fn synthetic_response_on(idx: usize, job: Job, err: ServeError) -> QueryResponse {
    QueryResponse {
        id: job.req.id,
        mode: job.req.mode,
        result: Err(err),
        plan_cache_hit: false,
        plan_wall: Default::default(),
        queue_wall: job.submitted.elapsed(),
        exec_wall: Default::default(),
        worker: idx,
        trace: None,
        recovery: Default::default(),
    }
}

/// Run one job; returns the response plus the simulated device cycles
/// the attempt consumed (successful or not — wasted cycles count toward
/// the worker's device clock).
fn process(idx: usize, shared: &Shared, job: Job) -> (QueryResponse, u64) {
    let queue_wall = job.submitted.elapsed();
    let req = job.req;
    let plan_t0 = Instant::now();
    let planned =
        shared
            .plans
            .get_or_plan(&shared.db, &shared.spec, &shared.gamma, &req.sql, req.mode);
    let plan_wall = plan_t0.elapsed();
    let (entry, hit) = match planned {
        Ok(v) => v,
        Err(msg) => {
            return (
                QueryResponse {
                    id: req.id,
                    mode: req.mode,
                    result: Err(ServeError::Plan(msg)),
                    plan_cache_hit: false,
                    plan_wall,
                    queue_wall,
                    exec_wall: Default::default(),
                    worker: idx,
                    trace: None,
                    recovery: Default::default(),
                },
                0,
            )
        }
    };
    // A fresh context per query: fresh simulator clock, cold data cache,
    // private memory map — the isolation that makes cycles per-query
    // pure. Layout installation is cheap (region bookkeeping, no copy).
    let exec_t0 = Instant::now();
    let mut ctx = ExecContext::with_shared(shared.spec.clone(), shared.db.clone());
    let rec = shared.record_traces.then(Recorder::new);
    if let Some(r) = &rec {
        ctx.sim.attach_recorder(r.clone());
    }
    if let Some(fc) = &shared.faults {
        // Seeded per query id, not per worker: the fault schedule a
        // query sees is part of its deterministic identity.
        ctx.sim.attach_faults(FaultPlan::new(
            fc.spec.clone(),
            per_query_seed(fc.seed, req.id),
        ));
    }
    let limits = ExecLimits {
        max_cycles: req.max_cycles,
        cancel: req.cancel.clone(),
    };
    let mut recovery = Default::default();
    let result = try_run_query_recovering(
        &mut ctx,
        &entry.plan,
        req.mode,
        &entry.config,
        &limits,
        shared.recovery.as_ref(),
    )
    .map(|run| {
        recovery = run.recovery;
        // The observed-λ plane, as served: per-kernel row flow keyed by
        // the shared lowered-IR kernel names, in stage launch order.
        let kernel_rows = run
            .per_stage
            .iter()
            .flat_map(|s| s.kernels.iter())
            .map(|k| KernelRows {
                name: k.name.to_string(),
                rows_in: k.rows_in,
                rows_out: k.rows_out,
            })
            .collect();
        QueryResult {
            output: run.output,
            cycles: run.cycles,
            kernel_rows,
        }
    })
    .map_err(ServeError::Exec);
    let spent = ctx.sim.clock();
    (
        QueryResponse {
            id: req.id,
            mode: req.mode,
            result,
            plan_cache_hit: hit,
            plan_wall,
            queue_wall,
            exec_wall: exec_t0.elapsed(),
            worker: idx,
            trace: rec.map(|r| r.dump()),
            recovery,
        },
        spent,
    )
}

/// Run one job across the device pool; returns the response plus each
/// pool device's outcome (cycles it advanced, whether it was lost) for
/// the caller's per-device breakers.
///
/// `record_traces` applies to the single-device path only: a sharded
/// run builds one internal simulator per pool device and per-query
/// tracing is not threaded through them.
fn process_sharded(
    idx: usize,
    shared: &Shared,
    sc: &ShardServeConfig,
    job: Job,
    excluded: Option<&[bool]>,
) -> (QueryResponse, Vec<DeviceOutcome>) {
    let queue_wall = job.submitted.elapsed();
    let req = job.req;
    let plan_t0 = Instant::now();
    let planned = shared.plans.get_or_place(
        &shared.db, &sc.pool, &sc.gammas, &req.sql, req.mode, &sc.plan,
    );
    let plan_wall = plan_t0.elapsed();
    let mut outcomes = vec![DeviceOutcome::default(); sc.pool.len()];
    let (entry, hit) = match planned {
        Ok(v) => v,
        Err(msg) => {
            return (
                QueryResponse {
                    id: req.id,
                    mode: req.mode,
                    result: Err(ServeError::Plan(msg)),
                    plan_cache_hit: false,
                    plan_wall,
                    queue_wall,
                    exec_wall: Default::default(),
                    worker: idx,
                    trace: None,
                    recovery: Default::default(),
                },
                outcomes,
            )
        }
    };
    let exec_t0 = Instant::now();
    // Same per-query fault identity as the single-device path; the
    // sharded runner further mixes the pool index in, so each device
    // draws an independent but reproducible fault stream.
    let faults = shared.faults.as_ref().map(|fc| ShardFaults {
        spec: fc.spec.clone(),
        seed: per_query_seed(fc.seed, req.id),
    });
    let limits = ExecLimits {
        max_cycles: req.max_cycles,
        cancel: req.cancel.clone(),
    };
    // Straggler defense: the cached placement already scored every
    // stage on every device, so the hedge plan is a free projection of
    // it. The query's own cycle budget rides in via `limits`.
    let hedge = sc
        .hedge_threshold
        .map(|t| gpl_model::hedge_plan(&entry.placement, t));
    let mut recovery = Default::default();
    let result = try_run_query_sharded(
        &sc.pool,
        &shared.db,
        &entry.plan,
        req.mode,
        &sc.plan,
        &entry.placement.assignment,
        &limits,
        shared.recovery.as_ref(),
        faults.as_ref(),
        hedge.as_ref(),
        excluded,
    )
    .map(|run| {
        recovery = run.recovery.clone();
        for (d, dr) in run.per_device.iter().enumerate() {
            outcomes[d] = DeviceOutcome {
                cycles: dr.cycles,
                lost: dr.lost,
                ran: dr.cycles > 0 || dr.lost,
            };
        }
        // The observed-λ plane, keyed `(kernel, device)`: the same
        // kernel running on two pool devices yields two distinct rows.
        let kernel_rows = run
            .per_device
            .iter()
            .flat_map(|dr| {
                dr.per_stage.iter().flat_map(|s| {
                    s.kernels.iter().map(|k| KernelRows {
                        name: format!("{}@{}", k.name, dr.device),
                        rows_in: k.rows_in,
                        rows_out: k.rows_out,
                    })
                })
            })
            .collect();
        QueryResult {
            output: run.output,
            cycles: run.cycles,
            kernel_rows,
        }
    })
    .map_err(|e| {
        if e.is_device_fault() {
            // The run died before producing per-device facts; charge
            // the fault to every device that was eligible to run —
            // conservative, but a sticky pool-wide failure should trip
            // the whole worker's pool anyway.
            for (d, o) in outcomes.iter_mut().enumerate() {
                if excluded.is_none_or(|x| !x[d]) {
                    o.lost = true;
                    o.ran = true;
                }
            }
        }
        ServeError::Exec(e)
    });
    (
        QueryResponse {
            id: req.id,
            mode: req.mode,
            result,
            plan_cache_hit: hit,
            plan_wall,
            queue_wall,
            exec_wall: exec_t0.elapsed(),
            worker: idx,
            trace: None,
            recovery,
        },
        outcomes,
    )
}
