//! Batch reporting: throughput/latency aggregates, the deterministic
//! result fingerprint, the merged multi-track trace, and the
//! `serve.*` metrics snapshot.

use crate::request::QueryResponse;
use crate::telemetry::{BreakerTransition, Telemetry};
use gpl_obs::{Histogram, MetricsRegistry, Recorder};
use std::time::Duration;

/// Everything a completed batch produced. `responses` are sorted by
/// request id; wall-clock fields (latencies, throughput) depend on the
/// machine and worker count, while [`BatchReport::fingerprint`] covers
/// only the deterministic per-query facts.
#[derive(Debug)]
pub struct BatchReport {
    pub responses: Vec<QueryResponse>,
    pub workers: usize,
    pub wall: Duration,
    /// Plan-cache `(hits, misses)` at batch end (cumulative per server).
    pub plan_cache: (u64, u64),
    /// Config search-cache `(hits, misses)` at batch end.
    pub search_cache: (u64, u64),
    /// Load-shed rejections at batch end (cumulative per server).
    pub sheds: u64,
    /// Circuit-breaker `(rejections, opens)` across all workers.
    pub breaker: (u64, u64),
    /// Breaker state changes (cumulative per server), sorted by
    /// (device cycle, worker).
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Cumulative wall-clock time workers spent processing jobs (summed
    /// over workers, so it may exceed `wall`). Wall-clock plane:
    /// host-dependent, excluded from every fingerprint.
    pub busy_wall: Duration,
}

/// Nearest-rank percentile over the log2 [`Histogram`] buckets — the one
/// quantile implementation every latency figure in this crate goes
/// through (bucket upper edge, clamped to the observed min/max).
fn histogram_pct(values: impl IntoIterator<Item = u64>, pct: f64) -> u64 {
    let mut h = Histogram::default();
    for v in values {
        h.observe(v);
    }
    h.percentile(pct)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl BatchReport {
    pub fn ok_count(&self) -> usize {
        self.responses.iter().filter(|r| r.result.is_ok()).count()
    }

    pub fn err_count(&self) -> usize {
        self.responses.len() - self.ok_count()
    }

    /// Completed queries per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        self.responses.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fraction of worker·wall time spent processing jobs:
    /// `busy_wall / (wall * workers)`, clamped to 1.0 (timer skew).
    /// Wall-clock plane — diagnostic only, never fingerprinted.
    pub fn worker_utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        (self.busy_wall.as_secs_f64() / denom.max(1e-9)).min(1.0)
    }

    /// The `pct`-th percentile (0–100) of wall-clock queue latency, read
    /// off a log2 histogram at microsecond resolution.
    pub fn queue_latency_pct(&self, pct: f64) -> Duration {
        Duration::from_micros(histogram_pct(
            self.responses
                .iter()
                .map(|r| r.queue_wall.as_micros() as u64),
            pct,
        ))
    }

    /// The deterministic simulated schedule: queries in id order, each
    /// assigned to the earliest-available of `workers` simulated
    /// devices (every worker owns its own simulator, so the fleet is
    /// `workers` GPUs). Returns `(id, start_cycle, cycles)` per
    /// successful query. Failed queries occupy no device time.
    pub fn simulated_schedule(&self) -> Vec<(u64, u64, u64)> {
        let mut avail = vec![0u64; self.workers.max(1)];
        let mut sched = Vec::with_capacity(self.responses.len());
        for r in &self.responses {
            if let Ok(res) = &r.result {
                let w = (0..avail.len())
                    .min_by_key(|&w| avail[w])
                    .expect("non-empty");
                sched.push((r.id, avail[w], res.cycles));
                avail[w] += res.cycles;
            }
        }
        sched
    }

    /// Simulated cycles until the last device drains — the deterministic
    /// makespan of the batch on `workers` simulated GPUs.
    pub fn simulated_makespan(&self) -> u64 {
        self.simulated_schedule()
            .iter()
            .map(|&(_, start, cycles)| start + cycles)
            .max()
            .unwrap_or(0)
    }

    /// The `pct`-th percentile of *simulated* queue latency: how many
    /// device cycles each query waited for a free simulated GPU.
    /// Deterministic, unlike the wall-clock latencies.
    pub fn simulated_queue_pct(&self, pct: f64) -> u64 {
        histogram_pct(
            self.simulated_schedule().iter().map(|&(_, start, _)| start),
            pct,
        )
    }

    /// FNV-1a over the deterministic facts of every response, in id
    /// order: id, mode, and either (columns, rows, simulated cycles) or
    /// the error's display text. Identical across worker counts and
    /// machines; any scheduling-dependent field is excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for r in &self.responses {
            fnv1a(&mut h, &r.id.to_le_bytes());
            fnv1a(&mut h, r.mode.name().as_bytes());
            match &r.result {
                Ok(res) => {
                    fnv1a(&mut h, &[1]);
                    for c in &res.output.columns {
                        fnv1a(&mut h, c.as_bytes());
                    }
                    fnv1a(&mut h, &(res.output.rows.len() as u64).to_le_bytes());
                    for row in &res.output.rows {
                        for v in row {
                            fnv1a(&mut h, &v.to_le_bytes());
                        }
                    }
                    fnv1a(&mut h, &res.cycles.to_le_bytes());
                }
                Err(e) => {
                    fnv1a(&mut h, &[0]);
                    fnv1a(&mut h, e.to_string().as_bytes());
                }
            }
        }
        h
    }

    /// Sum of recovery activity over the batch:
    /// `(faults survived, retries, fallbacks, wasted cycles)`.
    pub fn recovery_totals(&self) -> (u64, u64, u64, u64) {
        self.responses.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.recovery.faults.len() as u64,
                acc.1 + r.recovery.retries,
                acc.2 + r.recovery.fallbacks,
                acc.3 + r.recovery.wasted_cycles,
            )
        })
    }

    /// Sum of straggler-defense activity over the batch: `(hedges
    /// launched, hedge wins, checkpoint slices resumed, checkpoint
    /// cycles saved)`. All zeros unless the server shards with a hedge
    /// threshold or runs a checkpointing recovery policy.
    pub fn hedge_totals(&self) -> (u64, u64, u64, u64) {
        self.responses.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.recovery.hedges,
                acc.1 + r.recovery.hedge_wins,
                acc.2 + r.recovery.resumed_slices,
                acc.3 + r.recovery.checkpoint_saved_cycles,
            )
        })
    }

    /// Like [`BatchReport::fingerprint`] but over *results only*: id,
    /// mode, columns and rows — no cycle counts, no error text. A
    /// fault-injected run with full recovery matches the fault-free run
    /// under this fingerprint (faults cost cycles, never rows), which is
    /// exactly what the `repro faults` experiment asserts.
    pub fn rows_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for r in &self.responses {
            fnv1a(&mut h, &r.id.to_le_bytes());
            fnv1a(&mut h, r.mode.name().as_bytes());
            match &r.result {
                Ok(res) => {
                    fnv1a(&mut h, &[1]);
                    for c in &res.output.columns {
                        fnv1a(&mut h, c.as_bytes());
                    }
                    fnv1a(&mut h, &(res.output.rows.len() as u64).to_le_bytes());
                    for row in &res.output.rows {
                        for v in row {
                            fnv1a(&mut h, &v.to_le_bytes());
                        }
                    }
                }
                Err(_) => fnv1a(&mut h, &[0]),
            }
        }
        h
    }

    /// The `pct`-th percentile of *simulated completion latency* —
    /// queue wait plus execution, in device cycles, under the
    /// deterministic schedule of [`BatchReport::simulated_schedule`].
    pub fn simulated_latency_pct(&self, pct: f64) -> u64 {
        histogram_pct(
            self.simulated_schedule()
                .iter()
                .map(|&(_, start, cycles)| start + cycles),
            pct,
        )
    }

    /// Merge every per-query recorder dump into one multi-track trace:
    /// query `id`'s tracks appear under the `q{id}/` prefix, in id
    /// order. Timestamps stay in per-query simulated cycles (all start
    /// at zero), so the trace aligns queries on a common axis instead of
    /// serializing them.
    pub fn merged_trace(&self) -> Recorder {
        let rec = Recorder::new();
        // Batch-level counter ("C") tracks first, so the serve/* series
        // sit above the per-query track groups in the rendered trace.
        self.telemetry().record_counters(&rec);
        for r in &self.responses {
            if let Some(dump) = &r.trace {
                rec.absorb(&format!("q{}/", r.id), dump);
            }
        }
        rec
    }

    /// The batch's time-series telemetry, derived from the deterministic
    /// simulated schedule (see [`Telemetry`]).
    pub fn telemetry(&self) -> Telemetry {
        Telemetry::from_report(self)
    }

    /// Snapshot the batch into a metrics registry: the
    /// `serve.queued/running/done` gauges (terminal values for a drained
    /// batch: 0 / 0 / n), cache counters, and per-outcome counts.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.gauge_set("serve.queued", &[], 0.0);
        m.gauge_set("serve.running", &[], 0.0);
        m.gauge_set("serve.done", &[], self.responses.len() as f64);
        m.gauge_set("serve.workers", &[], self.workers as f64);
        m.counter_add("serve.queries.ok", &[], self.ok_count() as u64);
        m.counter_add("serve.queries.err", &[], self.err_count() as u64);
        m.counter_add("serve.plan_cache.hits", &[], self.plan_cache.0);
        m.counter_add("serve.plan_cache.misses", &[], self.plan_cache.1);
        m.counter_add("serve.search_cache.hits", &[], self.search_cache.0);
        m.counter_add("serve.search_cache.misses", &[], self.search_cache.1);
        let (faults, retries, fallbacks, wasted) = self.recovery_totals();
        m.counter_add("serve.faults.injected", &[], faults);
        m.counter_add("serve.faults.retries", &[], retries);
        m.counter_add("serve.faults.fallbacks", &[], fallbacks);
        m.counter_add("serve.faults.wasted_cycles", &[], wasted);
        let (hedges, hedge_wins, resumed, saved) = self.hedge_totals();
        m.counter_add("serve.hedges", &[], hedges);
        m.counter_add("serve.hedge_wins", &[], hedge_wins);
        m.counter_add("serve.checkpoint.resumed_slices", &[], resumed);
        m.counter_add("serve.checkpoint.saved_cycles", &[], saved);
        m.counter_add("serve.shed", &[], self.sheds);
        m.counter_add("serve.breaker.rejections", &[], self.breaker.0);
        m.counter_add("serve.breaker.opens", &[], self.breaker.1);
        // Wall-clock plane: host-dependent gauges, useful live but never
        // compared across runs or machines.
        m.counter_add(
            "serve.worker_busy_us",
            &[],
            self.busy_wall.as_micros() as u64,
        );
        m.gauge_set("serve.worker_utilization", &[], self.worker_utilization());
        for r in &self.responses {
            m.histogram_observe(
                "serve.queue_latency_us",
                &[],
                r.queue_wall.as_micros() as u64,
            );
            if let Ok(res) = &r.result {
                m.histogram_observe("serve.query_cycles", &[], res.cycles);
            }
        }
        self.telemetry().export_metrics(&mut m);
        m
    }

    /// Human-readable batch summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "batch: {} queries, {} workers, {:.1} ms wall, {:.1} q/s\n",
            self.responses.len(),
            self.workers,
            self.wall.as_secs_f64() * 1e3,
            self.queries_per_sec()
        ));
        out.push_str(&format!(
            "queue latency: p50 {:.2} ms, p95 {:.2} ms\n",
            self.queue_latency_pct(50.0).as_secs_f64() * 1e3,
            self.queue_latency_pct(95.0).as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "plan cache: {} hits / {} misses; config search cache: {} hits / {} misses\n",
            self.plan_cache.0, self.plan_cache.1, self.search_cache.0, self.search_cache.1
        ));
        let (faults, retries, fallbacks, wasted) = self.recovery_totals();
        if faults + retries + fallbacks + self.sheds + self.breaker.0 > 0 {
            out.push_str(&format!(
                "recovery: {faults} faults survived, {retries} retries, {fallbacks} fallbacks, \
                 {wasted} wasted cycles; {} shed, {} breaker rejections ({} opens)\n",
                self.sheds, self.breaker.0, self.breaker.1
            ));
        }
        let (hedges, hedge_wins, resumed, saved) = self.hedge_totals();
        if hedges + resumed > 0 {
            out.push_str(&format!(
                "straggler defense: {hedges} hedges ({hedge_wins} backup wins), \
                 {resumed} checkpoint slices resumed ({saved} cycles saved)\n"
            ));
        }
        out.push_str(&format!("fingerprint: {:#018x}\n", self.fingerprint()));
        for r in &self.responses {
            match &r.result {
                Ok(res) => out.push_str(&format!(
                    "  q{:<3} {:<11} {:>4} rows {:>12} cycles  plan {:>7.3} ms{}  exec {:>8.2} ms (w{})\n",
                    r.id,
                    r.mode.name(),
                    res.output.rows.len(),
                    res.cycles,
                    r.plan_wall.as_secs_f64() * 1e3,
                    if r.plan_cache_hit { " (hit) " } else { " (miss)" },
                    r.exec_wall.as_secs_f64() * 1e3,
                    r.worker,
                )),
                Err(e) => out.push_str(&format!(
                    "  q{:<3} {:<11} ERROR: {e}\n",
                    r.id,
                    r.mode.name()
                )),
            }
        }
        out
    }
}
