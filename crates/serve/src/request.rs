//! Request/response types of the serving layer.

use gpl_core::{ExecError, ExecMode};
use gpl_obs::RecorderDump;
use gpl_tpch::QueryOutput;
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Admission class: `High` requests drain before any `Normal` one, FIFO
/// within each class. Priority affects only *when* a query runs — never
/// its result or simulated cycle count, which are per-query pure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    Normal,
    High,
}

/// One SQL query submitted to the server.
#[derive(Clone)]
pub struct QueryRequest {
    /// Caller-chosen id, echoed in the response and used as the trace
    /// track prefix (`q{id}/`).
    pub id: u64,
    pub sql: String,
    pub mode: ExecMode,
    pub priority: Priority,
    /// Per-query timeout in *simulated* cycles (deterministic), checked
    /// at stage boundaries.
    pub max_cycles: Option<u64>,
    /// Cooperative cancellation flag; raise it to abort between stages.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryRequest {
    pub fn new(id: u64, sql: impl Into<String>, mode: ExecMode) -> Self {
        QueryRequest {
            id,
            sql: sql.into(),
            mode,
            priority: Priority::Normal,
            max_cycles: None,
            cancel: None,
        }
    }

    pub fn high_priority(mut self) -> Self {
        self.priority = Priority::High;
        self
    }

    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = Some(max_cycles);
        self
    }

    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }
}

/// Why a request failed. Planning errors carry the SQL front-end's
/// message; execution errors carry the structured [`ExecError`] with the
/// simulator's diagnostic intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    Plan(String),
    Exec(ExecError),
    /// The worker's circuit breaker is open: the request was rejected
    /// without touching the device while its fault streak cools down.
    CircuitOpen,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Plan(msg) => write!(f, "planning failed: {msg}"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            // Deliberately carries no worker id: which worker rejected a
            // request is a scheduling accident, and this text feeds the
            // deterministic batch fingerprint.
            ServeError::CircuitOpen => {
                write!(f, "circuit breaker open: device cooling down after faults")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Observed per-kernel row flow of one executed query, keyed by the
/// lowered-IR kernel name — the serving layer's slice of the observed-λ
/// plane. Deterministic per request (and therefore identical across
/// worker counts), but excluded from the batch fingerprint so pinned
/// hashes survive instrumentation changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRows {
    pub name: String,
    pub rows_in: u64,
    pub rows_out: u64,
}

/// The deterministic part of a successful execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    pub output: QueryOutput,
    /// Simulated device cycles — a pure function of (sql, mode, db,
    /// device), independent of worker count and queueing.
    pub cycles: u64,
    /// Observed rows-in/rows-out per kernel, stage by stage in launch
    /// order.
    pub kernel_rows: Vec<KernelRows>,
}

/// The server's answer to one [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    pub id: u64,
    pub mode: ExecMode,
    pub result: Result<QueryResult, ServeError>,
    /// Whether planning was served from the [`crate::PlanCache`].
    pub plan_cache_hit: bool,
    /// Wall time spent planning (≈0 on a cache hit).
    pub plan_wall: Duration,
    /// Wall time from submission to a worker picking the query up.
    pub queue_wall: Duration,
    /// Wall time executing on the worker's simulator.
    pub exec_wall: Duration,
    /// Which worker ran the query (scheduling detail, non-deterministic).
    /// `usize::MAX` for responses manufactured off-worker (shed at
    /// admission, cancelled at shutdown).
    pub worker: usize,
    /// Per-query recorder dump when tracing was enabled.
    pub trace: Option<RecorderDump>,
    /// What the recovery stack absorbed for this query (all zeros on a
    /// fault-free run or when recovery is disabled).
    pub recovery: gpl_core::RecoveryStats,
}
