//! Time-series telemetry over a served batch.
//!
//! The serving layer's aggregate counters (`BatchReport::metrics`) say
//! *how much* happened; this module says *when*. Every series is derived
//! from the deterministic simulated schedule — queries in id order packed
//! onto the earliest-available simulated device — so the samples are a
//! pure function of the batch, byte-identical across machines and runs.
//!
//! A **logical tick** is one schedule event: a query starting on its
//! device or completing there. Each tick carries the device-cycle
//! timestamp of the event plus the state of the whole server at that
//! instant: queue depth, queries running, queries done, the cumulative
//! plan-cache hit rate, and the cumulative recovery-event count. Breaker
//! state changes are recorded live by the workers (stamped with the
//! owning worker's device clock) and surface alongside the sampled
//! series.
//!
//! Exports: [`Telemetry::export_metrics`] folds the series into a
//! [`MetricsRegistry`]; [`Telemetry::record_counters`] emits Chrome-trace
//! counter ("C") tracks onto a [`Recorder`], so the series render as
//! stacked area charts above the per-query span tracks in Perfetto.

use crate::breaker::BreakerState;
use crate::report::BatchReport;
use gpl_obs::{MetricsRegistry, Recorder};

/// One breaker state change, stamped with the owning worker's device
/// clock. Which worker saw which query is a scheduling accident, so a
/// multi-worker transition log is reproducible only per seed and worker
/// count; with one worker it is fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    pub worker: usize,
    /// Pool-device index when the transition belongs to one of a
    /// sharded worker's *per-device* breakers; `None` for the classic
    /// whole-worker breaker.
    pub device: Option<usize>,
    /// The worker's device-cycle clock at the transition.
    pub cycle: u64,
    pub from: BreakerState,
    pub to: BreakerState,
}

/// Numeric encoding of a breaker state for counter tracks: closed 0,
/// half-open 1, open 2 (sorted by "how broken").
pub fn breaker_state_code(s: BreakerState) -> u64 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::HalfOpen => 1,
        BreakerState::Open => 2,
    }
}

/// The server's state at one logical tick of the simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// Logical tick index (0 = batch admitted, before any query starts).
    pub tick: u64,
    /// Simulated device cycle of the event.
    pub cycle: u64,
    /// Requests admitted but not yet started on a device.
    pub queue_depth: u64,
    /// Queries executing on some simulated device.
    pub running: u64,
    /// Queries completed.
    pub done: u64,
    /// Cumulative plan-cache hit rate over the queries started so far
    /// (0.0 before the first start).
    pub plan_cache_hit_rate: f64,
    /// Cumulative recovery events (faults survived + retries +
    /// fallbacks + straggler hedges) over the queries completed so far.
    pub recovery_events: u64,
}

/// The full time series of a batch: samples at every logical tick plus
/// the breaker transition log.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    pub samples: Vec<TelemetrySample>,
    pub breaker_transitions: Vec<BreakerTransition>,
}

/// A schedule event: `end` sorts before `start` at the same cycle (the
/// device frees before the next query occupies it).
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    End,
    Start,
}

impl Telemetry {
    /// Derive the series from a batch report's deterministic schedule.
    pub fn from_report(report: &BatchReport) -> Self {
        // Per-query facts keyed by id, in the same id order the schedule
        // visits them.
        let mut events: Vec<(u64, EventKind, u64)> = Vec::new();
        let mut hit_by_id = Vec::new();
        let mut recovery_by_id = Vec::new();
        let scheduled = report.simulated_schedule();
        for &(id, start, cycles) in &scheduled {
            events.push((start, EventKind::Start, id));
            events.push((start + cycles, EventKind::End, id));
            let r = report
                .responses
                .iter()
                .find(|r| r.id == id)
                .expect("scheduled id has a response");
            hit_by_id.push((id, r.plan_cache_hit));
            recovery_by_id.push((
                id,
                r.recovery.faults.len() as u64
                    + r.recovery.retries
                    + r.recovery.fallbacks
                    + r.recovery.hedges,
            ));
        }
        events.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));

        let mut samples = Vec::with_capacity(events.len() + 1);
        let mut queue_depth = scheduled.len() as u64;
        let (mut running, mut done) = (0u64, 0u64);
        let (mut hits, mut started) = (0u64, 0u64);
        let mut recovery_events = 0u64;
        samples.push(TelemetrySample {
            tick: 0,
            cycle: 0,
            queue_depth,
            running,
            done,
            plan_cache_hit_rate: 0.0,
            recovery_events,
        });
        for (tick, (cycle, kind, id)) in events.into_iter().enumerate() {
            match kind {
                EventKind::Start => {
                    queue_depth -= 1;
                    running += 1;
                    started += 1;
                    if hit_by_id.iter().any(|&(i, h)| i == id && h) {
                        hits += 1;
                    }
                }
                EventKind::End => {
                    running -= 1;
                    done += 1;
                    recovery_events += recovery_by_id
                        .iter()
                        .find(|&&(i, _)| i == id)
                        .map(|&(_, n)| n)
                        .unwrap_or(0);
                }
            }
            samples.push(TelemetrySample {
                tick: tick as u64 + 1,
                cycle,
                queue_depth,
                running,
                done,
                plan_cache_hit_rate: if started == 0 {
                    0.0
                } else {
                    hits as f64 / started as f64
                },
                recovery_events,
            });
        }
        Telemetry {
            samples,
            breaker_transitions: report.breaker_transitions.clone(),
        }
    }

    /// Fold the series into a metrics registry: peak/terminal gauges,
    /// the queue-depth histogram, and per-edge breaker transition
    /// counters.
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        m.gauge_set("serve.telemetry.ticks", &[], self.samples.len() as f64);
        for s in &self.samples {
            m.histogram_observe("serve.telemetry.queue_depth", &[], s.queue_depth);
        }
        if let Some(last) = self.samples.last() {
            m.gauge_set(
                "serve.telemetry.plan_cache_hit_rate",
                &[],
                last.plan_cache_hit_rate,
            );
            m.gauge_set(
                "serve.telemetry.recovery_events",
                &[],
                last.recovery_events as f64,
            );
        }
        for t in &self.breaker_transitions {
            let edge = format!("{:?}->{:?}", t.from, t.to);
            m.counter_add("serve.breaker.transitions", &[("edge", &edge)], 1);
        }
    }

    /// Emit the series as Chrome-trace counter ("C") tracks, timestamped
    /// in simulated device cycles; breaker transitions become a numeric
    /// per-worker state track (closed 0 / half-open 1 / open 2).
    pub fn record_counters(&self, rec: &Recorder) {
        let queue = rec.define_counter("serve/queue_depth");
        let running = rec.define_counter("serve/running");
        let done = rec.define_counter("serve/done");
        let hit_rate = rec.define_counter("serve/plan_cache_hit_rate");
        let recovery = rec.define_counter("serve/recovery_events");
        for s in &self.samples {
            rec.sample(queue, s.cycle, s.queue_depth as f64);
            rec.sample(running, s.cycle, s.running as f64);
            rec.sample(done, s.cycle, s.done as f64);
            rec.sample(hit_rate, s.cycle, s.plan_cache_hit_rate);
            rec.sample(recovery, s.cycle, s.recovery_events as f64);
        }
        let mut tracks: Vec<(usize, Option<usize>)> = self
            .breaker_transitions
            .iter()
            .map(|t| (t.worker, t.device))
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        for (w, d) in tracks {
            // Per-device breakers of a sharded worker get one state
            // track per (worker, pool device); the classic whole-worker
            // breaker keeps its unsuffixed track name.
            let name = match d {
                Some(d) => format!("serve/breaker_state.w{w}.d{d}"),
                None => format!("serve/breaker_state.w{w}"),
            };
            let c = rec.define_counter(&name);
            rec.sample(c, 0, 0.0);
            for t in self
                .breaker_transitions
                .iter()
                .filter(|t| t.worker == w && t.device == d)
            {
                rec.sample(c, t.cycle, breaker_state_code(t.to) as f64);
            }
        }
    }

    /// Deterministic fixed-width rendering of the sampled series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>12} {:>7} {:>8} {:>6} {:>9} {:>9}\n",
            "tick", "cycle", "queued", "running", "done", "hit-rate", "recovery"
        ));
        for s in &self.samples {
            out.push_str(&format!(
                "{:>5} {:>12} {:>7} {:>8} {:>6} {:>9.4} {:>9}\n",
                s.tick,
                s.cycle,
                s.queue_depth,
                s.running,
                s.done,
                s.plan_cache_hit_rate,
                s.recovery_events
            ));
        }
        for t in &self.breaker_transitions {
            let dev = t.device.map(|d| format!(" d{d}")).unwrap_or_default();
            out.push_str(&format!(
                "breaker w{}{} @{}: {:?} -> {:?}\n",
                t.worker, dev, t.cycle, t.from, t.to
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_codes_order_by_brokenness() {
        assert!(
            breaker_state_code(BreakerState::Closed) < breaker_state_code(BreakerState::HalfOpen)
        );
        assert!(
            breaker_state_code(BreakerState::HalfOpen) < breaker_state_code(BreakerState::Open)
        );
    }
}
