//! # gpl-serve — a concurrent multi-query serving layer
//!
//! The paper's engine answers one query on one thread; the roadmap's
//! north star is sustained traffic. This crate turns the reproduction
//! into a query *server* while keeping every result deterministic:
//!
//! * [`scheduler`] — a bounded pool of `std::thread` workers behind a
//!   two-class (high/normal) FIFO admission queue, with per-query
//!   simulated-cycle timeouts and cooperative cancellation. Each worker
//!   builds a fresh [`gpl_core::ExecContext`] per query over the shared
//!   `Arc<TpchDb>`, so simulated cycles are a pure function of the
//!   request — results and cycle counts are byte-identical at any
//!   worker count (pinned by `tests/determinism.rs`).
//! * [`cache`] — the shared [`PlanCache`]: compiled plans *and* the
//!   Section-4 optimizer's chosen configurations, keyed by normalized
//!   SQL × device × exec mode, LRU-evicted, with hit/miss counters at
//!   both the plan and config-search layers.
//! * [`request`] — request/response types; failures surface as
//!   structured [`ServeError`]s (the simulator's deadlock diagnostic
//!   survives verbatim) instead of aborting the process.
//! * [`report`] — batch aggregates: queries/sec, queue-latency
//!   percentiles (one shared log2-histogram quantile path), a
//!   deterministic FNV-1a result fingerprint, the merged
//!   `q{id}/`-prefixed multi-track trace, and `serve.*` metrics.
//! * [`telemetry`] — time-series telemetry sampled on the logical ticks
//!   of the deterministic simulated schedule: queue depth, running/done,
//!   plan-cache hit rate, recovery events, and breaker state
//!   transitions, exported as metrics and Chrome-trace counter tracks.
//!
//! The `repro serve` experiment in `gpl-bench` drives this layer over
//! the TPC-H corpus at worker counts 1/2/4/8.

pub mod breaker;
pub mod cache;
pub mod report;
pub mod request;
pub mod scheduler;
pub mod telemetry;

pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use cache::{PlanCache, PlanEntry, ShardEntry};
pub use report::BatchReport;
pub use request::{KernelRows, Priority, QueryRequest, QueryResponse, QueryResult, ServeError};
pub use scheduler::{FaultConfig, ServeConfig, Server, ShardServeConfig};
pub use telemetry::{BreakerTransition, Telemetry, TelemetrySample};
