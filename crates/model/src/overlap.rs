//! The cross-segment overlap predicate.
//!
//! Cross-segment pipelining (see `gpl_core::gpl::run_overlapped_pair`)
//! fuses an eligible build→probe stage pair into one launch: the build
//! terminal installs the shared hash table in K slices, publishing each
//! through an inter-segment channel, while the probe segment's leaf
//! scans and its gated probe admits rows of published slices. Whether
//! that wins — and at which K — is a cost-model question, answered here
//! with the same Eq. 2–9 machinery the per-stage search uses:
//!
//! * the fused pair can at best run in `max(T_b, T_p)` (Eq. 2–9 stage
//!   totals), but the probe tail cannot finish before the last slice
//!   installs, so `T_b / K` of the build remains on the critical path;
//! * slicing is not free: every build row takes a staging detour (one
//!   sequential write + one read-back of the table volume at memory
//!   bandwidth), both ends sweep the table once for the per-slice
//!   checksums (cache bandwidth), and each slice costs a publication
//!   round-trip.
//!
//! [`attach_overlap`] evaluates this per pair over the slice grid and
//! sets [`StageConfig::overlap_slices`] on the build stage only when the
//! modeled pipelined time beats the sequential sum — a *post-pass* over
//! the optimized config, so the base search (and the pinned outcomes of
//! the three sequential modes) stays byte-identical.

use crate::analyze::StageModel;
use crate::cost::{estimate_stage, StageEstimate};
use crate::gamma::GammaTable;
use crate::search::slice_grid;
use gpl_core::plan::QueryPlan;
use gpl_core::segment::overlap_pairs;
use gpl_core::QueryConfig;
use gpl_sim::DeviceSpec;

/// One pair's verdict: the chosen K (0 = stay sequential) and the
/// modeled cycle counts behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapDecision {
    pub build_stage: usize,
    pub probe_stage: usize,
    /// Chosen overlap slices; 0 means the pair runs sequentially.
    pub slices: u32,
    /// Modeled sequential cycles for the pair (`T_b + T_p`).
    pub sequential: f64,
    /// Modeled fused cycles at the chosen K (equals `sequential` when
    /// `slices == 0`).
    pub pipelined: f64,
}

/// How much of the probe segment's Eq. 8 delay the fused launch claws
/// back. Fused launches cap work-unit rows (`gpl::FUSED_UNIT_ROWS`), so
/// a kernel that waited out a dispatch-lane rotation drains its backlog
/// as many small units spread across CUs instead of one serial gulp —
/// roughly halving the cascade's idle bubbles in measurement.
const DELAY_RECLAIM: f64 = 0.5;

/// Modeled fused-pair time at K slices, from the pair's Eq. 2–9 stage
/// estimates, the probe-side work share at or downstream of the gated
/// kernel, and the built table's footprint. Three effects compose:
///
/// * the pair shares one launch, and unit-row capping reclaims part of
///   the probe's Eq. 8 delay (`tp_f`);
/// * the build pays the slice detour: the staged entries cross the
///   cache twice when `2 × table_bytes` stays cache-resident, and at
///   write-allocate + write-back memory cost once they spill (the
///   probe leaf's streams evict them — measured as a doubling of the
///   install's memory cycles); both ends sweep the table once more for
///   the per-slice checksums, and each slice costs a publication
///   round-trip;
/// * of the probe's work, only the share behind the gate must trail
///   the last slice — and only its final 1/K-th of it, since earlier
///   slices admit while later ones install.
pub fn pipelined_estimate(
    spec: &DeviceSpec,
    build: &StageEstimate,
    probe: &StageEstimate,
    gated_share: f64,
    table_bytes: u64,
    k: u32,
) -> f64 {
    let k = k.max(1) as f64;
    let tbl = table_bytes as f64;
    let cached = 2 * table_bytes <= spec.cache_bytes;
    let staging = if cached {
        2.0 * tbl / spec.cache_bytes_per_cycle as f64
    } else {
        4.0 * tbl / spec.mem_bytes_per_cycle as f64
    };
    let checksum = 2.0 * tbl / spec.cache_bytes_per_cycle as f64;
    // Publication record + admission bookkeeping per slice.
    let per_slice = 512.0 * spec.issue_cycles as f64;
    let tb_f = build.total + staging + checksum + per_slice * k;
    let tp_f = (probe.total - DELAY_RECLAIM * probe.delay - spec.launch_cycles as f64).max(1.0);
    tb_f.max(tp_f) + gated_share * tp_f / k
}

/// Decide, per eligible pair of `plan`, whether cross-segment overlap
/// pays off under `config`, and write the winning K into the build
/// stage's [`gpl_core::StageConfig::overlap_slices`] (0 when sequential
/// wins). Returns the per-pair decisions for reporting.
pub fn attach_overlap(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    plan: &QueryPlan,
    models: &[StageModel],
    config: &mut QueryConfig,
) -> Vec<OverlapDecision> {
    let mut out = Vec::new();
    for pair in overlap_pairs(&plan.stages) {
        let be = estimate_stage(
            spec,
            gamma,
            &models[pair.build_stage],
            &config.stages[pair.build_stage],
        );
        let pe = estimate_stage(
            spec,
            gamma,
            &models[pair.probe_stage],
            &config.stages[pair.probe_stage],
        );
        // The build terminal's kernel model carries the table footprint.
        let table_bytes = models[pair.build_stage]
            .kernels
            .last()
            .map(|k| k.ht_footprint)
            .unwrap_or(0);
        // Share of the probe's Eq. 7 work at or downstream of the gated
        // kernel — the part that must trail slice publication.
        let gk = models[pair.probe_stage]
            .ir
            .nodes
            .iter()
            .position(|n| n.ops.first() == Some(&pair.probe_op))
            .unwrap_or(0);
        let t_all: f64 = pe.per_kernel.iter().map(|c| c.t()).sum();
        let t_gated: f64 = pe.per_kernel[gk..].iter().map(|c| c.t()).sum();
        let gated_share = if t_all > 0.0 { t_gated / t_all } else { 1.0 };
        let sequential = be.total + pe.total;
        let (mut best, mut best_k) = (f64::INFINITY, 0u32);
        for &k in &slice_grid() {
            let est = pipelined_estimate(spec, &be, &pe, gated_share, table_bytes, k);
            if est < best {
                best = est;
                best_k = k;
            }
        }
        let slices = if best < sequential { best_k } else { 0 };
        config.stages[pair.build_stage].overlap_slices = slices;
        out.push(OverlapDecision {
            build_stage: pair.build_stage,
            probe_stage: pair.probe_stage,
            slices,
            sequential,
            pipelined: if slices > 0 { best } else { sequential },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::build_models;
    use crate::stats::estimate as estimate_stats;
    use gpl_core::plan::plan_for;
    use gpl_sim::amd_a10;
    use gpl_tpch::{QueryId, TpchDb};

    fn decide(q: QueryId) -> (Vec<OverlapDecision>, QueryConfig) {
        let spec = amd_a10();
        let db = TpchDb::at_scale(0.01);
        let plan = plan_for(&db, q);
        let stats = estimate_stats(&db, &plan);
        let models = build_models(&db, &plan, &stats, &spec);
        let gamma = GammaTable::calibrate(&spec);
        let mut config = QueryConfig::default_for(&spec, &plan);
        let d = attach_overlap(&spec, &gamma, &plan, &models, &mut config);
        (d, config)
    }

    #[test]
    fn q14_overlap_fires_and_sets_the_knob() {
        let (d, config) = decide(QueryId::Q14);
        assert_eq!(d.len(), 1);
        assert!(d[0].slices > 0, "Q14's pair should overlap: {d:?}");
        assert!(d[0].pipelined < d[0].sequential);
        assert_eq!(config.stages[d[0].build_stage].overlap_slices, d[0].slices);
    }

    #[test]
    fn q9_overlap_fires() {
        let (d, _) = decide(QueryId::Q9);
        assert!(!d.is_empty(), "Q9 has at least one eligible pair");
        assert!(
            d.iter().any(|x| x.slices > 0),
            "Q9 should overlap at least one pair: {d:?}"
        );
    }

    #[test]
    fn pipelined_estimate_monotone_in_overhead() {
        let spec = amd_a10();
        // More slices shrink the gated tail behind the last slice but pay
        // more per-slice overhead; with a zero-byte table the K=1 tail
        // dominates.
        let est = StageEstimate {
            per_kernel: Vec::new(),
            num_tiles: 1,
            delay: 0.0,
            overhead: 0.0,
            total: 1_000_000.0,
        };
        let e1 = pipelined_estimate(&spec, &est, &est, 0.5, 0, 1);
        let e8 = pipelined_estimate(&spec, &est, &est, 0.5, 0, 8);
        assert!(e8 < e1);
    }

    #[test]
    fn cache_spill_makes_the_detour_expensive() {
        let spec = amd_a10();
        let est = StageEstimate {
            per_kernel: Vec::new(),
            num_tiles: 1,
            delay: 0.0,
            overhead: 0.0,
            total: 1_000_000.0,
        };
        // A table past half the cache pays memory-bandwidth staging; the
        // jump must be visible so the predicate declines at scales where
        // the probe's streams evict the staged entries.
        let resident = pipelined_estimate(&spec, &est, &est, 0.5, spec.cache_bytes / 2, 4);
        let spilled = pipelined_estimate(&spec, &est, &est, 0.5, spec.cache_bytes / 2 + 1, 4);
        assert!(spilled > resident + 1_000_000.0);
    }
}
