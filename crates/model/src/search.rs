//! Parameter search (Section 4.1, last part): explore Δ, n, p and wg_Ki
//! within their feasible ranges and pick the configuration minimizing the
//! estimated segment time. The space is pruned exactly as the paper
//! describes — n in [1, 16], wg as integral multiples of #CU, a small
//! tile-size grid — and the whole optimization must stay in the
//! low-millisecond range ("generally smaller than 5 ms").

use crate::analyze::{build_models, StageModel};
use crate::cost::{estimate_query, estimate_stage};
use crate::gamma::GammaTable;
use crate::stats;
use gpl_core::plan::QueryPlan;
use gpl_core::{QueryConfig, StageConfig};
use gpl_sim::DeviceSpec;
use gpl_tpch::TpchDb;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The Δ grid of Figure 12: 256 KB to 16 MB.
pub fn tile_grid() -> Vec<u64> {
    vec![
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
    ]
}

/// Channel-count grid (the paper searches n in [1, 16]).
pub fn channel_grid() -> Vec<u32> {
    vec![1, 2, 4, 8, 16]
}

/// Packet-size grid (AMD only; NVIDIA's packet size is fixed).
pub fn packet_grid(spec: &DeviceSpec) -> Vec<u32> {
    if spec.channel.tunable_packet_size {
        vec![8, 16, 32, 64]
    } else {
        vec![spec.channel.fixed_packet_bytes]
    }
}

/// Work-group multipliers (wg_Ki = multiplier × #CU).
pub fn wg_multiplier_grid() -> Vec<u32> {
    vec![1, 2, 4, 8, 16]
}

/// Overlap-slice grid (K) for cross-segment pipelining. This knob sits
/// next to Δ/n/p/wg but is searched by [`crate::overlap::attach_overlap`]
/// as a *post-pass* over the already-optimized per-stage configs — the
/// base search stays byte-identical for the three sequential modes,
/// which pinned serve fingerprints depend on.
pub fn slice_grid() -> Vec<u32> {
    vec![1, 2, 4, 8]
}

/// Result of optimizing one plan.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    pub config: QueryConfig,
    /// Estimated total query cycles under `config`.
    pub estimate: f64,
    /// Wall time spent searching (the "<5 ms" claim of Section 4.1).
    pub elapsed: Duration,
    /// Cost-model evaluations performed.
    pub evaluated: usize,
}

/// Optimize every stage of `plan`.
pub fn optimize(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    db: &TpchDb,
    plan: &QueryPlan,
) -> SearchOutcome {
    let stats = stats::estimate(db, plan);
    let models = build_models(db, plan, &stats, spec);
    optimize_models(spec, gamma, plan, &models)
}

/// A thread-safe LRU memo for Section-4 search outcomes.
///
/// The paper keeps the knob search under 5 ms *per query*; a server
/// planning the same normalized query thousands of times should pay it
/// once. Keys are caller-composed (the serving layer uses
/// `normalized SQL × device × exec mode`) so one cache can serve many
/// devices without cross-talk. Hit/miss counters are cumulative and
/// survive eviction.
pub struct SearchCache {
    inner: Mutex<SearchCacheInner>,
    capacity: usize,
}

struct SearchCacheInner {
    map: HashMap<String, (QueryConfig, f64)>,
    /// Recency order, least-recent first.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl SearchCache {
    pub fn new(capacity: usize) -> Self {
        SearchCache {
            inner: Mutex::new(SearchCacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Cached `(config, estimate)` for `key`, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<(QueryConfig, f64)> {
        let mut inner = self.inner.lock().expect("search cache poisoned");
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                inner.order.retain(|k| k != key);
                inner.order.push_back(key.to_string());
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert, evicting the least-recently-used entry past capacity.
    pub fn insert(&self, key: String, config: QueryConfig, estimate: f64) {
        let mut inner = self.inner.lock().expect("search cache poisoned");
        if inner.map.insert(key.clone(), (config, estimate)).is_none() {
            inner.order.push_back(key);
        } else {
            inner.order.retain(|k| k != &key);
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&victim);
        }
    }

    /// Cumulative `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("search cache poisoned");
        (inner.hits, inner.misses)
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("search cache poisoned").map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache key the serving layer uses: device × plan identity.
    /// `plan_key` must uniquely identify the plan's structure (the server
    /// passes normalized SQL + exec mode; tests may pass a query name).
    pub fn key_for(spec: &DeviceSpec, plan_key: &str) -> String {
        format!("{}\u{1f}{}", spec.name, plan_key)
    }
}

/// [`optimize_models`] through a [`SearchCache`]: a hit skips the grid
/// search entirely (`evaluated == 0`, `elapsed` ≈ lock time); a miss runs
/// the full search and populates the cache. Because the search is
/// deterministic, a cached config is identical to a freshly searched one
/// — the differential property `tests` pin exactly that.
pub fn optimize_models_cached(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    plan: &QueryPlan,
    models: &[StageModel],
    cache: &SearchCache,
    plan_key: &str,
) -> SearchOutcome {
    let key = SearchCache::key_for(spec, plan_key);
    let start = Instant::now();
    if let Some((config, estimate)) = cache.get(&key) {
        return SearchOutcome {
            config,
            estimate,
            elapsed: start.elapsed(),
            evaluated: 0,
        };
    }
    let out = optimize_models(spec, gamma, plan, models);
    cache.insert(key, out.config.clone(), out.estimate);
    out
}

/// Optimize given prebuilt stage models (lets callers reuse λ estimates).
pub fn optimize_models(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    plan: &QueryPlan,
    models: &[StageModel],
) -> SearchOutcome {
    optimize_models_traced(spec, gamma, plan, models, None)
}

/// [`optimize_models`], recording the search into `rec` when present: one
/// span per stage (carrying the winning configuration) and one instant
/// event per explored (Δ, n, p) grid point with its post-descent Eq. 8
/// score. Timestamps come from the recorder's logical clock — the search
/// has no simulated cycles, and wall time would break determinism.
pub fn optimize_models_traced(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    plan: &QueryPlan,
    models: &[StageModel],
    rec: Option<&gpl_obs::Recorder>,
) -> SearchOutcome {
    let start = Instant::now();
    let mut evaluated = 0usize;
    let stages = models
        .iter()
        .enumerate()
        .map(|(idx, sm)| {
            let span = rec.map(|r| {
                let t = r.track("model.search");
                r.begin(t, "search", format!("stage{idx}"), r.tick())
            });
            let before = evaluated;
            let cfg = optimize_stage(spec, gamma, sm, &mut evaluated, rec, idx);
            if let (Some(r), Some(s)) = (rec, span) {
                r.arg(s, "tile_bytes", cfg.tile_bytes);
                r.arg(s, "n_channels", cfg.n_channels);
                r.arg(s, "packet_bytes", cfg.packet_bytes);
                r.arg(s, "evaluated", evaluated - before);
                r.end(s, r.tick());
            }
            cfg
        })
        .collect();
    let config = QueryConfig { stages };
    let estimate = estimate_query(spec, gamma, models, &config, !plan.order_by.is_empty());
    SearchOutcome {
        config,
        estimate,
        elapsed: start.elapsed(),
        evaluated,
    }
}

fn optimize_stage(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    sm: &StageModel,
    evaluated: &mut usize,
    rec: Option<&gpl_obs::Recorder>,
    stage_idx: usize,
) -> StageConfig {
    let kernels = sm.ir.nodes.len();
    let mut best: Option<(f64, StageConfig)> = None;
    // Respect the device's channel fan-out cap (the CPU profile stops
    // at 4); a config past it would abort at channel creation.
    let ns: Vec<u32> = channel_grid()
        .into_iter()
        .filter(|&n| n <= spec.channel.max_channels)
        .collect();
    for &tile in &tile_grid() {
        for &n in &ns {
            for &p in &packet_grid(spec) {
                let mut cfg = StageConfig {
                    tile_bytes: tile,
                    n_channels: n,
                    packet_bytes: p,
                    wg_counts: vec![4 * spec.num_cus; kernels],
                    overlap_slices: 0,
                };
                // Coordinate descent on the per-kernel work-group counts,
                // which the paper tunes to minimize the delay cost.
                let mut cur = estimate_stage(spec, gamma, sm, &cfg).total;
                *evaluated += 1;
                for _round in 0..2 {
                    let mut improved = false;
                    for k in 0..kernels {
                        let orig = cfg.wg_counts[k];
                        for &mult in &wg_multiplier_grid() {
                            let cand = mult * spec.num_cus;
                            if cand == cfg.wg_counts[k] {
                                continue;
                            }
                            cfg.wg_counts[k] = cand;
                            let e = estimate_stage(spec, gamma, sm, &cfg).total;
                            *evaluated += 1;
                            if e < cur {
                                cur = e;
                                improved = true;
                            } else {
                                cfg.wg_counts[k] = orig;
                            }
                        }
                    }
                    if !improved {
                        break;
                    }
                }
                if let Some(r) = rec {
                    let t = r.track("model.search");
                    r.instant(
                        t,
                        "search",
                        "candidate",
                        r.tick(),
                        vec![
                            ("stage", gpl_obs::Value::from(stage_idx)),
                            ("tile_bytes", gpl_obs::Value::from(tile)),
                            ("n_channels", gpl_obs::Value::from(n)),
                            ("packet_bytes", gpl_obs::Value::from(p)),
                            ("est_cycles", gpl_obs::Value::from(cur)),
                        ],
                    );
                }
                if best.as_ref().map(|(b, _)| cur < *b).unwrap_or(true) {
                    best = Some((cur, cfg));
                }
            }
        }
    }
    best.expect("non-empty search grids").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_core::plan_for;
    use gpl_sim::amd_a10;
    use gpl_tpch::QueryId;

    fn gamma() -> GammaTable {
        GammaTable::calibrate_grid(
            &amd_a10(),
            vec![1, 4, 16],
            vec![16, 64],
            vec![256 << 10, 2 << 20, 16 << 20],
        )
    }

    #[test]
    fn search_produces_valid_configs_fast() {
        let spec = amd_a10();
        let g = gamma();
        let db = TpchDb::at_scale(0.01);
        let plan = plan_for(&db, QueryId::Q8);
        let out = optimize(&spec, &g, &db, &plan);
        assert_eq!(out.config.stages.len(), plan.stages.len());
        for (stage, cfg) in plan.stages.iter().zip(&out.config.stages) {
            assert_eq!(cfg.wg_counts.len(), stage.gpl_kernel_names().len());
            assert!(tile_grid().contains(&cfg.tile_bytes));
            assert!(cfg.n_channels >= 1 && cfg.n_channels <= 16);
            for &wg in &cfg.wg_counts {
                assert_eq!(wg % spec.num_cus, 0, "wg must be a multiple of #CU");
            }
        }
        assert!(out.estimate.is_finite() && out.estimate > 0.0);
        assert!(out.evaluated > 100);
        // The paper reports <5 ms; allow slack for debug builds and the
        // λ-estimation pass.
        assert!(
            out.elapsed.as_millis() < 2_000,
            "search took {:?}",
            out.elapsed
        );
    }

    #[test]
    fn cached_search_returns_the_identical_config_without_evaluations() {
        let spec = amd_a10();
        let g = gamma();
        let db = TpchDb::at_scale(0.01);
        let plan = plan_for(&db, QueryId::Q14);
        let st = stats::estimate(&db, &plan);
        let ms = build_models(&db, &plan, &st, &spec);
        let cache = SearchCache::new(8);
        let cold = optimize_models_cached(&spec, &g, &plan, &ms, &cache, "q14");
        assert!(cold.evaluated > 0);
        let warm = optimize_models_cached(&spec, &g, &plan, &ms, &cache, "q14");
        assert_eq!(warm.evaluated, 0, "hit must skip the grid search");
        assert_eq!(warm.config, cold.config);
        assert_eq!(warm.estimate, cold.estimate);
        let fresh = optimize_models(&spec, &g, &plan, &ms);
        assert_eq!(
            warm.config, fresh.config,
            "cache must not change the answer"
        );
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn search_cache_evicts_least_recently_used() {
        let cache = SearchCache::new(2);
        let cfg = QueryConfig { stages: vec![] };
        cache.insert("a".into(), cfg.clone(), 1.0);
        cache.insert("b".into(), cfg.clone(), 2.0);
        assert!(cache.get("a").is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), cfg, 3.0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn device_name_separates_cache_keys() {
        let a = SearchCache::key_for(&amd_a10(), "q1|Gpl");
        let n = SearchCache::key_for(&gpl_sim::nvidia_k40(), "q1|Gpl");
        assert_ne!(a, n);
    }

    #[test]
    fn chosen_config_beats_the_worst_grid_point() {
        let spec = amd_a10();
        let g = gamma();
        let db = TpchDb::at_scale(0.01);
        let plan = plan_for(&db, QueryId::Q14);
        let st = stats::estimate(&db, &plan);
        let ms = build_models(&db, &plan, &st, &spec);
        let out = optimize_models(&spec, &g, &plan, &ms);
        // Compare against a deliberately bad configuration.
        let bad = QueryConfig {
            stages: plan
                .stages
                .iter()
                .map(|s| StageConfig {
                    tile_bytes: 256 << 10,
                    n_channels: 1,
                    packet_bytes: 8,
                    wg_counts: vec![spec.num_cus; s.gpl_kernel_names().len()],
                    overlap_slices: 0,
                })
                .collect(),
        };
        let bad_est = estimate_query(&spec, &g, &ms, &bad, false);
        assert!(
            out.estimate <= bad_est,
            "optimizer {} vs bad {}",
            out.estimate,
            bad_est
        );
    }
}
