//! Query-optimizer inputs (Table 2): the data-reduction ratios λ_Ki.
//!
//! The paper takes λ from the database query optimizer. Here the
//! estimator plays that role: build-side pipelines are evaluated exactly
//! (dimension relations are small), and the fact-side pipeline is
//! evaluated on an evenly-spaced row sample, yielding per-kernel
//! output/input ratios that capture even correlated predicates (e.g.
//! Q5's `c_nationkey = s_nationkey` after two probes).

use gpl_core::ht::BuildMix64;
use gpl_core::ops::{apply_compute, apply_filter, Chunk};
use gpl_core::plan::{PipeOp, QueryPlan, Stage, Terminal};

use gpl_tpch::TpchDb;
use std::collections::HashMap;

/// Estimated statistics for one plan.
#[derive(Debug, Clone)]
pub struct PlanStats {
    /// Per stage, per GPL kernel group (fusion groups, excluding the
    /// terminal): estimated output/input row ratio λ.
    pub stage_lambdas: Vec<Vec<f64>>,
    /// Per stage: fraction of driver rows reaching the terminal.
    pub stage_selectivity: Vec<f64>,
    /// Per hash table: estimated build cardinality.
    pub ht_rows: Vec<f64>,
}

/// Rows sampled from the driving relation of fact-side stages.
pub const SAMPLE_ROWS: usize = 4096;

struct MiniHt {
    map: HashMap<i64, Vec<i64>, BuildMix64>,
}

fn eval_group(ops: &[&PipeOp], mut chunk: Chunk, hts: &[Option<MiniHt>]) -> (Chunk, f64) {
    let rows_in = chunk.rows.max(1) as f64;
    for op in ops {
        if chunk.rows == 0 {
            break;
        }
        match op {
            PipeOp::Filter(p) => chunk = apply_filter(&chunk, p),
            PipeOp::Compute { expr, out } => apply_compute(&mut chunk, expr, *out),
            PipeOp::Probe { ht, key, payloads } => {
                let table = hts[*ht].as_ref().expect("probe after build");
                let mut keep = Vec::new();
                let mut pay: Vec<Vec<i64>> = vec![Vec::new(); payloads.len()];
                for r in 0..chunk.rows {
                    if let Some(p) = table.map.get(&chunk.cols[*key][r]) {
                        keep.push(r);
                        for (i, v) in p.iter().enumerate() {
                            pay[i].push(*v);
                        }
                    }
                }
                let mut out = Chunk::new(chunk.cols.len());
                out.rows = keep.len();
                for s in 0..chunk.cols.len() {
                    if chunk.filled[s] {
                        out.cols[s] = keep.iter().map(|&r| chunk.cols[s][r]).collect();
                        out.filled[s] = true;
                    }
                }
                for (i, &s) in payloads.iter().enumerate() {
                    out.cols[s] = std::mem::take(&mut pay[i]);
                    out.filled[s] = true;
                }
                chunk = out;
            }
        }
    }
    (chunk, rows_in)
}

fn load_chunk(db: &TpchDb, stage: &Stage, rows: &[usize]) -> Chunk {
    let t = db.table(&stage.driver);
    let mut chunk = Chunk::new(stage.num_slots());
    for (s, name) in stage.loads.iter().enumerate() {
        let col = t.col(name);
        chunk.fill(s, col.gather_i64(rows));
    }
    chunk
}

/// Estimate λ for every kernel group of every stage of `plan`.
pub fn estimate(db: &TpchDb, plan: &QueryPlan) -> PlanStats {
    estimate_grouped(db, plan, |stage| stage.gpl_fusion())
}

/// Per-op λ estimates (used by the join-order optimizer): each op is its
/// own group.
pub fn estimate_per_op(db: &TpchDb, plan: &QueryPlan) -> Vec<Vec<f64>> {
    estimate_grouped(db, plan, |stage| {
        (0..stage.ops.len()).map(|i| vec![i]).collect()
    })
    .stage_lambdas
}

fn estimate_grouped(
    db: &TpchDb,
    plan: &QueryPlan,
    grouping: impl Fn(&Stage) -> Vec<Vec<usize>>,
) -> PlanStats {
    let mut hts: Vec<Option<MiniHt>> = (0..plan.num_hts).map(|_| None).collect();
    let mut stage_lambdas = Vec::with_capacity(plan.stages.len());
    let mut stage_selectivity = Vec::with_capacity(plan.stages.len());
    let mut ht_rows = vec![0.0; plan.num_hts];

    for stage in &plan.stages {
        let total = db.table(&stage.driver).rows();
        let is_build = matches!(stage.terminal, Terminal::HashBuild { .. });
        // Build sides are evaluated exactly (their tables must be
        // populated for downstream probes); fact sides are sampled.
        let rows: Vec<usize> = if is_build || total <= SAMPLE_ROWS {
            (0..total).collect()
        } else {
            let step = total as f64 / SAMPLE_ROWS as f64;
            (0..SAMPLE_ROWS)
                .map(|i| (i as f64 * step) as usize)
                .collect()
        };
        let scale = total as f64 / rows.len().max(1) as f64;

        let mut chunk = load_chunk(db, stage, &rows);
        let groups = grouping(stage);
        let mut lambdas = Vec::with_capacity(groups.len());
        for g in &groups {
            let ops: Vec<&PipeOp> = g.iter().map(|&i| &stage.ops[i]).collect();
            let (out, rows_in) = eval_group(&ops, chunk, &hts);
            lambdas.push((out.rows as f64 / rows_in).clamp(0.0, 1.0));
            chunk = out;
        }
        let sel = if rows.is_empty() {
            0.0
        } else {
            chunk.rows as f64 / rows.len() as f64
        };
        stage_selectivity.push(sel);

        if let Terminal::HashBuild { ht, key, payloads } = &stage.terminal {
            let mut map = HashMap::with_capacity_and_hasher(chunk.rows, BuildMix64::default());
            for r in 0..chunk.rows {
                let pay: Vec<i64> = payloads.iter().map(|&p| chunk.cols[p][r]).collect();
                map.insert(chunk.cols[*key][r], pay);
            }
            ht_rows[*ht] = chunk.rows as f64 * scale;
            hts[*ht] = Some(MiniHt { map });
        }
        stage_lambdas.push(lambdas);
    }
    PlanStats {
        stage_lambdas,
        stage_selectivity,
        ht_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_core::plan_for;
    use gpl_tpch::QueryId;

    fn db() -> TpchDb {
        TpchDb::at_scale(0.01)
    }

    #[test]
    fn q14_lambdas_track_the_date_window() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q14);
        let s = estimate(&db, &plan);
        // Build stage: part, unfiltered.
        assert!((s.stage_lambdas[0][0] - 1.0).abs() < 1e-9);
        assert!((s.ht_rows[0] - db.part.rows() as f64).abs() < 1.0);
        // Probe stage leaf: ~1 month of ~83 => a few percent.
        let leaf = s.stage_lambdas[1][0];
        assert!(leaf > 0.001 && leaf < 0.05, "leaf λ = {leaf}");
        // Probe group: every surviving row matches a part.
        assert!((s.stage_lambdas[1][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn q8_probe_selectivities_multiply_down() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q8);
        let s = estimate(&db, &plan);
        let probe = s.stage_lambdas.last().expect("probe stage");
        // The leaf group fuses the ~1/150 steel semi-probe.
        assert!(probe[0] < 0.05, "leaf+steel λ = {}", probe[0]);
        // Overall selectivity is far below any single λ.
        let sel = s.stage_selectivity.last().unwrap();
        assert!(*sel < probe[0], "overall {sel} < steel {}", probe[0]);
    }

    #[test]
    fn q5_correlated_filter_is_captured() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q5);
        let s = estimate(&db, &plan);
        let probe = s.stage_lambdas.last().expect("probe stage");
        // The c_nation = s_nation filter is fused into the last probe
        // group; its λ must be well below the probe-only match rate.
        let last = *probe.last().unwrap();
        assert!(last < 0.5, "correlated filter λ = {last}");
        assert!(last > 0.0);
    }

    #[test]
    fn estimates_are_deterministic() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q9);
        let a = estimate(&db, &plan);
        let b = estimate(&db, &plan);
        assert_eq!(a.stage_lambdas, b.stage_lambdas);
    }
}
