//! The analytical cost model (Section 4.1, Eq. 2–9).
//!
//! Given a [`StageModel`], a device, the calibrated Γ table and a
//! candidate configuration (Δ, n, p, wg_Ki), estimate the segment's
//! execution time:
//!
//! * **Eq. 2** — residency: private-memory / local-memory / `wg_max`
//!   budgets shared by the co-resident kernels bound `a_wg_Ki`.
//! * **Eq. 3/4** — computation cost: `(c_inst + m_inst) · w`, served by
//!   `a_wg · #CU` work-group slots in `req` rounds.
//! * **Eq. 5** — global-memory cost for leaf kernels (`set_l`) and
//!   post-blocking kernels (`set_b`), split by the cache-hit surrogate.
//! * **Eq. 6** — channel cost `Δ·λ / Γ(n, p, Δ·λ)` for the rest.
//! * **Eq. 7** — `T_Ki = c_Ki + m_Ki`.
//! * **Eq. 8** — delay between adjacent kernels of the pipeline.
//! * **Eq. 9** — segment time `(1/C)·Σ T_Ki + delay`.

use crate::analyze::StageModel;
use crate::gamma::GammaTable;
use gpl_core::StageConfig;
use gpl_sim::{DeviceSpec, ResourceUsage};

/// Estimated cost of one kernel, per tile (cycles).
#[derive(Debug, Clone, Copy)]
pub struct KernelCost {
    /// Computation cycles (Eq. 4).
    pub c: f64,
    /// Memory cycles: global (Eq. 5) plus channel (Eq. 6).
    pub m: f64,
    /// Channel component of `m` (for the Figure 20 breakdown).
    pub dc: f64,
    /// Resident work-groups per CU granted by Eq. 2.
    pub a_wg: u32,
}

impl KernelCost {
    /// Eq. 7.
    pub fn t(&self) -> f64 {
        self.c + self.m
    }
}

/// Estimated cost of one stage.
#[derive(Debug, Clone)]
pub struct StageEstimate {
    pub per_kernel: Vec<KernelCost>,
    pub num_tiles: u64,
    /// Eq. 8, whole stage.
    pub delay: f64,
    /// Launch and per-tile scheduling overheads.
    pub overhead: f64,
    /// Eq. 9, whole stage (cycles).
    pub total: f64,
}

/// Eq. 2: allocate per-CU work-group residency among co-launched kernels
/// (mirrors the simulator's allocator: one slot guaranteed, round-robin
/// growth while the budgets hold, capped by each kernel's own wg count).
pub fn allocate_residency(
    spec: &DeviceSpec,
    kernels: &[(ResourceUsage, u32)], // (resources, wg count)
) -> Vec<u32> {
    let want: Vec<u32> = kernels
        .iter()
        .map(|(_, wg)| wg.div_ceil(spec.num_cus).max(1))
        .collect();
    let mut res = vec![1u32; kernels.len()];
    let fits = |res: &[u32], extra: usize| -> bool {
        let mut pm = 0u64;
        let mut lm = 0u64;
        let mut wg = 0u64;
        for (i, (r, _)) in kernels.iter().enumerate() {
            let n = res[i] as u64 + u64::from(i == extra);
            pm += r.private_bytes_per_wg() * n;
            lm += r.local_bytes_per_wg as u64 * n;
            wg += n;
        }
        pm <= spec.private_mem_per_cu
            && lm <= spec.local_mem_per_cu
            && wg <= spec.max_wg_per_cu as u64
    };
    loop {
        let mut grew = false;
        for i in 0..kernels.len() {
            if res[i] < want[i] && fits(&res, i) {
                res[i] += 1;
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    res
}

/// Cache-hit-ratio surrogate for randomly-accessed structures: the
/// fraction of a structure that fits in cache alongside the streaming
/// tile (the "profiling input" `cr_Ki` of Table 2, obtained here in
/// closed form instead of from CodeXL).
fn cr_random(footprint: u64, tile_bytes: u64, cache_bytes: u64) -> f64 {
    if footprint == 0 {
        return 1.0;
    }
    let available = cache_bytes.saturating_sub(tile_bytes.min(cache_bytes / 2)) as f64;
    (available / footprint as f64).clamp(0.05, 1.0)
}

/// Estimate one stage under `cfg` (Eq. 2–9).
pub fn estimate_stage(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    sm: &StageModel,
    cfg: &StageConfig,
) -> StageEstimate {
    sm.ir.validate_config(cfg).unwrap_or_else(|e| panic!("{e}"));
    let tile_rows = (cfg.tile_bytes / sm.row_bytes).clamp(1, sm.driver_rows.max(1));
    let num_tiles = sm.driver_rows.div_ceil(tile_rows).max(1);
    let wavefront = spec.wavefront_size as f64;

    let residency = allocate_residency(
        spec,
        &sm.kernels
            .iter()
            .zip(&cfg.wg_counts)
            .map(|(k, &wg)| (k.resources, wg))
            .collect::<Vec<_>>(),
    );

    let mut per_kernel = Vec::with_capacity(sm.kernels.len());
    for (i, k) in sm.kernels.iter().enumerate() {
        let rows_in = tile_rows as f64 * k.in_ratio;
        let rows_out = rows_in * k.lambda;
        // Eq. 3/4: instruction issue. Vector ALUs serialize the resident
        // work-groups of a CU, so issue bandwidth scales with the number
        // of CUs the kernel's work-groups actually cover — `wg_Ki` and
        // the Eq. 2 residency bound how many that is.
        let insts = rows_in * (k.per_row_compute + k.per_row_mem) as f64 / wavefront;
        let slots = (residency[i] as u64 * spec.num_cus as u64).min(cfg.wg_counts[i] as u64);
        let used_cus = (slots.min(spec.num_cus as u64)).max(1) as f64;
        let c = insts * spec.issue_cycles as f64 / used_cus;

        // Eq. 5: global memory for the leaf scan (set_l) — a cold stream,
        // so it moves at the miss-path bandwidth — plus random
        // hash-structure traffic split by the cr surrogate.
        let mut m = 0.0;
        if k.scan_bytes_per_row > 0 {
            let bytes =
                rows_in * k.scan_bytes_per_row as f64 + rows_out * k.lazy_bytes_per_row as f64;
            m += bytes / spec.mem_bytes_per_cycle as f64 / used_cus + spec.mem_latency as f64;
        }
        if k.ht_access_bytes > 0 {
            // Hash-build bucket writes are first touches: whole-line cold
            // misses. Probe reads hit according to the footprint.
            let (bytes, cr) = if k.cold_ht {
                (rows_in * 64.0, 0.0)
            } else {
                (
                    rows_in * k.ht_access_bytes as f64,
                    cr_random(k.ht_footprint, cfg.tile_bytes, spec.cache_bytes),
                )
            };
            m += (bytes * cr / spec.cache_bytes_per_cycle as f64
                + bytes * (1.0 - cr) / spec.mem_bytes_per_cycle as f64)
                / used_cus
                + spec.cache_latency as f64;
        }
        // Eq. 6: channel transfers, in and out, over the calibrated Γ,
        // de-rated by the cache pressure of the in-flight working set
        // (channel buffers hold up to a quarter tile per edge).
        let inflight = |d: f64| (d as u64).min(cfg.tile_bytes / 4).max(1);
        let mut dc = 0.0;
        if k.in_width > 0 {
            let d = rows_in * k.in_width as f64;
            let g = gamma
                .lookup(cfg.n_channels, cfg.packet_bytes, d as u64)
                .max(1e-6);
            dc += d / (g * gamma.pressure(inflight(d)));
        }
        if k.out_width > 0 {
            let d = rows_out * k.out_width as f64;
            if d > 0.0 {
                let g = gamma
                    .lookup(cfg.n_channels, cfg.packet_bytes, d as u64)
                    .max(1e-6);
                dc += d / (g * gamma.pressure(inflight(d)));
            }
        }
        // The calibrated Γ covers a full producer→consumer round trip;
        // each endpoint bears half.
        dc *= 0.5;
        m += dc;
        per_kernel.push(KernelCost {
            c,
            m,
            dc,
            a_wg: residency[i],
        });
    }

    // Eq. 8: imbalance between adjacent kernels, accumulated per tile.
    // The ½ is the pairwise-makespan identity max(a, b) = (a+b)/2 +
    // |a−b|/2, which is what the imbalance of two concurrently executing
    // kernels actually costs on top of the Eq. 9 term.
    let delay: f64 = 0.5
        * per_kernel
            .windows(2)
            .map(|w| (w[0].t() - w[1].t()).abs())
            .sum::<f64>()
        * num_tiles as f64;

    // Eq. 9. The effective concurrency is capped by the pipeline depth
    // and by the two hardware pipelines (VALU / memory unit) that
    // actually overlap on a CU — the AMD device's C = 2 coincides with
    // that bound, which is why the paper's 1/C works there.
    let c_eff = spec.concurrency.min(sm.kernels.len() as u32).clamp(1, 2) as f64;
    let sum_t: f64 = per_kernel.iter().map(KernelCost::t).sum::<f64>() * num_tiles as f64;
    // Per-tile overheads beyond Eq. 9: the workload scheduler's dispatch,
    // the pipeline-drain bubble at each tile barrier (downstream kernels
    // finish the last batch with the scan idle — what makes very small
    // tiles "dramatically degrade the data channel efficiency",
    // Section 3.3), and ACE lane interleaving when the pipeline is deeper
    // than `C`.
    let batches_per_tile = (tile_rows as f64 / gpl_core::gpl::SCAN_BATCH_ROWS as f64).max(1.0);
    let bubble: f64 = per_kernel.iter().skip(1).map(KernelCost::t).sum::<f64>() / batches_per_tile
        * num_tiles as f64;
    let lane_cost = spec.lane_switch_cycles as f64
        * (sm.kernels.len() as f64 - spec.concurrency as f64).max(0.0)
        * num_tiles as f64
        * batches_per_tile
        * 0.15;
    let overhead = spec.launch_cycles as f64
        + num_tiles as f64 * 256.0 * spec.issue_cycles as f64
        + bubble
        + lane_cost;
    // Eq. 9 refined with a makespan lower bound: the slowest kernel's
    // total time floors the segment regardless of overlap.
    let slowest = per_kernel.iter().map(KernelCost::t).fold(0.0, f64::max) * num_tiles as f64;
    let total = (sum_t / c_eff + delay).max(slowest) + overhead;
    StageEstimate {
        per_kernel,
        num_tiles,
        delay,
        overhead,
        total,
    }
}

/// Estimate a whole query: the sum of its stage estimates (stages are
/// scheduled one by one, Section 3.1) plus the final sort launch.
pub fn estimate_query(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    models: &[StageModel],
    cfg: &gpl_core::QueryConfig,
    has_sort: bool,
) -> f64 {
    let mut total: f64 = models
        .iter()
        .zip(&cfg.stages)
        .map(|(m, c)| estimate_stage(spec, gamma, m, c).total)
        .sum();
    if has_sort {
        total += spec.launch_cycles as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, stats};
    use gpl_core::{plan_for, QueryConfig};
    use gpl_sim::amd_a10;
    use gpl_tpch::{QueryId, TpchDb};

    fn gamma() -> GammaTable {
        GammaTable::calibrate_grid(
            &amd_a10(),
            vec![1, 4, 16],
            vec![16, 64],
            vec![256 << 10, 2 << 20, 16 << 20],
        )
    }

    #[test]
    fn residency_mirrors_simulator_budgets() {
        let spec = amd_a10();
        let big = ResourceUsage::new(64, 64, 16 * 1024);
        let r = allocate_residency(&spec, &[(big, 1024), (big, 1024)]);
        assert_eq!(r, vec![1, 1]);
        let small = ResourceUsage::new(64, 64, 1024);
        let r2 = allocate_residency(&spec, &[(small, 1024), (small, 1024)]);
        assert!(r2[0] > 4);
        assert!(r2.iter().map(|&x| x as u64).sum::<u64>() <= spec.max_wg_per_cu as u64);
    }

    #[test]
    fn bigger_inputs_cost_more() {
        let spec = amd_a10();
        let g = gamma();
        let small_db = TpchDb::at_scale(0.005);
        let big_db = TpchDb::at_scale(0.04);
        let est = |db: &TpchDb| {
            let plan = plan_for(db, QueryId::Q14);
            let st = stats::estimate(db, &plan);
            let ms = analyze::build_models(db, &plan, &st, &spec);
            let cfg = QueryConfig::default_for(&spec, &plan);
            estimate_query(&spec, &g, &ms, &cfg, false)
        };
        assert!(est(&big_db) > 2.0 * est(&small_db));
    }

    #[test]
    fn delay_responds_to_wg_imbalance() {
        let spec = amd_a10();
        let g = gamma();
        let db = TpchDb::at_scale(0.01);
        let plan = plan_for(&db, QueryId::Q14);
        let st = stats::estimate(&db, &plan);
        let ms = analyze::build_models(&db, &plan, &st, &spec);
        let mut cfg = QueryConfig::default_for(&spec, &plan);
        let probe_cfg = cfg.stages.last_mut().unwrap();
        let balanced = estimate_stage(&spec, &g, ms.last().unwrap(), probe_cfg);
        // Starve the leaf kernel: imbalance should raise the delay term.
        probe_cfg.wg_counts[0] = 1;
        let starved = estimate_stage(&spec, &g, ms.last().unwrap(), probe_cfg);
        assert!(
            starved.delay + starved.per_kernel[0].c > balanced.delay + balanced.per_kernel[0].c
        );
    }

    #[test]
    fn estimate_is_finite_and_positive_for_all_queries() {
        let spec = amd_a10();
        let g = gamma();
        let db = TpchDb::at_scale(0.01);
        for q in QueryId::evaluation_set() {
            let plan = plan_for(&db, q);
            let st = stats::estimate(&db, &plan);
            let ms = analyze::build_models(&db, &plan, &st, &spec);
            let cfg = QueryConfig::default_for(&spec, &plan);
            let e = estimate_query(&spec, &g, &ms, &cfg, true);
            assert!(e.is_finite() && e > 0.0, "{}: {e}", q.name());
        }
    }
}
