//! Model validation (Section 5.2): the relative error of Eq. 10,
//! `|T_measured − T_estimated| / T_measured`, measured by running the
//! simulator and the analytical model on the same configuration.

use crate::analyze::build_models;
use crate::cost::estimate_query;
use crate::gamma::GammaTable;
use crate::stats;
use gpl_core::plan::QueryPlan;
use gpl_core::{run_query, ExecContext, ExecMode, QueryConfig};

/// Eq. 10.
pub fn relative_error(measured: f64, estimated: f64) -> f64 {
    if measured == 0.0 {
        0.0
    } else {
        (measured - estimated).abs() / measured
    }
}

/// Outcome of one measured-vs-estimated comparison.
#[derive(Debug, Clone, Copy)]
pub struct ModelEval {
    pub measured_cycles: u64,
    pub estimated_cycles: f64,
    pub relative_error: f64,
    /// Negative when the model underestimates (the paper notes its model
    /// "generally underestimates the execution time").
    pub signed_error: f64,
}

/// Run `plan` under GPL with `cfg` on the simulator and compare with the
/// analytical estimate.
pub fn evaluate(
    ctx: &mut ExecContext,
    gamma: &GammaTable,
    plan: &QueryPlan,
    cfg: &QueryConfig,
) -> ModelEval {
    let spec = ctx.spec();
    let st = stats::estimate(&ctx.db, plan);
    let models = build_models(&ctx.db, plan, &st, &spec);
    let estimated = estimate_query(&spec, gamma, &models, cfg, !plan.order_by.is_empty());
    ctx.sim.clear_cache();
    let run = run_query(ctx, plan, ExecMode::Gpl, cfg);
    let measured = run.cycles as f64;
    ModelEval {
        measured_cycles: run.cycles,
        estimated_cycles: estimated,
        relative_error: relative_error(measured, estimated),
        signed_error: (estimated - measured) / measured.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_core::plan_for;
    use gpl_sim::amd_a10;
    use gpl_tpch::{QueryId, TpchDb};

    #[test]
    fn relative_error_formula() {
        assert_eq!(relative_error(100.0, 80.0), 0.2);
        assert_eq!(relative_error(100.0, 120.0), 0.2);
        assert_eq!(relative_error(0.0, 10.0), 0.0);
    }

    #[test]
    fn q14_estimate_is_in_the_right_ballpark() {
        let spec = amd_a10();
        let gamma = GammaTable::calibrate_grid(
            &spec,
            vec![1, 4, 16],
            vec![16, 64],
            vec![256 << 10, 2 << 20, 16 << 20],
        );
        let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(0.02));
        let plan = plan_for(&ctx.db, QueryId::Q14);
        let cfg = QueryConfig::default_for(&spec, &plan);
        let eval = evaluate(&mut ctx, &gamma, &plan, &cfg);
        assert!(eval.measured_cycles > 0);
        assert!(
            eval.relative_error < 0.75,
            "model too far off: measured {} estimated {}",
            eval.measured_cycles,
            eval.estimated_cycles
        );
    }
}
