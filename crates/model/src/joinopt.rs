//! Join-order optimization (the Selinger-style \[32\] optimizer the
//! paper's plan generator relies on, Section 3.1).
//!
//! Our probe pipelines are left-deep join chains: each hash probe keeps
//! or drops rows, so the order of probes (and of the filters interleaved
//! with them) determines every intermediate cardinality. This module
//! runs a System-R style dynamic program over probe subsets — classic
//! optimal substructure, with per-op selectivities estimated by sampled
//! evaluation — and rewrites each stage's op order to minimize the total
//! intermediate row count, respecting slot dependencies (a probe cannot
//! run before the op that fills its key slot).

use crate::stats;
use gpl_core::plan::{PipeOp, QueryPlan, Stage};
use gpl_core::Slot;
use gpl_tpch::TpchDb;
use std::collections::HashMap;

/// Per-op estimated selectivity (output rows / input rows).
fn op_lambdas(db: &TpchDb, plan: &QueryPlan) -> Vec<Vec<f64>> {
    // Reuse the sampled-evaluation machinery by treating every op as its
    // own "group": split each stage into singleton groups.
    stats::estimate_per_op(db, plan)
}

/// Slots an op reads / fills.
fn op_reads(op: &PipeOp) -> Vec<Slot> {
    let mut v = Vec::new();
    match op {
        PipeOp::Filter(p) => p.slots(&mut v),
        PipeOp::Probe { key, .. } => v.push(*key),
        PipeOp::Compute { expr, .. } => expr.slots(&mut v),
    }
    v
}

fn op_fills(op: &PipeOp) -> Vec<Slot> {
    match op {
        PipeOp::Filter(_) => Vec::new(),
        PipeOp::Probe { payloads, .. } => payloads.clone(),
        PipeOp::Compute { out, .. } => vec![*out],
    }
}

/// Deterministically extend `order` with every ready non-probe op
/// (cheapest-λ filters first — they only shrink the stream), updating the
/// filled-slot set, cardinality and cumulative cost.
fn apply_ready_maps(
    stage: &Stage,
    lambdas: &[f64],
    used: &mut [bool],
    filled: &mut [bool],
    order: &mut Vec<usize>,
    card: &mut f64,
    cost: &mut f64,
) {
    loop {
        // Among ready, unused non-probe ops, run filters in ascending-λ
        // order and computes only once nothing else is ready (they cost a
        // pass over the stream without shrinking it).
        let mut candidate: Option<(usize, f64, bool)> = None; // (idx, λ, is_filter)
        for (i, op) in stage.ops.iter().enumerate() {
            if used[i] || matches!(op, PipeOp::Probe { .. }) {
                continue;
            }
            if !op_reads(op).iter().all(|&s| filled[s]) {
                continue;
            }
            let is_filter = matches!(op, PipeOp::Filter(_));
            let better = match candidate {
                None => true,
                Some((_, l, f)) => (is_filter && !f) || (is_filter == f && lambdas[i] < l),
            };
            if better {
                candidate = Some((i, lambdas[i], is_filter));
            }
        }
        let Some((i, _, is_filter)) = candidate else {
            break;
        };
        // Defer computes that no pending op needs yet: a compute is only
        // worth running once something reads its output. Terminal inputs
        // make every compute eventually required, so run it if nothing
        // else is available — which is exactly this branch.
        used[i] = true;
        for s in op_fills(&stage.ops[i]) {
            filled[s] = true;
        }
        order.push(i);
        *cost += *card;
        if is_filter {
            *card *= lambdas[i];
        }
    }
}

/// Optimal probe order for one stage via subset DP.
fn reorder_stage(stage: &Stage, lambdas: &[f64], driver_rows: f64) -> Option<Vec<usize>> {
    let probes: Vec<usize> = stage
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, PipeOp::Probe { .. }))
        .map(|(i, _)| i)
        .collect();
    if probes.len() <= 1 {
        return None; // nothing to reorder
    }
    assert!(probes.len() <= 16, "subset DP is for joins of sane arity");

    #[derive(Clone)]
    struct State {
        cost: f64,
        card: f64,
        used: Vec<bool>,
        filled: Vec<bool>,
        order: Vec<usize>,
    }

    let init = {
        let mut used = vec![false; stage.ops.len()];
        let mut filled = vec![false; stage.num_slots()];
        for f in filled.iter_mut().take(stage.loads.len()) {
            *f = true;
        }
        let mut order = Vec::new();
        let mut card = driver_rows;
        let mut cost = 0.0;
        apply_ready_maps(
            stage,
            lambdas,
            &mut used,
            &mut filled,
            &mut order,
            &mut card,
            &mut cost,
        );
        State {
            cost,
            card,
            used,
            filled,
            order,
        }
    };

    let mut best: HashMap<u64, State> = HashMap::new();
    best.insert(0, init);
    let full = (1u64 << probes.len()) - 1;
    for mask in 0..=full {
        let Some(cur) = best.get(&mask).cloned() else {
            continue;
        };
        for (bit, &p) in probes.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                continue;
            }
            if !op_reads(&stage.ops[p]).iter().all(|&s| cur.filled[s]) {
                continue;
            }
            let mut next = cur.clone();
            next.used[p] = true;
            for s in op_fills(&stage.ops[p]) {
                next.filled[s] = true;
            }
            next.order.push(p);
            next.cost += next.card;
            next.card *= lambdas[p];
            apply_ready_maps(
                stage,
                lambdas,
                &mut next.used,
                &mut next.filled,
                &mut next.order,
                &mut next.card,
                &mut next.cost,
            );
            let key = mask | (1 << bit);
            if best.get(&key).map(|b| next.cost < b.cost).unwrap_or(true) {
                best.insert(key, next);
            }
        }
    }
    let done = best.remove(&full)?;
    debug_assert_eq!(done.order.len(), stage.ops.len(), "all ops scheduled");
    Some(done.order)
}

/// Rewrite `plan` with selectivity-optimal probe orders. Results are
/// unchanged (ops commute when dependencies allow); only intermediate
/// cardinalities — and therefore channel traffic and probe work — shrink.
pub fn optimize_join_order(db: &TpchDb, plan: &QueryPlan) -> QueryPlan {
    let lambdas = op_lambdas(db, plan);
    let mut out = plan.clone();
    for (stage, l) in out.stages.iter_mut().zip(&lambdas) {
        let rows = db.table(&stage.driver).rows() as f64;
        if let Some(order) = reorder_stage(stage, l, rows) {
            stage.ops = order.into_iter().map(|i| stage.ops[i].clone()).collect();
        }
    }
    out.validate();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_core::{plan_for, run_query, ExecContext, ExecMode, QueryConfig};
    use gpl_sim::amd_a10;
    use gpl_tpch::{reference, QueryId};

    fn db() -> TpchDb {
        TpchDb::at_scale(0.01)
    }

    fn db_big() -> TpchDb {
        // Large enough that intermediate cardinalities dominate fixed
        // overheads in measured cycles.
        TpchDb::at_scale(0.05)
    }

    #[test]
    fn optimized_plans_stay_correct() {
        let db = db();
        let spec = amd_a10();
        let mut ctx = ExecContext::new(spec.clone(), db.clone());
        for q in [QueryId::Q5, QueryId::Q8, QueryId::Q9, QueryId::Q3] {
            let plan = optimize_join_order(&db, &plan_for(&db, q));
            let cfg = QueryConfig::default_for(&spec, &plan);
            let run = run_query(&mut ctx, &plan, ExecMode::Gpl, &cfg);
            assert_eq!(run.output, reference::run(&ctx.db, q), "{}", q.name());
        }
    }

    #[test]
    fn q8_keeps_the_most_selective_probe_first() {
        let db = db();
        let plan = optimize_join_order(&db, &plan_for(&db, QueryId::Q8));
        let probe_stage = plan.stages.last().expect("probe stage");
        let first_probe = probe_stage
            .ops
            .iter()
            .find_map(|op| match op {
                PipeOp::Probe { ht, .. } => Some(*ht),
                _ => None,
            })
            .expect("has probes");
        assert_eq!(first_probe, 0, "the ~1/150 steel semi-join must stay first");
    }

    #[test]
    fn scrambled_q8_is_repaired() {
        let db = db();
        let mut plan = plan_for(&db, QueryId::Q8);
        // Sabotage: move the steel semi-join to the end. The dependency
        // structure allows it (its key is a load slot), but every probe
        // then processes 150x the rows.
        let stage = plan.stages.last_mut().expect("probe stage");
        let steel = stage.ops.remove(0);
        // Legal because the semi-probe reads a load slot and fills none:
        // it can sit anywhere after the loads.
        let last_probe = stage
            .ops
            .iter()
            .rposition(|op| matches!(op, PipeOp::Probe { .. }))
            .expect("probes");
        stage.ops.insert(last_probe + 1, steel);
        plan.validate();

        let fixed = optimize_join_order(&db, &plan);
        let stage = fixed.stages.last().expect("probe stage");
        let first_probe = stage
            .ops
            .iter()
            .find_map(|op| match op {
                PipeOp::Probe { ht, .. } => Some(*ht),
                _ => None,
            })
            .expect("has probes");
        assert_eq!(
            first_probe, 0,
            "optimizer must move the selective probe back up"
        );

        // And the repair is visible in simulated cycles (at a scale where
        // intermediate cardinality dominates fixed overheads).
        let db = db_big();
        let plan = {
            let mut plan = plan_for(&db, QueryId::Q8);
            let stage = plan.stages.last_mut().expect("probe stage");
            let steel = stage.ops.remove(0);
            let last_probe = stage
                .ops
                .iter()
                .rposition(|op| matches!(op, PipeOp::Probe { .. }))
                .expect("probes");
            stage.ops.insert(last_probe + 1, steel);
            plan
        };
        let fixed = optimize_join_order(&db, &plan);
        let spec = amd_a10();
        let mut ctx = ExecContext::new(spec.clone(), db.clone());
        let cfg_bad = QueryConfig::default_for(&spec, &plan);
        let cfg_good = QueryConfig::default_for(&spec, &fixed);
        ctx.sim.clear_cache();
        let bad = run_query(&mut ctx, &plan, ExecMode::Gpl, &cfg_bad);
        ctx.sim.clear_cache();
        let good = run_query(&mut ctx, &fixed, ExecMode::Gpl, &cfg_good);
        assert_eq!(bad.output, good.output);
        assert!(
            good.cycles < bad.cycles,
            "repaired order {} must beat scrambled {}",
            good.cycles,
            bad.cycles
        );
    }

    #[test]
    fn single_probe_stages_are_untouched() {
        let db = db();
        let plan = plan_for(&db, QueryId::Q14);
        let opt = optimize_join_order(&db, &plan);
        for (a, b) in plan.stages.iter().zip(&opt.stages) {
            assert_eq!(a.ops.len(), b.ops.len());
        }
    }
}
