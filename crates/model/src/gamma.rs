//! The Γ relationship (Eq. 1 / Eq. 11): channel throughput as a function
//! of the number of channels `n`, packet size `p` (AMD only) and data
//! size `d`, obtained by calibration (Section 2.1) and consulted by the
//! memory-cost term of Eq. 6 / Eq. 12.

use gpl_sim::{calibrate, CalibrationPoint, DeviceSpec, Vendor};

/// Calibrated Γ table with nearest-grid lookup and log-space
/// interpolation over the data-size axis.
#[derive(Debug, Clone)]
pub struct GammaTable {
    vendor: Vendor,
    ns: Vec<u32>,
    ps: Vec<u32>,
    ds: Vec<u64>,
    /// throughput[n_idx][p_idx][d_idx] in bytes per cycle.
    throughput: Vec<Vec<Vec<f64>>>,
    /// Cache-pressure factor per d: the Figure-2 chain's throughput at an
    /// in-flight working set of d, normalized to its peak. ≤ 1; drops
    /// once the in-flight channel data outgrows the cache.
    pressure: Vec<f64>,
}

fn join<T: std::fmt::Display>(v: &[T]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn joinf(v: &[f64]) -> String {
    v.iter()
        .map(|x| format!("{x:.6}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Option<Vec<T>> {
    s.split(',').map(|x| x.parse().ok()).collect()
}

/// The calibration grid used throughout the repository.
pub fn default_grid(spec: &DeviceSpec) -> (Vec<u32>, Vec<u32>, Vec<u64>) {
    // The CPU profile caps channel fan-out below 16; probing past the
    // device limit would abort inside the simulator.
    let ns: Vec<u32> = [1u32, 2, 4, 8, 16]
        .into_iter()
        .filter(|&n| n <= spec.channel.max_channels)
        .collect();
    let ps = if spec.channel.tunable_packet_size {
        vec![8, 16, 32, 64]
    } else {
        vec![spec.channel.fixed_packet_bytes]
    };
    let ds = vec![
        64 << 10,
        256 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
        32 << 20,
    ];
    (ns, ps, ds)
}

impl GammaTable {
    /// Run the producer→consumer calibration over the default grid.
    pub fn calibrate(spec: &DeviceSpec) -> Self {
        let (ns, ps, ds) = default_grid(spec);
        Self::calibrate_grid(spec, ns, ps, ds)
    }

    /// Run the calibration over an explicit grid.
    pub fn calibrate_grid(spec: &DeviceSpec, ns: Vec<u32>, ps: Vec<u32>, ds: Vec<u64>) -> Self {
        let mut throughput = vec![vec![vec![0.0; ds.len()]; ps.len()]; ns.len()];
        for (ni, &n) in ns.iter().enumerate() {
            for (pi, &p) in ps.iter().enumerate() {
                for (di, &d) in ds.iter().enumerate() {
                    throughput[ni][pi][di] =
                        calibrate::run_channel_rate(spec, n, p, d).steady_throughput;
                }
            }
        }
        // Cache-pressure curve from the unbounded-pipe chain (Figure 2):
        // its in-flight working set grows with d, so its normalized
        // throughput is the penalty for keeping d bytes in flight.
        let mid_n = ns[ns.len() / 2];
        let mid_p = ps[ps.len() / 2];
        let raw: Vec<f64> = ds
            .iter()
            .map(|&d| calibrate::run_producer_consumer(spec, mid_n, mid_p, d).steady_throughput)
            .collect();
        let peak = raw.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
        let pressure = raw.iter().map(|&t| (t / peak).clamp(0.05, 1.0)).collect();
        GammaTable {
            vendor: spec.vendor,
            ns,
            ps,
            ds,
            throughput,
            pressure,
        }
    }

    /// Build from precomputed points (tests / serialization).
    pub fn from_points(spec: &DeviceSpec, points: &[CalibrationPoint]) -> Self {
        let mut ns: Vec<u32> = points.iter().map(|p| p.n).collect();
        ns.sort_unstable();
        ns.dedup();
        let mut ps: Vec<u32> = points.iter().map(|p| p.packet_bytes).collect();
        ps.sort_unstable();
        ps.dedup();
        let mut ds: Vec<u64> = points.iter().map(|p| p.data_bytes).collect();
        ds.sort_unstable();
        ds.dedup();
        let mut throughput = vec![vec![vec![0.0; ds.len()]; ps.len()]; ns.len()];
        for pt in points {
            let ni = ns.binary_search(&pt.n).expect("grid point");
            let pi = ps.binary_search(&pt.packet_bytes).expect("grid point");
            let di = ds.binary_search(&pt.data_bytes).expect("grid point");
            throughput[ni][pi][di] = pt.steady_throughput;
        }
        let pressure = vec![1.0; ds.len()];
        GammaTable {
            vendor: spec.vendor,
            ns,
            ps,
            ds,
            throughput,
            pressure,
        }
    }

    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    pub fn ns(&self) -> &[u32] {
        &self.ns
    }

    pub fn ps(&self) -> &[u32] {
        &self.ps
    }

    pub fn ds(&self) -> &[u64] {
        &self.ds
    }

    fn nearest(values: &[u32], v: u32) -> usize {
        values
            .iter()
            .enumerate()
            .min_by_key(|(_, &x)| (x as i64 - v as i64).abs())
            .map(|(i, _)| i)
            .expect("non-empty grid")
    }

    /// Γ(n, p, d) in bytes per cycle: nearest grid point in n and p,
    /// log-linear interpolation in d (clamped at the grid edges).
    pub fn lookup(&self, n: u32, p: u32, d: u64) -> f64 {
        let ni = Self::nearest(&self.ns, n);
        let pi = Self::nearest(&self.ps, p);
        let row = &self.throughput[ni][pi];
        let d = d.max(1);
        if d <= self.ds[0] {
            return row[0];
        }
        if d >= *self.ds.last().expect("non-empty") {
            return *row.last().expect("non-empty");
        }
        let hi = self.ds.partition_point(|&x| x < d);
        let lo = hi - 1;
        let (d0, d1) = (self.ds[lo] as f64, self.ds[hi] as f64);
        let t = ((d as f64).ln() - d0.ln()) / (d1.ln() - d0.ln());
        row[lo] + t * (row[hi] - row[lo])
    }

    /// Cache-pressure factor for an in-flight channel working set of
    /// `bytes`: 1.0 while it fits the cache, dropping as it thrashes.
    pub fn pressure(&self, bytes: u64) -> f64 {
        let b = bytes.max(1);
        if b <= self.ds[0] {
            return self.pressure[0];
        }
        if b >= *self.ds.last().expect("non-empty") {
            return *self.pressure.last().expect("non-empty");
        }
        let hi = self.ds.partition_point(|&x| x < b);
        let lo = hi - 1;
        let (d0, d1) = (self.ds[lo] as f64, self.ds[hi] as f64);
        let t = ((b as f64).ln() - d0.ln()) / (d1.ln() - d0.ln());
        self.pressure[lo] + t * (self.pressure[hi] - self.pressure[lo])
    }

    /// Serialize to a small text format (one header line, one pressure
    /// line, one line per (n, p) with the throughput row) — calibration
    /// is deterministic but takes seconds, so CLIs cache it on disk.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gamma v1 {:?} ns={} ps={} ds={}",
            self.vendor,
            join(&self.ns),
            join(&self.ps),
            join(&self.ds)
        );
        let _ = writeln!(out, "pressure {}", joinf(&self.pressure));
        for (ni, &n) in self.ns.iter().enumerate() {
            for (pi, &p) in self.ps.iter().enumerate() {
                let _ = writeln!(out, "t {n} {p} {}", joinf(&self.throughput[ni][pi]));
            }
        }
        out
    }

    /// Parse the [`GammaTable::to_text`] format.
    pub fn from_text(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut hp = header.split_whitespace();
        if hp.next()? != "gamma" || hp.next()? != "v1" {
            return None;
        }
        let vendor = match hp.next()? {
            "Amd" => Vendor::Amd,
            "Nvidia" => Vendor::Nvidia,
            "Cpu" => Vendor::Cpu,
            _ => return None,
        };
        let mut ns = None;
        let mut ps = None;
        let mut ds = None;
        for kv in hp {
            let (k, v) = kv.split_once('=')?;
            match k {
                "ns" => ns = parse_list::<u32>(v),
                "ps" => ps = parse_list::<u32>(v),
                "ds" => ds = parse_list::<u64>(v),
                _ => return None,
            }
        }
        let (ns, ps, ds) = (ns?, ps?, ds?);
        let pressure_line = lines.next()?;
        let pressure = parse_list::<f64>(pressure_line.strip_prefix("pressure ")?)?;
        if pressure.len() != ds.len() {
            return None;
        }
        let mut throughput = vec![vec![vec![0.0; ds.len()]; ps.len()]; ns.len()];
        for line in lines {
            let mut it = line.split_whitespace();
            if it.next()? != "t" {
                return None;
            }
            let n: u32 = it.next()?.parse().ok()?;
            let p: u32 = it.next()?.parse().ok()?;
            let row = parse_list::<f64>(it.next()?)?;
            let ni = ns.iter().position(|&x| x == n)?;
            let pi = ps.iter().position(|&x| x == p)?;
            if row.len() != ds.len() {
                return None;
            }
            throughput[ni][pi] = row;
        }
        Some(GammaTable {
            vendor,
            ns,
            ps,
            ds,
            throughput,
            pressure,
        })
    }

    /// Load from `path`, or calibrate and save there. Corrupt or
    /// mismatched files are recalibrated and overwritten.
    pub fn load_or_calibrate(spec: &DeviceSpec, path: &std::path::Path) -> Self {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Some(t) = Self::from_text(&text) {
                if t.vendor == spec.vendor {
                    return t;
                }
            }
        }
        let t = Self::calibrate(spec);
        let _ = std::fs::write(path, t.to_text());
        t
    }

    /// The `(n_max, p_max)` maximizing Γ for data size `d` (Section 4.1).
    pub fn best_config(&self, d: u64) -> (u32, u32, f64) {
        let mut best = (self.ns[0], self.ps[0], f64::MIN);
        for &n in &self.ns {
            for &p in &self.ps {
                let g = self.lookup(n, p, d);
                if g > best.2 {
                    best = (n, p, g);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_sim::amd_a10;

    fn tiny_table() -> GammaTable {
        let spec = amd_a10();
        let pts = vec![
            CalibrationPoint {
                n: 1,
                packet_bytes: 16,
                data_bytes: 1 << 16,
                cycles: 1,
                throughput: 1.0,
                steady_throughput: 1.0,
            },
            CalibrationPoint {
                n: 1,
                packet_bytes: 16,
                data_bytes: 1 << 20,
                cycles: 1,
                throughput: 3.0,
                steady_throughput: 3.0,
            },
            CalibrationPoint {
                n: 4,
                packet_bytes: 16,
                data_bytes: 1 << 16,
                cycles: 1,
                throughput: 2.0,
                steady_throughput: 2.0,
            },
            CalibrationPoint {
                n: 4,
                packet_bytes: 16,
                data_bytes: 1 << 20,
                cycles: 1,
                throughput: 5.0,
                steady_throughput: 5.0,
            },
        ];
        GammaTable::from_points(&spec, &pts)
    }

    #[test]
    fn lookup_hits_grid_points_exactly() {
        let g = tiny_table();
        assert_eq!(g.lookup(1, 16, 1 << 16), 1.0);
        assert_eq!(g.lookup(4, 16, 1 << 20), 5.0);
    }

    #[test]
    fn lookup_interpolates_and_clamps() {
        let g = tiny_table();
        let mid = g.lookup(4, 16, 1 << 18);
        assert!(mid > 2.0 && mid < 5.0, "interpolated {mid}");
        assert_eq!(g.lookup(4, 16, 1), 2.0, "clamped below");
        assert_eq!(g.lookup(4, 16, 1 << 30), 5.0, "clamped above");
        // Nearest n: n=3 maps to n=4.
        assert_eq!(g.lookup(3, 16, 1 << 20), 5.0);
    }

    #[test]
    fn best_config_picks_max() {
        let g = tiny_table();
        let (n, p, t) = g.best_config(1 << 20);
        assert_eq!((n, p), (4, 16));
        assert_eq!(t, 5.0);
    }

    #[test]
    fn real_calibration_small_grid() {
        let spec = amd_a10();
        let g = GammaTable::calibrate_grid(&spec, vec![1, 4], vec![16], vec![1 << 20, 8 << 20]);
        assert!(g.lookup(4, 16, 1 << 20) > g.lookup(1, 16, 1 << 20));
        let (n, _, _) = g.best_config(1 << 20);
        assert_eq!(n, 4);
    }

    #[test]
    fn text_roundtrip_preserves_lookups() {
        let spec = amd_a10();
        let g = GammaTable::calibrate_grid(&spec, vec![1, 4], vec![16], vec![1 << 20, 8 << 20]);
        let text = g.to_text();
        let back = GammaTable::from_text(&text).expect("parses");
        assert_eq!(back.vendor(), g.vendor());
        for d in [1u64 << 18, 1 << 20, 3 << 20, 8 << 20, 1 << 24] {
            let a = g.lookup(4, 16, d);
            let b = back.lookup(4, 16, d);
            assert!((a - b).abs() < 1e-4, "{a} vs {b} at d={d}");
            assert!((g.pressure(d) - back.pressure(d)).abs() < 1e-4);
        }
    }

    #[test]
    fn corrupt_text_is_rejected() {
        assert!(GammaTable::from_text("").is_none());
        assert!(GammaTable::from_text("gamma v2 Amd ns=1 ps=16 ds=64").is_none());
        assert!(GammaTable::from_text(
            "gamma v1 Amd ns=1 ps=16 ds=64
pressure 1.0
t 9 9 zap"
        )
        .is_none());
    }

    #[test]
    fn load_or_calibrate_caches_to_disk() {
        let dir = std::env::temp_dir().join("gpl-gamma-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("amd.gamma");
        let _ = std::fs::remove_file(&path);
        let spec = amd_a10();
        // Note: uses the full default grid; keep to one call pair.
        let a = GammaTable::load_or_calibrate(&spec, &path);
        assert!(path.exists(), "first call must write the cache");
        let b = GammaTable::load_or_calibrate(&spec, &path);
        assert!((a.lookup(4, 16, 1 << 20) - b.lookup(4, 16, 1 << 20)).abs() < 1e-4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn default_grid_respects_vendor_packet_tunability() {
        let (_, ps_amd, _) = default_grid(&amd_a10());
        assert!(ps_amd.len() > 1);
        let (_, ps_nv, _) = default_grid(&gpl_sim::nvidia_k40());
        assert_eq!(ps_nv.len(), 1, "NVIDIA packet size is fixed (Appendix A.1)");
    }
}
