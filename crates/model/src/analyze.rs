//! Program-analysis inputs (Table 2): per-kernel resource usage,
//! instruction counts and data widths, assembled into a [`StageModel`]
//! the Eq. 2–9 evaluator consumes.
//!
//! The structural facts — fusion groups, kernel names, resources,
//! per-op instruction counts, channel widths, and the eager/lazy leaf
//! column split — come straight off the stage's lowered
//! [`SegmentIr`], the same object the executors launch from, so model
//! and executor cannot drift. This module only adds what lowering
//! cannot know: the statistics-dependent terms (λ-scaled gather costs,
//! hash-table geometry from cardinality estimates).

use crate::stats::PlanStats;
use gpl_core::ops;
use gpl_core::plan::{PipeOp, QueryPlan, Stage, Terminal};
use gpl_core::segment::SegmentIr;
use gpl_sim::{DeviceSpec, ResourceUsage};
use gpl_tpch::TpchDb;

/// Cost-relevant description of one GPL kernel.
#[derive(Debug, Clone)]
pub struct KernelModel {
    pub name: String,
    /// Program-analysis resource usage (`pm_Ki`, `lm_Ki`, `wi_Ki`).
    pub resources: ResourceUsage,
    /// Per input row: compute instructions (pre-wavefront division).
    pub per_row_compute: u64,
    /// Per input row: memory instructions.
    pub per_row_mem: u64,
    /// Input rows / tile rows (product of upstream λ).
    pub in_ratio: f64,
    /// Output rows / input rows (this kernel's λ).
    pub lambda: f64,
    /// Channel row width flowing in (0 for the leaf).
    pub in_width: u64,
    /// Channel row width flowing out (0 for the terminal).
    pub out_width: u64,
    /// Global bytes the leaf streams eagerly per driver row (0 otherwise).
    pub scan_bytes_per_row: u64,
    /// Bytes per *surviving* row the leaf gathers lazily (shipped-only
    /// columns, read post-filter at line granularity).
    pub lazy_bytes_per_row: u64,
    /// Hash-table / group-store bytes touched per input row.
    pub ht_access_bytes: u64,
    /// Footprint of the randomly-accessed structures (for the cache-hit
    /// surrogate).
    pub ht_footprint: u64,
    /// First-touch structure writes (hash builds): every bucket write is
    /// a cold miss regardless of footprint.
    pub cold_ht: bool,
}

/// Cost-relevant description of one stage (segment).
#[derive(Debug, Clone)]
pub struct StageModel {
    pub name: String,
    pub driver_rows: u64,
    /// Bytes per driver row across loaded columns (tiling input).
    pub row_bytes: u64,
    pub kernels: Vec<KernelModel>,
    /// The lowered segment these kernels describe, with the model's λ
    /// estimates attached — what the executors launch from.
    pub ir: SegmentIr,
}

fn ht_geometry(expected_rows: f64, payloads: usize) -> (u64, u64) {
    let entry = 8 * (1 + payloads as u64);
    let buckets = ((expected_rows.max(1.0) as usize) * 2).next_power_of_two() as u64;
    (entry, buckets * entry)
}

/// Build the stage models for a plan, using the λ estimates of
/// [`crate::stats::estimate`].
pub fn build_models(
    db: &TpchDb,
    plan: &QueryPlan,
    stats: &PlanStats,
    spec: &DeviceSpec,
) -> Vec<StageModel> {
    let wavefront = spec.wavefront_size;
    plan.stages
        .iter()
        .enumerate()
        .map(|(si, stage)| {
            build_stage_model(
                db,
                plan,
                stage,
                &stats.stage_lambdas[si],
                stats,
                spec,
                wavefront,
            )
        })
        .collect()
}

fn build_stage_model(
    db: &TpchDb,
    _plan: &QueryPlan,
    stage: &Stage,
    lambdas: &[f64],
    stats: &PlanStats,
    _spec: &DeviceSpec,
    wavefront: u32,
) -> StageModel {
    let mut ir = SegmentIr::lower(stage, db.table(&stage.driver), wavefront);
    ir.attach_lambdas(lambdas);

    // The λ-dependent leaf transfer terms, over the IR's column split.
    // A gather transfers whole lines for sparse survivors but converges
    // to the plain column stream when they are dense: the per-survivor
    // cost is min(line, width / λ).
    let leaf_lambda = lambdas[0].max(1e-6);
    let gather = |w: u64| (w as f64 / leaf_lambda).min(64.0);
    let eager_bytes: u64;
    let eager_cols: u64;
    let mut lazy_bytes = 0.0f64;
    let lazy_cols = ir.lazy.len() as u64;
    if ir.promoted_leaf {
        // The executor streams the promoted column to drive the scan:
        // charge it eagerly and remove its gather term. Summing every
        // lazy term first (promoted column included, in load order) and
        // then subtracting keeps the f64 arithmetic bit-identical to
        // the pre-IR derivation.
        let promoted = &ir.eager[0];
        lazy_bytes += gather(promoted.width);
        for c in &ir.lazy {
            lazy_bytes += gather(c.width);
        }
        lazy_bytes = (lazy_bytes - gather(promoted.width)).max(0.0);
        eager_bytes = promoted.width;
        eager_cols = 1;
    } else {
        eager_bytes = ir.eager.iter().map(|c| c.width).sum();
        eager_cols = ir.eager.len() as u64;
        for c in &ir.lazy {
            lazy_bytes += gather(c.width);
        }
    }

    let mut kernels = Vec::with_capacity(ir.nodes.len());
    let mut in_ratio = 1.0;
    for (g, node) in ir.nodes[..ir.edges.len()].iter().enumerate() {
        let mut per_row_compute = node.per_row_compute;
        let mut per_row_mem = node.per_row_mem;
        if g == 0 {
            // Eager columns are loaded for every row; lazy ones only for
            // the survivors (scale their issue cost by λ).
            per_row_compute += 2 * ops::INST_EXPANSION * eager_cols
                + (2.0 * ops::INST_EXPANSION as f64 * lazy_cols as f64 * lambdas[0]) as u64;
            per_row_mem += eager_cols + (lazy_cols as f64 * lambdas[0]) as u64;
        }
        // Hash-table geometry is the one per-op term lowering cannot
        // provide (it needs cardinality estimates).
        let mut ht_access = 0u64;
        let mut ht_foot = 0u64;
        for &i in &node.ops {
            if let PipeOp::Probe { ht, payloads, .. } = &stage.ops[i] {
                let (entry, foot) = ht_geometry(stats.ht_rows[*ht], payloads.len());
                ht_access += entry;
                ht_foot += foot;
            }
        }
        kernels.push(KernelModel {
            name: node.name.to_string(),
            resources: node.resources,
            per_row_compute,
            per_row_mem,
            in_ratio,
            lambda: lambdas[g],
            in_width: if g == 0 { 0 } else { ir.edges[g - 1].row_bytes },
            out_width: ir.edges[g].row_bytes,
            scan_bytes_per_row: if g == 0 { eager_bytes } else { 0 },
            lazy_bytes_per_row: if g == 0 { lazy_bytes as u64 } else { 0 },
            ht_access_bytes: ht_access,
            ht_footprint: ht_foot,
            cold_ht: false,
        });
        in_ratio *= lambdas[g];
    }

    // The terminal kernel.
    let (ht_access, ht_foot) = match &stage.terminal {
        Terminal::HashBuild { payloads, .. } => {
            let expected = in_ratio * ir.driver_rows as f64;
            ht_geometry(expected.max(1.0), payloads.len())
        }
        Terminal::Aggregate { groups, aggs } => {
            let expected = if groups.is_empty() { 1.0 } else { 4096.0 };
            let entry = 8 * (groups.len().max(1) + aggs.len()) as u64;
            let buckets = ((expected as usize) * 2).next_power_of_two() as u64;
            (2 * entry, buckets * entry)
        }
    };
    let term = ir.nodes.last().expect("terminal node");
    kernels.push(KernelModel {
        name: term.name.to_string(),
        resources: term.resources,
        per_row_compute: term.per_row_compute,
        per_row_mem: term.per_row_mem,
        in_ratio,
        lambda: 0.0,
        in_width: ir.edges.last().expect("edge").row_bytes,
        out_width: 0,
        scan_bytes_per_row: 0,
        lazy_bytes_per_row: 0,
        ht_access_bytes: ht_access,
        ht_footprint: ht_foot,
        cold_ht: matches!(stage.terminal, Terminal::HashBuild { .. }),
    });

    StageModel {
        name: ir.stage.clone(),
        driver_rows: ir.driver_rows,
        row_bytes: ir.row_bytes,
        kernels,
        ir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use gpl_core::plan_for;
    use gpl_sim::amd_a10;
    use gpl_tpch::QueryId;

    #[test]
    fn q14_models_have_expected_shape() {
        let db = TpchDb::at_scale(0.01);
        let plan = plan_for(&db, QueryId::Q14);
        let st = stats::estimate(&db, &plan);
        let ms = build_models(&db, &plan, &st, &amd_a10());
        assert_eq!(ms.len(), 2);
        let probe = &ms[1];
        assert_eq!(probe.kernels.len(), 3, "leaf, probe, reduce");
        let leaf = &probe.kernels[0];
        assert_eq!(leaf.in_width, 0);
        // Only the ship-date column streams eagerly; the other three
        // shipped columns gather lazily at line granularity.
        assert_eq!(leaf.scan_bytes_per_row, 4);
        assert_eq!(leaf.lazy_bytes_per_row, 3 * 64);
        assert!(leaf.lambda < 0.05);
        let p = &probe.kernels[1];
        assert!(p.in_ratio < 0.05, "probe sees only filtered rows");
        assert!(p.ht_access_bytes > 0 && p.ht_footprint > 0);
        let term = probe.kernels.last().unwrap();
        assert_eq!(term.out_width, 0);
        assert!(term.in_width >= 8);
    }

    #[test]
    fn kernel_count_matches_executor_wg_requirements() {
        let db = TpchDb::at_scale(0.002);
        for q in QueryId::evaluation_set() {
            let plan = plan_for(&db, q);
            let st = stats::estimate(&db, &plan);
            let ms = build_models(&db, &plan, &st, &amd_a10());
            for (stage, m) in plan.stages.iter().zip(&ms) {
                assert_eq!(m.kernels.len(), stage.gpl_kernel_names().len());
            }
        }
    }
}
