//! Program-analysis inputs (Table 2): per-kernel resource usage,
//! instruction counts and data widths, assembled into a [`StageModel`]
//! the Eq. 2–9 evaluator consumes.

use crate::stats::PlanStats;
use gpl_core::ops;
use gpl_core::plan::{PipeOp, QueryPlan, Stage, Terminal};
use gpl_sim::{DeviceSpec, ResourceUsage};
use gpl_tpch::TpchDb;

/// Cost-relevant description of one GPL kernel.
#[derive(Debug, Clone)]
pub struct KernelModel {
    pub name: String,
    /// Program-analysis resource usage (`pm_Ki`, `lm_Ki`, `wi_Ki`).
    pub resources: ResourceUsage,
    /// Per input row: compute instructions (pre-wavefront division).
    pub per_row_compute: u64,
    /// Per input row: memory instructions.
    pub per_row_mem: u64,
    /// Input rows / tile rows (product of upstream λ).
    pub in_ratio: f64,
    /// Output rows / input rows (this kernel's λ).
    pub lambda: f64,
    /// Channel row width flowing in (0 for the leaf).
    pub in_width: u64,
    /// Channel row width flowing out (0 for the terminal).
    pub out_width: u64,
    /// Global bytes the leaf streams eagerly per driver row (0 otherwise).
    pub scan_bytes_per_row: u64,
    /// Bytes per *surviving* row the leaf gathers lazily (shipped-only
    /// columns, read post-filter at line granularity).
    pub lazy_bytes_per_row: u64,
    /// Hash-table / group-store bytes touched per input row.
    pub ht_access_bytes: u64,
    /// Footprint of the randomly-accessed structures (for the cache-hit
    /// surrogate).
    pub ht_footprint: u64,
    /// First-touch structure writes (hash builds): every bucket write is
    /// a cold miss regardless of footprint.
    pub cold_ht: bool,
}

/// Cost-relevant description of one stage (segment).
#[derive(Debug, Clone)]
pub struct StageModel {
    pub name: String,
    pub driver_rows: u64,
    /// Bytes per driver row across loaded columns (tiling input).
    pub row_bytes: u64,
    pub kernels: Vec<KernelModel>,
}

fn ht_geometry(expected_rows: f64, payloads: usize) -> (u64, u64) {
    let entry = 8 * (1 + payloads as u64);
    let buckets = ((expected_rows.max(1.0) as usize) * 2).next_power_of_two() as u64;
    (entry, buckets * entry)
}

fn resources_for(flavour: &str, wavefront: u32) -> ResourceUsage {
    // Must mirror the executors' declarations (kbe.rs / gpl.rs).
    match flavour {
        "map" => ResourceUsage::new(wavefront, 64, 0),
        "probe" => ResourceUsage::new(wavefront, 96, 0),
        "build" => ResourceUsage::new(wavefront, 96, 2048),
        "aggregate" => ResourceUsage::new(wavefront, 64, 8192),
        other => panic!("unknown flavour {other}"),
    }
}

/// Build the stage models for a plan, using the λ estimates of
/// [`crate::stats::estimate`].
pub fn build_models(
    db: &TpchDb,
    plan: &QueryPlan,
    stats: &PlanStats,
    spec: &DeviceSpec,
) -> Vec<StageModel> {
    let wavefront = spec.wavefront_size;
    plan.stages
        .iter()
        .enumerate()
        .map(|(si, stage)| {
            build_stage_model(
                db,
                plan,
                stage,
                &stats.stage_lambdas[si],
                stats,
                spec,
                wavefront,
            )
        })
        .collect()
}

fn build_stage_model(
    db: &TpchDb,
    _plan: &QueryPlan,
    stage: &Stage,
    lambdas: &[f64],
    stats: &PlanStats,
    _spec: &DeviceSpec,
    wavefront: u32,
) -> StageModel {
    let t = db.table(&stage.driver);
    let live = ops::live_slots(stage);
    let groups = stage.gpl_fusion();
    let names = stage.gpl_kernel_names();
    let row_bytes: u64 = stage
        .loads
        .iter()
        .map(|c| t.col(c).data_type().width())
        .sum::<u64>()
        .max(1);

    // Eager vs lazy leaf columns (mirrors gpl.rs): columns read by the
    // fused leading ops stream; shipped-only columns gather post-filter.
    let mut eager_slots: Vec<usize> = Vec::new();
    for &i in &groups[0] {
        match &stage.ops[i] {
            PipeOp::Filter(p) => p.slots(&mut eager_slots),
            PipeOp::Probe { key, .. } => eager_slots.push(*key),
            PipeOp::Compute { expr, .. } => expr.slots(&mut eager_slots),
        }
    }
    let first_edge_live = if groups.len() > 1 {
        &live[groups[1][0]]
    } else {
        &live[stage.ops.len()]
    };
    let leaf_lambda = lambdas[0].max(1e-6);
    let mut eager_bytes = 0u64;
    let mut eager_cols = 0u64;
    let mut lazy_bytes = 0.0f64;
    let mut lazy_cols = 0u64;
    for (slot, name) in stage.loads.iter().enumerate() {
        let w = t.col(name).data_type().width();
        if eager_slots.contains(&slot) {
            eager_bytes += w;
            eager_cols += 1;
        } else if first_edge_live.contains(&slot) {
            // A gather transfers whole lines for sparse survivors but
            // converges to the plain column stream when they are dense:
            // the per-survivor cost is min(line, width / λ).
            lazy_bytes += (w as f64 / leaf_lambda).min(64.0);
            lazy_cols += 1;
        }
    }
    if eager_cols == 0 && lazy_cols > 0 {
        let w = stage
            .loads
            .first()
            .map(|c| t.col(c).data_type().width())
            .unwrap_or(4);
        eager_bytes = w;
        eager_cols = 1;
        lazy_bytes = (lazy_bytes - (w as f64 / leaf_lambda).min(64.0)).max(0.0);
        lazy_cols -= 1;
    }

    let edge_width = |g: usize| -> u64 {
        // Width of the channel after kernel group g (matches gpl.rs).
        let lv = if g + 1 < groups.len() {
            &live[groups[g + 1][0]]
        } else {
            &live[stage.ops.len()]
        };
        (lv.len() as u64 * 8).max(8)
    };

    let mut kernels = Vec::with_capacity(groups.len() + 1);
    let mut in_ratio = 1.0;
    for (g, ops_idx) in groups.iter().enumerate() {
        let mut per_row_compute = 0u64;
        let mut per_row_mem = 0u64;
        let mut ht_access = 0u64;
        let mut ht_foot = 0u64;
        if g == 0 {
            // Eager columns are loaded for every row; lazy ones only for
            // the survivors (scale their issue cost by λ).
            per_row_compute += 2 * ops::INST_EXPANSION * eager_cols
                + (2.0 * ops::INST_EXPANSION as f64 * lazy_cols as f64 * lambdas[0]) as u64;
            per_row_mem += eager_cols + (lazy_cols as f64 * lambdas[0]) as u64;
        }
        for &i in ops_idx {
            let op = &stage.ops[i];
            per_row_compute += ops::op_compute_insts(op);
            per_row_mem += ops::op_mem_insts(op);
            if let PipeOp::Probe { ht, payloads, .. } = op {
                let (entry, foot) = ht_geometry(stats.ht_rows[*ht], payloads.len());
                ht_access += entry;
                ht_foot += foot;
            }
        }
        kernels.push(KernelModel {
            name: names[g].clone(),
            resources: resources_for(if g == 0 { "map" } else { "probe" }, wavefront),
            per_row_compute,
            per_row_mem,
            in_ratio,
            lambda: lambdas[g],
            in_width: if g == 0 { 0 } else { edge_width(g - 1) },
            out_width: edge_width(g),
            scan_bytes_per_row: if g == 0 { eager_bytes } else { 0 },
            lazy_bytes_per_row: if g == 0 { lazy_bytes as u64 } else { 0 },
            ht_access_bytes: ht_access,
            ht_footprint: ht_foot,
            cold_ht: false,
        });
        in_ratio *= lambdas[g];
    }

    // The terminal kernel.
    let (flavour, ht_access, ht_foot) = match &stage.terminal {
        Terminal::HashBuild { payloads, .. } => {
            let expected = in_ratio * t.rows() as f64;
            let (entry, foot) = ht_geometry(expected.max(1.0), payloads.len());
            ("build", entry, foot)
        }
        Terminal::Aggregate { groups, aggs } => {
            let expected = if groups.is_empty() { 1.0 } else { 4096.0 };
            let entry = 8 * (groups.len().max(1) + aggs.len()) as u64;
            let buckets = ((expected as usize) * 2).next_power_of_two() as u64;
            ("aggregate", 2 * entry, buckets * entry)
        }
    };
    kernels.push(KernelModel {
        name: names.last().expect("terminal").clone(),
        resources: resources_for(flavour, wavefront),
        per_row_compute: ops::terminal_compute_insts(&stage.terminal),
        per_row_mem: ops::terminal_mem_insts(&stage.terminal),
        in_ratio,
        lambda: 0.0,
        in_width: edge_width(groups.len() - 1),
        out_width: 0,
        scan_bytes_per_row: 0,
        lazy_bytes_per_row: 0,
        ht_access_bytes: ht_access,
        ht_footprint: ht_foot,
        cold_ht: matches!(stage.terminal, Terminal::HashBuild { .. }),
    });

    StageModel {
        name: stage.name.clone(),
        driver_rows: t.rows() as u64,
        row_bytes,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use gpl_core::plan_for;
    use gpl_sim::amd_a10;
    use gpl_tpch::QueryId;

    #[test]
    fn q14_models_have_expected_shape() {
        let db = TpchDb::at_scale(0.01);
        let plan = plan_for(&db, QueryId::Q14);
        let st = stats::estimate(&db, &plan);
        let ms = build_models(&db, &plan, &st, &amd_a10());
        assert_eq!(ms.len(), 2);
        let probe = &ms[1];
        assert_eq!(probe.kernels.len(), 3, "leaf, probe, reduce");
        let leaf = &probe.kernels[0];
        assert_eq!(leaf.in_width, 0);
        // Only the ship-date column streams eagerly; the other three
        // shipped columns gather lazily at line granularity.
        assert_eq!(leaf.scan_bytes_per_row, 4);
        assert_eq!(leaf.lazy_bytes_per_row, 3 * 64);
        assert!(leaf.lambda < 0.05);
        let p = &probe.kernels[1];
        assert!(p.in_ratio < 0.05, "probe sees only filtered rows");
        assert!(p.ht_access_bytes > 0 && p.ht_footprint > 0);
        let term = probe.kernels.last().unwrap();
        assert_eq!(term.out_width, 0);
        assert!(term.in_width >= 8);
    }

    #[test]
    fn kernel_count_matches_executor_wg_requirements() {
        let db = TpchDb::at_scale(0.002);
        for q in QueryId::evaluation_set() {
            let plan = plan_for(&db, q);
            let st = stats::estimate(&db, &plan);
            let ms = build_models(&db, &plan, &st, &amd_a10());
            for (stage, m) in plan.stages.iter().zip(&ms) {
                assert_eq!(m.kernels.len(), stage.gpl_kernel_names().len());
            }
        }
    }
}
