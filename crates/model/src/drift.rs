//! Joining the model's predictions against a run's observed kernel
//! profiles into a [`DriftReport`] — the feedback seam an adaptive
//! re-optimizer reads.
//!
//! Both sides key by the same lowered-IR kernel names (the model is
//! built from [`StageModel::ir`], the executors launch from it), so the
//! join is positional and exact: kernel `j` of stage `i` in the
//! estimate is kernel `j` of `run.per_stage[i]` in the profile. Two
//! predictions are joined per kernel:
//!
//! * **λ** — the model's selectivity estimate ([`KernelModel::lambda`])
//!   against observed `rows_out / rows_in` from the simulator's
//!   row-counting plane.
//! * **cycles** — the Eq. 8 per-kernel estimate (`t(K)` × tiles)
//!   against observed busy cycles over the kernel's effective CUs
//!   (reconstructed from the residency the estimate carries, so both
//!   sides are wall-style).

use crate::analyze::StageModel;
use crate::cost::estimate_stage;
use crate::gamma::GammaTable;
use gpl_core::{QueryConfig, QueryRun};
use gpl_obs::{DriftReport, KernelDrift};
use gpl_sim::{DeviceSpec, LaunchProfile};

/// Join `run`'s observed per-stage kernel profiles against the model's
/// predictions. Stages beyond `run.per_stage` (or kernels the run never
/// launched) are reported with observed zeros rather than dropped, so
/// the report always covers the full plan.
pub fn drift_for_run(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    models: &[StageModel],
    cfg: &QueryConfig,
    run: &QueryRun,
    query: &str,
    mode: &str,
) -> DriftReport {
    let mut report = DriftReport::new(query, mode);
    join_observed(&mut report, spec, gamma, models, cfg, &run.per_stage);
    report
}

/// The multi-device sibling of [`drift_for_run`]: join one pool
/// device's merged per-stage profiles (`gpl_core::shard::DeviceRun::
/// per_stage`) against *that device's* model predictions, keyed
/// `(device, kernel)` via [`DriftReport::for_device`]. Stages the
/// device never participated in carry `LaunchProfile::default()`
/// entries, so they join as observed zeros — the report still covers
/// the full plan per device.
#[allow(clippy::too_many_arguments)]
pub fn drift_for_device_run(
    spec: &DeviceSpec,
    gamma: &GammaTable,
    models: &[StageModel],
    cfg: &QueryConfig,
    per_stage: &[LaunchProfile],
    query: &str,
    device: &str,
    mode: &str,
) -> DriftReport {
    let mut report = DriftReport::for_device(query, device, mode);
    join_observed(&mut report, spec, gamma, models, cfg, per_stage);
    report
}

fn join_observed(
    report: &mut DriftReport,
    spec: &DeviceSpec,
    gamma: &GammaTable,
    models: &[StageModel],
    cfg: &QueryConfig,
    per_stage: &[LaunchProfile],
) {
    let num_cus = u64::from(spec.num_cus);
    for (i, (sm, scfg)) in models.iter().zip(&cfg.stages).enumerate() {
        let est = estimate_stage(spec, gamma, sm, scfg);
        let names = sm.ir.kernel_names();
        let observed = per_stage.get(i);
        for (j, ((kc, km), name)) in est
            .per_kernel
            .iter()
            .zip(&sm.kernels)
            .zip(&names)
            .enumerate()
        {
            let predicted = kc.t() * est.num_tiles as f64;
            // The model's t() is wall-style: total work over the CUs the
            // kernel effectively occupies. The simulator sums busy
            // cycles over every work-unit, so divide by the same
            // effective-CU count to compare like with like.
            let slots = (u64::from(kc.a_wg) * num_cus).min(u64::from(scfg.wg_counts[j]));
            let used_cus = slots.min(num_cus).max(1) as f64;
            let k = observed.and_then(|p| p.kernels.get(j));
            report.kernels.push(KernelDrift {
                stage: sm.name.clone(),
                kernel: name.to_string(),
                predicted_lambda: km.lambda,
                observed_lambda: k.map(|k| k.observed_lambda()).unwrap_or(0.0),
                rows_in: k.map(|k| k.rows_in).unwrap_or(0),
                rows_out: k.map(|k| k.rows_out).unwrap_or(0),
                predicted_cycles: predicted,
                observed_cycles: k
                    .map(|k| (k.compute_cycles + k.mem_cycles + k.dc_cycles) as f64 / used_cus)
                    .unwrap_or(0.0),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_models, stats};
    use gpl_core::{plan_for, run_query, ExecContext, ExecMode};
    use gpl_sim::amd_a10;
    use gpl_tpch::{QueryId, TpchDb};

    #[test]
    fn q14_drift_joins_every_kernel_with_observed_rows() {
        let spec = amd_a10();
        let gamma = GammaTable::calibrate_grid(
            &spec,
            vec![1, 4, 16],
            vec![16, 64],
            vec![256 << 10, 2 << 20, 16 << 20],
        );
        let mut ctx = ExecContext::new(spec, TpchDb::at_scale(0.002));
        let plan = plan_for(&ctx.db, QueryId::Q14);
        let st = stats::estimate(&ctx.db, &plan);
        let spec = ctx.spec();
        let models = build_models(&ctx.db, &plan, &st, &spec);
        let cfg = QueryConfig::default_for(&spec, &plan);
        let run = run_query(&mut ctx, &plan, ExecMode::Gpl, &cfg);
        let report = drift_for_run(&spec, &gamma, &models, &cfg, &run, "q14", "gpl");

        let total: usize = models.iter().map(|m| m.kernels.len()).sum();
        assert_eq!(report.kernels.len(), total);
        // The probe stage's leaf consumed the whole driving relation.
        let leaf = report
            .kernels
            .iter()
            .find(|k| k.stage.starts_with("probe"))
            .expect("probe stage present");
        assert!(leaf.rows_in > 0, "observed rows flow through the join");
        // Terminals predict λ = 0 and observe rows_out = 0 → zero error.
        let term = report.kernels.last().unwrap();
        assert_eq!(term.rows_out, 0);
        assert_eq!(term.lambda_err(), 0.0);
        // Rendering is deterministic for identical runs.
        let report2 = drift_for_run(&spec, &gamma, &models, &cfg, &run, "q14", "gpl");
        assert_eq!(report.render(), report2.render());
    }
}
