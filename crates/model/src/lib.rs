//! # gpl-model — the analytical model of Section 4
//!
//! Determines the optimal pipelined-execution configuration (tile size Δ,
//! channel count `n`, packet size `p`, per-kernel work-group counts
//! `wg_Ki`) from query and hardware information:
//!
//! * [`gamma`] — the calibrated Γ(n, p, d) channel-throughput table
//!   (Eq. 1 / Eq. 11), built by running the Section 2.1 producer→consumer
//!   microbenchmark on the simulated device.
//! * [`stats`] — query-optimizer inputs: the λ data-reduction ratios,
//!   estimated by sampled pipeline evaluation.
//! * [`analyze`] — program-analysis inputs: per-kernel resources,
//!   instruction counts and stream widths.
//! * [`cost`] — Eq. 2–9: residency, computation, memory/channel and delay
//!   costs, combined into the segment time `T_Sk`.
//! * [`search`] — the pruned parameter search (n in \[1, 16\], wg multiples
//!   of #CU, the Figure 12 tile grid) with its <5 ms budget.
//! * [`overlap`] — the cross-segment pipelining predicate: decides per
//!   eligible build→probe pair whether overlapping the build terminal
//!   with the probe leaf pays off, and at how many slices K.
//! * [`error`] — Eq. 10 relative-error validation against the simulator.
//! * [`drift`] — the per-kernel predicted-vs-observed join (λ and Eq. 8
//!   cycles against the simulator's row counts and busy cycles),
//!   producing `gpl_obs` drift reports.

pub mod analyze;
pub mod cost;
pub mod drift;
pub mod error;
pub mod gamma;
pub mod joinopt;
pub mod overlap;
pub mod place;
pub mod search;
pub mod stats;

pub use analyze::{build_models, KernelModel, StageModel};
pub use cost::{allocate_residency, estimate_query, estimate_stage, StageEstimate};
pub use drift::{drift_for_device_run, drift_for_run};
pub use error::{evaluate, relative_error, ModelEval};
pub use gamma::GammaTable;
pub use joinopt::optimize_join_order;
pub use overlap::{attach_overlap, OverlapDecision};
pub use place::{hedge_plan, place_query, PlacedStage, Placement};
pub use search::{
    optimize, optimize_models, optimize_models_cached, optimize_models_traced, SearchCache,
    SearchOutcome,
};
pub use stats::{estimate as estimate_stats, PlanStats};
