//! Heterogeneous CPU/GPU placement: extend the Section 4 search across
//! a device pool.
//!
//! For each pool device the pass runs the full Eq. 8 knob search
//! (`optimize_models`) against that device's spec and calibrated Γ
//! table, then assigns every stage (a fused sub-DAG of the shared
//! `SegmentIr`) to the device whose tuned per-stage estimate is lowest
//! — the operator-to-device assignment strategy of coupled CPU-GPU
//! co-processing (He et al., arXiv:1307.1955). The asymmetries the
//! choice keys on all flow through the IR: `ResourceUsage` bounds
//! residency per device, edge widths and eager/lazy byte volumes scale
//! the memory terms, and the per-device `launch_cycles` overhead is
//! what hands tiny build stages to the CPU.
//!
//! The output is a `gpl_core::shard::ShardAssignment` (anchor device
//! per stage + the per-device tuned configs), ready for
//! `try_run_query_sharded`, plus the per-device estimate matrix so
//! experiments can compare heterogeneous against homogeneous
//! placements in *modeled* cycles before observing simulated ones.

use crate::analyze::build_models;
use crate::cost::estimate_stage;
use crate::gamma::GammaTable;
use crate::search::optimize_models;
use crate::stats::estimate as estimate_stats;
use gpl_core::plan::QueryPlan;
use gpl_core::shard::{DeviceKind, DevicePool, HedgePlan, ShardAssignment};
use gpl_tpch::TpchDb;

/// One stage's placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedStage {
    /// Chosen pool-device index (argmin of `estimates`, ties to the
    /// lowest index).
    pub device: usize,
    /// Eq. 9 total per pool device under that device's tuned config;
    /// `f64::INFINITY` where the device class was not allowed.
    pub estimates: Vec<f64>,
}

/// The placement pass's full output.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Anchor device per stage + per-device tuned configs, consumable
    /// by `gpl_core::shard::try_run_query_sharded`.
    pub assignment: ShardAssignment,
    pub per_stage: Vec<PlacedStage>,
    /// Sum of the chosen per-stage estimates — the modeled cycles of
    /// this (possibly heterogeneous) placement.
    pub modeled_total: f64,
    /// Modeled cycles of running *every* stage on each single device
    /// (the homogeneous baselines), `f64::INFINITY` where disallowed.
    pub device_totals: Vec<f64>,
}

/// Run the placement pass over `pool`. `gammas` holds one calibrated
/// table per pool device, in pool order. `restrict` limits candidate
/// devices to one class (`Some(DeviceKind::Gpu)` = the best homogeneous
/// all-GPU placement the acceptance comparison is made against).
///
/// Deterministic: the per-device searches and the argmin are pure
/// functions of (db, plan, specs, gammas) — the drift guard in
/// `tests/cross_engine.rs` pins cached placements to fresh ones.
pub fn place_query(
    pool: &DevicePool,
    gammas: &[GammaTable],
    db: &TpchDb,
    plan: &QueryPlan,
    restrict: Option<DeviceKind>,
) -> Placement {
    assert_eq!(gammas.len(), pool.len(), "one gamma table per device");
    let stats = estimate_stats(db, plan);
    let allowed: Vec<bool> = pool
        .devices()
        .iter()
        .map(|d| restrict.is_none_or(|k| d.kind == k))
        .collect();
    assert!(
        allowed.iter().any(|&a| a),
        "restriction excludes the whole pool"
    );

    let mut configs = Vec::with_capacity(pool.len());
    // estimate_matrix[d][s]: tuned Eq. 9 total of stage s on device d.
    let mut matrix = Vec::with_capacity(pool.len());
    for (d, dev) in pool.devices().iter().enumerate() {
        let models = build_models(db, plan, &stats, &dev.spec);
        let outcome = optimize_models(&dev.spec, &gammas[d], plan, &models);
        let per_stage: Vec<f64> = models
            .iter()
            .zip(&outcome.config.stages)
            .map(|(sm, cfg)| estimate_stage(&dev.spec, &gammas[d], sm, cfg).total)
            .collect();
        matrix.push(per_stage);
        configs.push(outcome.config);
    }

    let mut stage_device = Vec::with_capacity(plan.stages.len());
    let mut per_stage = Vec::with_capacity(plan.stages.len());
    let mut modeled_total = 0.0;
    for s in 0..plan.stages.len() {
        let estimates: Vec<f64> = matrix
            .iter()
            .zip(&allowed)
            .map(|(row, &ok)| if ok { row[s] } else { f64::INFINITY })
            .collect();
        let device = estimates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(d, _)| d)
            .expect("non-empty pool");
        modeled_total += estimates[device];
        stage_device.push(device);
        per_stage.push(PlacedStage { device, estimates });
    }
    let device_totals: Vec<f64> = (0..pool.len())
        .map(|d| {
            if allowed[d] {
                matrix[d].iter().sum()
            } else {
                f64::INFINITY
            }
        })
        .collect();

    Placement {
        assignment: ShardAssignment {
            stage_device,
            configs,
        },
        per_stage,
        modeled_total,
        device_totals,
    }
}

/// Lift a placement's per-stage estimate matrix into the shard runner's
/// straggler-hedging plan (DESIGN.md §11): `modeled[stage][device]` is
/// exactly the Eq. 8/9 cycle estimate `place_query` scored that device
/// with (`INFINITY` where the device was disallowed), and `threshold`
/// is the lateness multiple past which a shard gets a speculative
/// backup — [`HedgePlan::DEFAULT_THRESHOLD`] unless the caller tunes
/// it.
pub fn hedge_plan(placement: &Placement, threshold: f64) -> HedgePlan {
    HedgePlan::new(
        placement
            .per_stage
            .iter()
            .map(|ps| ps.estimates.clone())
            .collect(),
        threshold,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_core::plan::plan_for;
    use gpl_tpch::QueryId;

    fn small_gammas(pool: &DevicePool) -> Vec<GammaTable> {
        pool.devices()
            .iter()
            .map(|d| GammaTable::calibrate(&d.spec))
            .collect()
    }

    #[test]
    fn placement_is_deterministic_and_no_worse_than_homogeneous() {
        let db = TpchDb::at_scale(0.002);
        let pool = DevicePool::default_pool();
        let gammas = small_gammas(&pool);
        let plan = plan_for(&db, QueryId::Q9);
        let p1 = place_query(&pool, &gammas, &db, &plan, None);
        let p2 = place_query(&pool, &gammas, &db, &plan, None);
        assert_eq!(p1, p2, "placement is a pure function");
        // Free placement is never modeled worse than any homogeneous one.
        for &t in &p1.device_totals {
            assert!(p1.modeled_total <= t + 1e-9);
        }
        assert_eq!(p1.assignment.stage_device.len(), plan.stages.len());
        assert_eq!(p1.assignment.configs.len(), pool.len());
    }

    #[test]
    fn gpu_restriction_excludes_the_cpu() {
        let db = TpchDb::at_scale(0.002);
        let pool = DevicePool::default_pool();
        let gammas = small_gammas(&pool);
        let plan = plan_for(&db, QueryId::Q14);
        let p = place_query(&pool, &gammas, &db, &plan, Some(DeviceKind::Gpu));
        for (d, dev) in pool.devices().iter().enumerate() {
            if dev.kind == DeviceKind::Cpu {
                assert!(p.assignment.stage_device.iter().all(|&a| a != d));
                assert!(p.device_totals[d].is_infinite());
            }
        }
    }
}
