//! # gpl-ocelot — the Ocelot comparison baseline (Section 5.5)
//!
//! A kernel-at-a-time engine with the three Ocelot properties the paper
//! identifies as relevant to the GPL comparison: bitmap selection
//! intermediates, a hash-table cache, and 4-byte-only columns. Results
//! are validated bit-for-bit against the CPU reference.

pub mod engine;

pub use engine::{run_query, OcelotContext};
