//! The Ocelot-like baseline engine (Section 5.5).
//!
//! Ocelot \[18\] is a hardware-oblivious OpenCL extension of MonetDB and,
//! like all pre-GPL GPU query processors, executes kernel-at-a-time. The
//! paper's Section 5.5 names the properties that matter for the
//! comparison, and this engine implements exactly those:
//!
//! * **Bitmap intermediates** — a selection's result is passed to the
//!   next operator as a bitmap over the *full* input instead of a
//!   compacted array: fewer memory transactions per selection (no
//!   prefix-sum / scatter pass), but every downstream kernel keeps
//!   scanning full-width columns, which is what lets GPL pull ahead on
//!   the highly selective Q8/Q9.
//! * **Hash-table caching** — Ocelot's memory manager keeps previously
//!   generated hash tables; repeated executions of a query skip the
//!   build stages entirely.
//! * **4-byte columns** — Ocelot does not support data types wider than
//!   four bytes (Appendix B), so every array it materializes moves 4
//!   bytes per value (the workload's values fit; only the traffic
//!   differs).

use gpl_core::exec::ExecContext;
use gpl_core::ht::{GroupStore, SimHashTable};
use gpl_core::ops::{self, apply_compute, apply_filter, apply_probe, sort_rows, Chunk};
use gpl_core::plan::{PipeOp, QueryPlan, Stage, Terminal};
use gpl_core::replay::{alloc_array, kernel_resources, launch, ArrayRef, ReplayKernel};
use gpl_core::QueryRun;
use gpl_sim::mem::{MemRange, RegionClass};
use gpl_sim::LaunchProfile;
use gpl_tpch::QueryOutput;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Every Ocelot array element is 4 bytes (Appendix B).
const OCELOT_WIDTH: u64 = 4;

/// Cross-query state: the hash-table cache.
#[derive(Default)]
pub struct OcelotContext {
    ht_cache: HashMap<String, Rc<RefCell<SimHashTable>>>,
    pub cache_hits: usize,
    pub cache_misses: usize,
}

impl OcelotContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop cached hash tables (e.g. between databases).
    pub fn clear(&mut self) {
        self.ht_cache.clear();
    }
}

/// Bitmap execution state: the functional chunk is compacted, but the
/// simulated arrays stay full width over all `logical_rows` driver rows.
struct BitmapState {
    chunk: Chunk,
    addr: Vec<Option<ArrayRef>>,
    bitmap: Option<ArrayRef>,
    logical_rows: usize,
}

/// Pad per-surviving-row traffic out to one entry per logical row so the
/// replay kernel can slice it (dead rows contribute zero-byte accesses).
fn pad_extra(extra: Vec<MemRange>, logical_rows: usize) -> Vec<MemRange> {
    let mut out = Vec::with_capacity(logical_rows);
    out.extend(extra);
    let filler = MemRange::read(4096, 0);
    out.resize(logical_rows.max(out.len()), filler);
    out
}

fn build_signature(stage: &Stage, rows: usize) -> String {
    format!(
        "{}#{rows}:{:?}:{:?}:{:?}",
        stage.driver, stage.loads, stage.ops, stage.terminal
    )
}

fn run_stage(
    ctx: &mut ExecContext,
    stage: &Stage,
    hts: &[Option<Rc<RefCell<SimHashTable>>>],
    build: Option<&Rc<RefCell<SimHashTable>>>,
    agg: Option<&Rc<RefCell<GroupStore>>>,
) -> LaunchProfile {
    let wavefront = ctx.sim.spec().wavefront_size;
    let mut merged = LaunchProfile::default();
    let db = ctx.db.clone();
    let t = db.table(&stage.driver);
    let layout = ctx.layout(&stage.driver).clone();
    let rows = t.rows();

    let mut st = BitmapState {
        chunk: Chunk::new(stage.num_slots()),
        addr: vec![None; stage.num_slots()],
        bitmap: None,
        logical_rows: rows,
    };
    for (s, name) in stage.loads.iter().enumerate() {
        let col = t.col(name);
        st.chunk
            .fill(s, (0..rows).map(|r| col.get_i64(r)).collect());
        let ci = t.col_index(name).expect("load column exists");
        let scan = layout.scan(ci, 0..rows.max(1));
        // Ocelot sees at most 4-byte elements.
        let width = col.data_type().width().min(OCELOT_WIDTH);
        st.addr[s] = Some(ArrayRef {
            base: scan.addr,
            width,
            rows,
        });
    }

    let bitmap_reads = |st: &BitmapState| -> Vec<ArrayRef> { st.bitmap.into_iter().collect() };

    for op in &stage.ops {
        match op {
            PipeOp::Filter(pred) => {
                let mut in_slots = Vec::new();
                pred.slots(&mut in_slots);
                in_slots.dedup();
                let bm = alloc_array(
                    ctx,
                    st.logical_rows.div_ceil(8),
                    1,
                    RegionClass::Intermediate,
                    "ocelot.bitmap",
                );
                let mut reads: Vec<ArrayRef> = in_slots
                    .iter()
                    .map(|&s| st.addr[s].expect("filled"))
                    .collect();
                reads.extend(bitmap_reads(&st));
                merged.merge(&launch(
                    ctx,
                    "k_map",
                    kernel_resources("k_map", wavefront),
                    ReplayKernel::new(
                        st.logical_rows,
                        wavefront,
                        ops::INST_EXPANSION * (pred.insts() + 2),
                        0,
                    )
                    .reads(reads)
                    .writes(vec![bm]),
                ));
                st.chunk = apply_filter(&st.chunk, pred);
                st.bitmap = Some(bm);
            }
            PipeOp::Probe { ht, key, payloads } => {
                let table = hts[*ht].as_ref().expect("probed table built").clone();
                let table = table.borrow();
                let mut extra = Vec::with_capacity(st.chunk.rows);
                let out = apply_probe(&st.chunk, &table, *key, payloads, &mut extra);
                drop(table);
                let bm = alloc_array(
                    ctx,
                    st.logical_rows.div_ceil(8),
                    1,
                    RegionClass::Intermediate,
                    "ocelot.match-bitmap",
                );
                let mut writes = vec![bm];
                for &p in payloads {
                    let arr = alloc_array(
                        ctx,
                        st.logical_rows,
                        OCELOT_WIDTH,
                        RegionClass::Intermediate,
                        "ocelot.payload",
                    );
                    st.addr[p] = Some(arr);
                    writes.push(arr);
                }
                let mut reads = vec![st.addr[*key].expect("key filled")];
                reads.extend(bitmap_reads(&st));
                merged.merge(&launch(
                    ctx,
                    "k_hash_probe",
                    kernel_resources("k_hash_probe", wavefront),
                    ReplayKernel::new(
                        st.logical_rows,
                        wavefront,
                        ops::op_compute_insts(op) + 2,
                        ops::op_mem_insts(op),
                    )
                    .reads(reads)
                    .writes(writes)
                    .extra(pad_extra(extra, st.logical_rows), 1),
                ));
                st.chunk = out;
                st.bitmap = Some(bm);
            }
            PipeOp::Compute { expr, out } => {
                let mut in_slots = Vec::new();
                expr.slots(&mut in_slots);
                in_slots.dedup();
                let arr = alloc_array(
                    ctx,
                    st.logical_rows,
                    OCELOT_WIDTH,
                    RegionClass::Intermediate,
                    "ocelot.compute",
                );
                let mut reads: Vec<ArrayRef> = in_slots
                    .iter()
                    .map(|&s| st.addr[s].expect("filled"))
                    .collect();
                reads.extend(bitmap_reads(&st));
                merged.merge(&launch(
                    ctx,
                    "k_map",
                    kernel_resources("k_map", wavefront),
                    ReplayKernel::new(
                        st.logical_rows,
                        wavefront,
                        ops::INST_EXPANSION * (expr.insts() + 2),
                        0,
                    )
                    .reads(reads)
                    .writes(vec![arr]),
                ));
                apply_compute(&mut st.chunk, expr, *out);
                st.addr[*out] = Some(arr);
            }
        }
    }

    match &stage.terminal {
        Terminal::HashBuild { key, payloads, .. } => {
            let target = build.expect("hash-build stage needs a target table");
            let mut tt = target.borrow_mut();
            let mut extra = Vec::with_capacity(st.chunk.rows);
            for r in 0..st.chunk.rows {
                let pay: Vec<i64> = payloads.iter().map(|&p| st.chunk.cols[p][r]).collect();
                tt.insert(st.chunk.cols[*key][r], &pay, &mut extra);
            }
            drop(tt);
            let mut reads = vec![st.addr[*key].expect("key filled")];
            reads.extend(
                payloads
                    .iter()
                    .map(|&p| st.addr[p].expect("payload filled")),
            );
            reads.extend(bitmap_reads(&st));
            merged.merge(&launch(
                ctx,
                "k_hash_build",
                kernel_resources("k_hash_build", wavefront),
                ReplayKernel::new(
                    st.logical_rows,
                    wavefront,
                    ops::terminal_compute_insts(&stage.terminal),
                    ops::terminal_mem_insts(&stage.terminal),
                )
                .reads(reads)
                .extra(pad_extra(extra, st.logical_rows), 1),
            ));
        }
        Terminal::Aggregate { groups, aggs } => {
            let store = agg.expect("aggregate stage needs a store");
            let mut s = store.borrow_mut();
            let mut extra = Vec::with_capacity(st.chunk.rows * 2);
            for r in 0..st.chunk.rows {
                let keys: Vec<i64> = groups.iter().map(|&g| st.chunk.cols[g][r]).collect();
                let values: Vec<i64> = aggs
                    .iter()
                    .map(|a| a.expr.eval(&st.chunk.cols, r))
                    .collect();
                s.update(&keys, &values, &mut extra);
            }
            drop(s);
            let mut in_slots: Vec<usize> = groups.clone();
            for a in aggs {
                a.expr.slots(&mut in_slots);
            }
            in_slots.sort_unstable();
            in_slots.dedup();
            let mut reads: Vec<ArrayRef> = in_slots
                .iter()
                .map(|&s| st.addr[s].expect("filled"))
                .collect();
            reads.extend(bitmap_reads(&st));
            merged.merge(&launch(
                ctx,
                "k_aggregate",
                kernel_resources("k_aggregate", wavefront),
                ReplayKernel::new(
                    st.logical_rows,
                    wavefront,
                    ops::terminal_compute_insts(&stage.terminal),
                    ops::terminal_mem_insts(&stage.terminal),
                )
                .reads(reads)
                .extra(pad_extra(extra, st.logical_rows.max(1) * 2), 2),
            ));
        }
    }
    merged
}

/// Run `plan` on the Ocelot baseline. Hash tables built by previous runs
/// with the same `OcelotContext` are reused (Ocelot's memory manager).
pub fn run_query(ctx: &mut ExecContext, oc: &mut OcelotContext, plan: &QueryPlan) -> QueryRun {
    plan.validate();
    ctx.sim.reset_footprint();
    let mut hts: Vec<Option<Rc<RefCell<SimHashTable>>>> = vec![None; plan.num_hts];
    let mut agg_rows: Option<Vec<Vec<i64>>> = None;
    let mut merged = LaunchProfile::default();
    let mut per_stage = Vec::new();

    for stage in &plan.stages {
        if let Terminal::HashBuild { ht, payloads, .. } = &stage.terminal {
            let sig = build_signature(stage, ctx.db.table(&stage.driver).rows());
            if let Some(cached) = oc.ht_cache.get(&sig) {
                // Cache hit: Ocelot skips the build entirely.
                oc.cache_hits += 1;
                hts[*ht] = Some(cached.clone());
                per_stage.push(LaunchProfile::default());
                continue;
            }
            oc.cache_misses += 1;
            let table = Rc::new(RefCell::new(SimHashTable::new(
                &mut ctx.sim.mem,
                ctx.db.table(&stage.driver).rows(),
                payloads.len(),
                format!("ocelot::{sig:.32}"),
            )));
            hts[*ht] = Some(table.clone());
            let p = run_stage(ctx, stage, &hts, Some(&table), None);
            oc.ht_cache.insert(sig, table);
            merged.merge(&p);
            per_stage.push(p);
        } else {
            let Terminal::Aggregate { groups, aggs } = &stage.terminal else {
                unreachable!("stage terminal is build or aggregate");
            };
            let agg = Rc::new(RefCell::new(GroupStore::with_kinds(
                &mut ctx.sim.mem,
                if groups.is_empty() { 1 } else { 4096 },
                groups.len(),
                aggs.iter().map(|a| a.kind).collect(),
                "ocelot::agg",
            )));
            let p = run_stage(ctx, stage, &hts, None, Some(&agg));
            agg_rows = Some(
                Rc::try_unwrap(agg)
                    .expect("store unshared")
                    .into_inner()
                    .into_rows(),
            );
            merged.merge(&p);
            per_stage.push(p);
        }
    }

    let mut rows = agg_rows.expect("plan ends in an aggregate");
    if !plan.order_by.is_empty() {
        sort_rows(&mut rows, &plan.order_by);
        // A small bitonic sort launch, like the other engines pay.
        let n = rows.len().max(1);
        let arr = alloc_array(ctx, n, OCELOT_WIDTH, RegionClass::Output, "ocelot.sort");
        let passes = {
            let lg = 64 - (n as u64).leading_zeros() as u64;
            (lg * lg).max(1) as usize
        };
        let k = ReplayKernel::new(n * passes, ctx.sim.spec().wavefront_size, 6, 2)
            .reads(vec![arr])
            .writes(vec![arr]);
        let p = launch(
            ctx,
            "k_sort",
            kernel_resources("k_map", ctx.sim.spec().wavefront_size),
            k,
        );
        merged.merge(&p);
        per_stage.push(p);
    }

    if let Some(limit) = plan.limit {
        rows.truncate(limit);
    }
    if let Some(proj) = &plan.projection {
        rows = rows
            .into_iter()
            .map(|r| proj.iter().map(|&i| r[i]).collect())
            .collect();
    }
    let output = QueryOutput::new(
        plan.output_columns.iter().map(String::as_str).collect(),
        rows,
    );
    QueryRun {
        output,
        cycles: merged.elapsed_cycles,
        profile: merged,
        per_stage,
        recovery: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_core::plan_for;
    use gpl_sim::amd_a10;
    use gpl_tpch::{reference, QueryId, TpchDb};

    fn ctx() -> ExecContext {
        ExecContext::new(amd_a10(), TpchDb::at_scale(0.005))
    }

    #[test]
    fn all_queries_match_reference() {
        let mut ctx = ctx();
        let mut oc = OcelotContext::new();
        for q in QueryId::evaluation_set() {
            let plan = plan_for(&ctx.db, q);
            let run = run_query(&mut ctx, &mut oc, &plan);
            let want = reference::run(&ctx.db, q);
            assert_eq!(run.output, want, "{} diverged", q.name());
            assert!(run.cycles > 0);
        }
    }

    #[test]
    fn hash_table_cache_accelerates_repeats() {
        let mut ctx = ctx();
        let mut oc = OcelotContext::new();
        let plan = plan_for(&ctx.db, QueryId::Q5);
        let cold = run_query(&mut ctx, &mut oc, &plan);
        assert_eq!(oc.cache_hits, 0);
        let warm = run_query(&mut ctx, &mut oc, &plan);
        assert_eq!(oc.cache_misses, 3, "Q5 builds three tables once");
        assert_eq!(oc.cache_hits, 3, "second run reuses all three");
        assert!(
            warm.cycles < cold.cycles,
            "warm {} < cold {}",
            warm.cycles,
            cold.cycles
        );
        assert_eq!(warm.output, cold.output);
    }

    #[test]
    fn bitmaps_do_not_compact() {
        // Ocelot must not allocate any Scratch offsets (no prefix-sum /
        // scatter), and its per-selection intermediates are bitmaps.
        let mut ctx = ctx();
        let mut oc = OcelotContext::new();
        let plan = plan_for(&ctx.db, QueryId::Q14);
        let run = run_query(&mut ctx, &mut oc, &plan);
        let names: Vec<&str> = run.profile.kernels.iter().map(|k| &*k.name).collect();
        assert!(!names.contains(&"k_prefix_sum"), "{names:?}");
        assert!(!names.contains(&"k_scatter"), "{names:?}");
    }

    #[test]
    fn clearing_the_cache_forces_rebuilds() {
        let mut ctx = ctx();
        let mut oc = OcelotContext::new();
        let plan = plan_for(&ctx.db, QueryId::Q14);
        run_query(&mut ctx, &mut oc, &plan);
        oc.clear();
        run_query(&mut ctx, &mut oc, &plan);
        assert_eq!(oc.cache_hits, 0);
        assert_eq!(oc.cache_misses, 2);
    }
}
