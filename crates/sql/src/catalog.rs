//! Schema metadata the binder and planner consult: tables, column types,
//! dictionaries, and primary keys (which decide the legal hash-join
//! build sides).

use crate::token::{err, SqlError};
use gpl_storage::{DataType, Table};
use gpl_tpch::TpchDb;

/// Primary key of each TPC-H relation (build sides must be unique keys;
/// LINEITEM has no usable single-column key and is never a build side).
pub fn primary_key(table: &str) -> &'static [&'static str] {
    match table {
        "region" => &["r_regionkey"],
        "nation" => &["n_nationkey"],
        "supplier" => &["s_suppkey"],
        "customer" => &["c_custkey"],
        "part" => &["p_partkey"],
        "orders" => &["o_orderkey"],
        "partsupp" => &["ps_partkey", "ps_suppkey"],
        _ => &[],
    }
}

/// A catalog over a generated database.
pub struct Catalog<'a> {
    pub db: &'a TpchDb,
}

impl<'a> Catalog<'a> {
    pub fn new(db: &'a TpchDb) -> Self {
        Catalog { db }
    }

    pub fn table(&self, name: &str) -> Result<&'a Table, SqlError> {
        const TABLES: &[&str] = &[
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ];
        if TABLES.contains(&name) {
            Ok(self.db.table(name))
        } else {
            err(format!("unknown table {name:?}"))
        }
    }

    /// The type of `table.column`.
    pub fn column_type(&self, table: &str, column: &str) -> Result<DataType, SqlError> {
        let t = self.table(table)?;
        match t.col_index(column) {
            Some(i) => Ok(t.col_at(i).data_type()),
            None => err(format!("table {table:?} has no column {column:?}")),
        }
    }

    /// Dictionary code for a string literal compared against a dict
    /// column; unknown strings get a never-matching sentinel.
    pub fn dict_code(&self, table: &str, column: &str, value: &str) -> Result<i64, SqlError> {
        let t = self.table(table)?;
        let col = t.col(column);
        let Some(dict) = col.dictionary() else {
            return err(format!("{table}.{column} is not a string column"));
        };
        Ok(dict.code_of(value).map(|c| c as i64).unwrap_or(-1))
    }

    /// Codes of all dictionary entries with the given prefix (`LIKE 'p%'`).
    pub fn dict_prefix_codes(
        &self,
        table: &str,
        column: &str,
        prefix: &str,
    ) -> Result<Vec<i64>, SqlError> {
        let t = self.table(table)?;
        let col = t.col(column);
        let Some(dict) = col.dictionary() else {
            return err(format!("{table}.{column} is not a string column"));
        };
        Ok(dict
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.starts_with(prefix))
            .map(|(i, _)| i as i64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_tables_types_and_dictionaries() {
        let db = TpchDb::at_scale(0.002);
        let c = Catalog::new(&db);
        assert!(c.table("lineitem").is_ok());
        assert!(c.table("widgets").is_err());
        assert_eq!(
            c.column_type("lineitem", "l_extendedprice").unwrap(),
            DataType::Decimal
        );
        assert_eq!(
            c.column_type("orders", "o_orderdate").unwrap(),
            DataType::Date
        );
        assert!(c.column_type("orders", "nope").is_err());
        assert!(c.dict_code("region", "r_name", "ASIA").unwrap() >= 0);
        assert_eq!(c.dict_code("region", "r_name", "MARS").unwrap(), -1);
        assert_eq!(
            c.dict_prefix_codes("part", "p_type", "PROMO")
                .unwrap()
                .len(),
            25
        );
        assert!(c.dict_code("orders", "o_orderdate", "x").is_err());
    }

    #[test]
    fn primary_keys() {
        assert_eq!(primary_key("orders"), &["o_orderkey"]);
        assert_eq!(primary_key("partsupp"), &["ps_partkey", "ps_suppkey"]);
        assert!(primary_key("lineitem").is_empty());
    }
}
