//! The planner: binds a parsed SELECT against the catalog and compiles
//! it into a `gpl_core` [`QueryPlan`] — build stages for every dimension
//! of the (star/snowflake) join tree, then a fact pipeline of probes,
//! filters and computed columns feeding a hash aggregation, exactly the
//! segmented shape the GPL engine executes.
//!
//! Supported: star/snowflake equi-joins whose build sides are primary
//! keys (composite keys like PARTSUPP's are composed arithmetically),
//! conjunctive predicates, dictionary string comparisons and prefix
//! `LIKE`, `CASE`, `EXTRACT(YEAR ...)`, date intervals, group-by over
//! columns or expressions, `SUM`/`COUNT(*)`/`MIN`/`MAX`, `ORDER BY` and
//! `LIMIT`. Not supported (clear errors): subqueries, outer joins,
//! non-equi joins, division (select the two sums instead of their ratio),
//! `HAVING`, `DISTINCT`.

use crate::ast::*;
use crate::catalog::{primary_key, Catalog};
use crate::parser::parse;
use crate::token::{err, SqlError};
use gpl_core::plan::{Agg, DisplayHint, PipeOp, QueryPlan, Stage, Terminal, COMPOSITE_KEY_MUL};
use gpl_core::{CmpOp as CoreCmp, Expr, Pred, Slot};
use gpl_storage::DataType;
use gpl_tpch::{QueryId, TpchDb};
use std::collections::HashMap;

/// Compile SQL text into a validated query plan.
pub fn compile(db: &TpchDb, sql: &str) -> Result<QueryPlan, SqlError> {
    compile_traced(db, sql, None)
}

/// [`compile`], recording parse/bind spans into `rec` when present.
/// Planning happens before any simulated cycle exists, so spans are
/// timestamped with the recorder's logical clock (deterministic, unlike
/// wall time).
pub fn compile_traced(
    db: &TpchDb,
    sql: &str,
    rec: Option<&gpl_obs::Recorder>,
) -> Result<QueryPlan, SqlError> {
    let track = rec.map(|r| r.track("sql"));
    let parse_span = rec.map(|r| r.begin(track.unwrap(), "sql", "parse", r.tick()));
    let stmt = parse(sql)?;
    if let (Some(r), Some(s)) = (rec, parse_span) {
        r.arg(s, "bytes", sql.len());
        r.end(s, r.tick());
    }
    let plan_span = rec.map(|r| r.begin(track.unwrap(), "sql", "plan", r.tick()));
    let plan = Planner::new(db, stmt)?.plan()?;
    plan.validate();
    if let (Some(r), Some(s)) = (rec, plan_span) {
        r.arg(s, "stages", plan.stages.len());
        r.arg(s, "query", plan.query.name());
        r.end(s, r.tick());
    }
    Ok(plan)
}

/// The type a bound expression carries.
#[derive(Debug, Clone, PartialEq)]
enum Ty {
    Int,
    Decimal,
    Date,
    /// Dictionary code of `table.column`.
    Code {
        table: String,
        column: String,
    },
    /// An as-yet-uncoerced numeric literal.
    NumLit(String),
}

impl Ty {
    fn of(dt: DataType) -> Ty {
        match dt {
            DataType::I32 | DataType::I64 => Ty::Int,
            DataType::Date => Ty::Date,
            DataType::Decimal => Ty::Decimal,
            DataType::Dict => unreachable!("dict columns carry their table"),
        }
    }
}

#[derive(Debug, Clone)]
struct Bound {
    expr: Expr,
    ty: Ty,
}

/// Parse a numeric literal under a type context.
fn lit_under(text: &str, ty: &Ty) -> Result<i64, SqlError> {
    let as_decimal = || -> Result<i64, SqlError> {
        let (units, frac) = match text.split_once('.') {
            Some((u, f)) => (u, f),
            None => (text, ""),
        };
        let units: i64 = if units.is_empty() {
            0
        } else {
            units
                .parse()
                .map_err(|_| SqlError(format!("bad number {text:?}")))?
        };
        let frac = format!("{frac:0<2}");
        if frac.len() > 2 {
            return err(format!("{text:?} has more than two decimal places"));
        }
        let cents: i64 = frac
            .parse()
            .map_err(|_| SqlError(format!("bad number {text:?}")))?;
        Ok(units * 100 + cents)
    };
    match ty {
        Ty::Decimal => as_decimal(),
        Ty::Int | Ty::Date => text
            .parse()
            .map_err(|_| SqlError(format!("{text:?} is not an integer"))),
        Ty::Code { .. } => err(format!(
            "cannot compare a string column with number {text:?}"
        )),
        Ty::NumLit(_) => match text.parse() {
            Ok(v) => Ok(v),
            Err(_) => as_decimal(),
        },
    }
}

/// Coerce a pair of bound operands to a common type.
fn coerce(a: Bound, b: Bound) -> Result<(Expr, Expr, Ty), SqlError> {
    match (&a.ty, &b.ty) {
        // Two bare literals (e.g. CASE ... THEN 1 ELSE 0): nothing else
        // fixes their type, so decide from their spelling — any decimal
        // point makes the pair decimal, otherwise plain integers.
        (Ty::NumLit(ta), Ty::NumLit(tb)) => {
            let ty = if ta.contains('.') || tb.contains('.') {
                Ty::Decimal
            } else {
                Ty::Int
            };
            Ok((
                Expr::Const(lit_under(ta, &ty)?),
                Expr::Const(lit_under(tb, &ty)?),
                ty,
            ))
        }
        (Ty::NumLit(t), other) if !matches!(other, Ty::NumLit(_)) => {
            let v = lit_under(t, other)?;
            Ok((Expr::Const(v), b.expr, other.clone()))
        }
        (other, Ty::NumLit(t)) => {
            let v = lit_under(t, other)?;
            Ok((a.expr, Expr::Const(v), other.clone()))
        }
        (x, y) if x == y => Ok((a.expr, b.expr, a.ty.clone())),
        // Date ± integer days.
        (Ty::Date, Ty::Int) | (Ty::Int, Ty::Date) => Ok((a.expr, b.expr, Ty::Date)),
        (Ty::Decimal, Ty::Int) | (Ty::Int, Ty::Decimal) => Ok((a.expr, b.expr, Ty::Decimal)),
        (x, y) => err(format!("type mismatch: {x:?} vs {y:?}")),
    }
}

/// Binding context: which (relation, column) pairs are available at which
/// slot of the current pipeline.
struct Scope<'a> {
    rels: &'a [Rel],
    slots: HashMap<(usize, String), Slot>,
    next_slot: Slot,
}

impl Scope<'_> {
    fn slot_of(&self, rel: usize, col: &str) -> Result<Slot, SqlError> {
        self.slots
            .get(&(rel, col.to_string()))
            .copied()
            .ok_or_else(|| {
                SqlError(format!(
                    "column {}.{col} is not available in this pipeline stage",
                    self.rels[rel].binding
                ))
            })
    }

    fn alloc(&mut self, rel: usize, col: &str) -> Slot {
        let s = self.next_slot;
        self.slots.insert((rel, col.to_string()), s);
        self.next_slot += 1;
        s
    }

    fn alloc_anon(&mut self) -> Slot {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }
}

#[derive(Debug, Clone)]
struct Rel {
    binding: String,
    table: String,
    rows: usize,
}

/// A dimension of the join tree.
#[derive(Debug, Clone)]
struct Dim {
    rel: usize,
    /// Primary-key columns on the dimension side.
    keys: Vec<String>,
    /// Matching (relation, column) pairs on the probing side.
    src: Vec<(usize, String)>,
    /// Non-key columns the fact pipeline receives as probe payloads.
    payloads: Vec<String>,
}

pub(crate) struct Planner<'a> {
    catalog: Catalog<'a>,
    stmt: SelectStmt,
    rels: Vec<Rel>,
}

impl<'a> Planner<'a> {
    pub(crate) fn new(db: &'a TpchDb, stmt: SelectStmt) -> Result<Self, SqlError> {
        let catalog = Catalog::new(db);
        let mut rels = Vec::new();
        for t in &stmt.from {
            let table = catalog.table(&t.table)?;
            let binding = t.binding().to_string();
            if rels.iter().any(|r: &Rel| r.binding == binding) {
                return err(format!("duplicate table binding {binding:?}"));
            }
            rels.push(Rel {
                binding,
                table: t.table.clone(),
                rows: table.rows(),
            });
        }
        Ok(Planner {
            catalog,
            stmt,
            rels,
        })
    }

    /// Resolve a column reference to (relation index, column name).
    fn resolve(&self, c: &ColumnRef) -> Result<(usize, String), SqlError> {
        if let Some(q) = &c.qualifier {
            let Some(rel) = self.rels.iter().position(|r| &r.binding == q) else {
                return err(format!("unknown table or alias {q:?}"));
            };
            self.catalog.column_type(&self.rels[rel].table, &c.column)?;
            return Ok((rel, c.column.clone()));
        }
        let mut hits = Vec::new();
        for (i, r) in self.rels.iter().enumerate() {
            if self.catalog.column_type(&r.table, &c.column).is_ok() {
                hits.push(i);
            }
        }
        match hits.len() {
            0 => err(format!("unknown column {:?}", c.column)),
            1 => Ok((hits[0], c.column.clone())),
            _ => {
                // Same physical table aliased twice: the column exists in
                // both instances and must be qualified.
                err(format!("ambiguous column {:?}; qualify it", c.column))
            }
        }
    }

    fn ty_of(&self, rel: usize, col: &str) -> Result<Ty, SqlError> {
        let table = &self.rels[rel].table;
        Ok(match self.catalog.column_type(table, col)? {
            DataType::Dict => Ty::Code {
                table: table.clone(),
                column: col.to_string(),
            },
            dt => Ty::of(dt),
        })
    }

    /// Relations mentioned by an expression.
    fn expr_rels(&self, e: &SqlExpr, out: &mut Vec<usize>) -> Result<(), SqlError> {
        match e {
            SqlExpr::Column(c) => {
                out.push(self.resolve(c)?.0);
            }
            SqlExpr::Binary { lhs, rhs, .. } => {
                self.expr_rels(lhs, out)?;
                self.expr_rels(rhs, out)?;
            }
            SqlExpr::Case {
                cond,
                then,
                otherwise,
            } => {
                self.pred_rels(cond, out)?;
                self.expr_rels(then, out)?;
                self.expr_rels(otherwise, out)?;
            }
            SqlExpr::ExtractYear(e) => self.expr_rels(e, out)?,
            SqlExpr::Agg { arg: Some(a), .. } => self.expr_rels(a, out)?,
            _ => {}
        }
        Ok(())
    }

    fn pred_rels(&self, p: &SqlPred, out: &mut Vec<usize>) -> Result<(), SqlError> {
        match p {
            SqlPred::Cmp { lhs, rhs, .. } => {
                self.expr_rels(lhs, out)?;
                self.expr_rels(rhs, out)?;
            }
            SqlPred::Between { expr, lo, hi } => {
                self.expr_rels(expr, out)?;
                self.expr_rels(lo, out)?;
                self.expr_rels(hi, out)?;
            }
            SqlPred::InList { expr, list } => {
                self.expr_rels(expr, out)?;
                for e in list {
                    self.expr_rels(e, out)?;
                }
            }
            SqlPred::LikePrefix { expr, .. } => self.expr_rels(expr, out)?,
            SqlPred::And(v) => {
                for q in v {
                    self.pred_rels(q, out)?;
                }
            }
            SqlPred::Or(a, b) => {
                self.pred_rels(a, out)?;
                self.pred_rels(b, out)?;
            }
        }
        Ok(())
    }

    /// Collect every column an expression/predicate reads.
    fn collect_cols(&self, e: &SqlExpr, out: &mut Vec<(usize, String)>) -> Result<(), SqlError> {
        match e {
            SqlExpr::Column(c) => out.push(self.resolve(c)?),
            SqlExpr::Binary { lhs, rhs, .. } => {
                self.collect_cols(lhs, out)?;
                self.collect_cols(rhs, out)?;
            }
            SqlExpr::Case {
                cond,
                then,
                otherwise,
            } => {
                self.collect_pred_cols(cond, out)?;
                self.collect_cols(then, out)?;
                self.collect_cols(otherwise, out)?;
            }
            SqlExpr::ExtractYear(e) => self.collect_cols(e, out)?,
            SqlExpr::Agg { arg: Some(a), .. } => self.collect_cols(a, out)?,
            _ => {}
        }
        Ok(())
    }

    fn collect_pred_cols(
        &self,
        p: &SqlPred,
        out: &mut Vec<(usize, String)>,
    ) -> Result<(), SqlError> {
        match p {
            SqlPred::Cmp { lhs, rhs, .. } => {
                self.collect_cols(lhs, out)?;
                self.collect_cols(rhs, out)?;
            }
            SqlPred::Between { expr, lo, hi } => {
                self.collect_cols(expr, out)?;
                self.collect_cols(lo, out)?;
                self.collect_cols(hi, out)?;
            }
            SqlPred::InList { expr, list } => {
                self.collect_cols(expr, out)?;
                for e in list {
                    self.collect_cols(e, out)?;
                }
            }
            SqlPred::LikePrefix { expr, .. } => self.collect_cols(expr, out)?,
            SqlPred::And(v) => {
                for q in v {
                    self.collect_pred_cols(q, out)?;
                }
            }
            SqlPred::Or(a, b) => {
                self.collect_pred_cols(a, out)?;
                self.collect_pred_cols(b, out)?;
            }
        }
        Ok(())
    }

    // ---- expression binding ------------------------------------------

    fn bind_expr(&self, e: &SqlExpr, scope: &Scope) -> Result<Bound, SqlError> {
        match e {
            SqlExpr::Column(c) => {
                let (rel, col) = self.resolve(c)?;
                let slot = scope.slot_of(rel, &col)?;
                Ok(Bound {
                    expr: Expr::Slot(slot),
                    ty: self.ty_of(rel, &col)?,
                })
            }
            SqlExpr::Number(n) => Ok(Bound {
                expr: Expr::Const(0),
                ty: Ty::NumLit(n.clone()),
            }),
            SqlExpr::DateLit(d) => Ok(Bound {
                expr: Expr::Const(*d as i64),
                ty: Ty::Date,
            }),
            SqlExpr::Str(_) => err("string literals are only valid in comparisons"),
            SqlExpr::Binary { op, lhs, rhs } => {
                let l = self.bind_expr(lhs, scope)?;
                let r = self.bind_expr(rhs, scope)?;
                let decimal = matches!(l.ty, Ty::Decimal) || matches!(r.ty, Ty::Decimal);
                let (le, re, ty) = coerce(l, r)?;
                let (expr, ty) = match op {
                    BinOp::Add => (le.add(re), ty),
                    BinOp::Sub => (le.sub(re), ty),
                    BinOp::Mul if decimal => (le.dec_mul(re), Ty::Decimal),
                    BinOp::Mul => (le.mul(re), ty),
                    BinOp::Div => {
                        return err(
                            "division is not supported; select both operands (e.g. the two \
                             sums of a ratio) and divide in the client",
                        )
                    }
                };
                Ok(Bound { expr, ty })
            }
            SqlExpr::Case {
                cond,
                then,
                otherwise,
            } => {
                let p = self.bind_pred(cond, scope)?;
                let t = self.bind_expr(then, scope)?;
                let o = self.bind_expr(otherwise, scope)?;
                let (te, oe, ty) = coerce(t, o)?;
                Ok(Bound {
                    expr: Expr::Case(Box::new(p), Box::new(te), Box::new(oe)),
                    ty,
                })
            }
            SqlExpr::ExtractYear(inner) => {
                let b = self.bind_expr(inner, scope)?;
                if b.ty != Ty::Date {
                    return err("EXTRACT(YEAR ...) needs a date argument");
                }
                Ok(Bound {
                    expr: b.expr.year(),
                    ty: Ty::Int,
                })
            }
            SqlExpr::Agg { .. } => err("aggregates are only allowed at the top of SELECT items"),
        }
    }

    fn bind_pred(&self, p: &SqlPred, scope: &Scope) -> Result<Pred, SqlError> {
        match p {
            SqlPred::Cmp { op, lhs, rhs } => {
                let core_op = match op {
                    CmpOp::Eq => CoreCmp::Eq,
                    CmpOp::Ne => CoreCmp::Ne,
                    CmpOp::Lt => CoreCmp::Lt,
                    CmpOp::Le => CoreCmp::Le,
                    CmpOp::Gt => CoreCmp::Gt,
                    CmpOp::Ge => CoreCmp::Ge,
                };
                // String comparisons resolve through the dictionary.
                if let SqlExpr::Str(s) = rhs {
                    let l = self.bind_expr(lhs, scope)?;
                    let Ty::Code { table, column } = &l.ty else {
                        return err(format!("cannot compare non-string column with {s:?}"));
                    };
                    let code = self.catalog.dict_code(table, column, s)?;
                    return Ok(Pred::Cmp(core_op, l.expr, Expr::Const(code)));
                }
                let l = self.bind_expr(lhs, scope)?;
                let r = self.bind_expr(rhs, scope)?;
                let (le, re, _) = coerce(l, r)?;
                Ok(Pred::Cmp(core_op, le, re))
            }
            SqlPred::Between { expr, lo, hi } => {
                let e = self.bind_expr(expr, scope)?;
                let l = self.bind_expr(lo, scope)?;
                let h = self.bind_expr(hi, scope)?;
                let (e1, lo, _) = coerce(e.clone(), l)?;
                let (_, hi, _) = coerce(e, h)?;
                Ok(Pred::And(vec![
                    Pred::Cmp(CoreCmp::Ge, e1.clone(), lo),
                    Pred::Cmp(CoreCmp::Le, e1, hi),
                ]))
            }
            SqlPred::InList { expr, list } => {
                let e = self.bind_expr(expr, scope)?;
                let mut vals = Vec::with_capacity(list.len());
                for item in list {
                    match item {
                        SqlExpr::Str(s) => {
                            let Ty::Code { table, column } = &e.ty else {
                                return err("IN over strings needs a string column");
                            };
                            vals.push(self.catalog.dict_code(table, column, s)?);
                        }
                        SqlExpr::Number(n) => vals.push(lit_under(n, &e.ty)?),
                        SqlExpr::DateLit(d) => vals.push(*d as i64),
                        other => return err(format!("unsupported IN item {other:?}")),
                    }
                }
                Ok(Pred::InList(e.expr, vals))
            }
            SqlPred::LikePrefix { expr, prefix } => {
                let e = self.bind_expr(expr, scope)?;
                let Ty::Code { table, column } = &e.ty else {
                    return err("LIKE needs a string column");
                };
                let codes = self.catalog.dict_prefix_codes(table, column, prefix)?;
                Ok(Pred::InList(e.expr, codes))
            }
            SqlPred::And(v) => Ok(Pred::And(
                v.iter()
                    .map(|q| self.bind_pred(q, scope))
                    .collect::<Result<_, _>>()?,
            )),
            SqlPred::Or(a, b) => Ok(Pred::Or(
                Box::new(self.bind_pred(a, scope)?),
                Box::new(self.bind_pred(b, scope)?),
            )),
        }
    }

    // ---- planning ------------------------------------------------------

    pub(crate) fn plan(&self) -> Result<QueryPlan, SqlError> {
        // 1. Classify predicates.
        let mut equi: Vec<(usize, String, usize, String)> = Vec::new(); // (rel_a, col_a, rel_b, col_b)
        let mut single: Vec<Vec<&SqlPred>> = vec![Vec::new(); self.rels.len()];
        let mut cross: Vec<&SqlPred> = Vec::new();
        for p in &self.stmt.predicates {
            if let SqlPred::Cmp {
                op: CmpOp::Eq,
                lhs: SqlExpr::Column(a),
                rhs: SqlExpr::Column(b),
            } = p
            {
                let (ra, ca) = self.resolve(a)?;
                let (rb, cb) = self.resolve(b)?;
                if ra != rb {
                    equi.push((ra, ca, rb, cb));
                    continue;
                }
            }
            let mut rels = Vec::new();
            self.pred_rels(p, &mut rels)?;
            rels.sort_unstable();
            rels.dedup();
            match rels.len() {
                0 => return err("constant predicates are not supported"),
                1 => single[rels[0]].push(p),
                _ => cross.push(p),
            }
        }

        // 2. Join tree from the driver (largest relation) outward: a
        //    dimension joins when its full primary key is matched by
        //    columns already in the tree.
        let driver = self
            .rels
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.rows)
            .map(|(i, _)| i)
            .ok_or_else(|| SqlError("FROM clause is empty".into()))?;
        let mut in_tree = vec![false; self.rels.len()];
        in_tree[driver] = true;
        let mut dims: Vec<Dim> = Vec::new();
        let mut edge_used = vec![false; equi.len()];
        loop {
            let mut grew = false;
            for rel in 0..self.rels.len() {
                if in_tree[rel] {
                    continue;
                }
                let pk = primary_key(&self.rels[rel].table);
                if pk.is_empty() {
                    continue;
                }
                // For each pk column, find an unused equi edge matching it
                // against an in-tree column.
                let mut src = Vec::new();
                let mut used = Vec::new();
                for &k in pk {
                    let found = equi.iter().enumerate().find(|(i, (ra, ca, rb, cb))| {
                        !edge_used[*i]
                            && ((*ra == rel && ca == k && in_tree[*rb])
                                || (*rb == rel && cb == k && in_tree[*ra]))
                    });
                    match found {
                        Some((i, (ra, ca, rb, cb))) => {
                            used.push(i);
                            if *ra == rel && ca == k {
                                src.push((*rb, cb.clone()));
                            } else {
                                src.push((*ra, ca.clone()));
                            }
                        }
                        None => break,
                    }
                }
                if src.len() == pk.len() {
                    for i in used {
                        edge_used[i] = true;
                    }
                    dims.push(Dim {
                        rel,
                        keys: pk.iter().map(|s| s.to_string()).collect(),
                        src,
                        payloads: Vec::new(),
                    });
                    in_tree[rel] = true;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        if let Some(missing) = in_tree.iter().position(|t| !t) {
            return err(format!(
                "relation {:?} cannot be joined: no primary-key equi-join path to the driver",
                self.rels[missing].binding
            ));
        }
        // Leftover equi predicates are plain cross filters (e.g. Q5's
        // c_nationkey = s_nationkey).
        let leftover: Vec<&SqlPred> = self
            .stmt
            .predicates
            .iter()
            .filter(|p| {
                if let SqlPred::Cmp {
                    op: CmpOp::Eq,
                    lhs: SqlExpr::Column(a),
                    rhs: SqlExpr::Column(b),
                } = p
                {
                    if let (Ok((ra, ca)), Ok((rb, cb))) = (self.resolve(a), self.resolve(b)) {
                        if ra != rb {
                            return !equi.iter().zip(&edge_used).any(
                                |((ea, eca, eb, ecb), used)| {
                                    *used
                                        && ((*ea == ra && eca == &ca && *eb == rb && ecb == &cb)
                                            || (*ea == rb && eca == &cb && *eb == ra && ecb == &ca))
                                },
                            );
                        }
                    }
                }
                false
            })
            .collect();
        let mut cross_preds: Vec<&SqlPred> = cross;
        cross_preds.extend(leftover);

        // 3. Needed columns per relation (beyond keys and stage-local
        //    filters): select items, group by, cross filters, order-by
        //    expressions, and the source side of every join edge.
        let mut needed: Vec<(usize, String)> = Vec::new();
        for item in &self.stmt.items {
            self.collect_cols(&item.expr, &mut needed)?;
        }
        for g in &self.stmt.group_by {
            self.collect_cols(g, &mut needed)?;
        }
        for p in &cross_preds {
            self.collect_pred_cols(p, &mut needed)?;
        }
        for (k, _) in &self.stmt.order_by {
            if let OrderKey::Expr(e) = k {
                // Order keys referencing aliases resolve later; ignore
                // unresolvable columns here.
                let _ = self.collect_cols(e, &mut needed);
            }
        }
        for d in &dims {
            needed.extend(d.src.iter().cloned());
        }
        needed.sort();
        needed.dedup();

        // Dimension payloads: needed columns of the dimension that are
        // not its probe key (key equality makes the key recoverable from
        // the probing side, but selecting it is also fine via payload).
        for d in &mut dims {
            d.payloads = needed
                .iter()
                .filter(|(r, c)| *r == d.rel && !d.keys.contains(c))
                .map(|(_, c)| c.clone())
                .collect();
        }

        // 4. Build stages.
        let mut stages = Vec::new();
        for (ht, d) in dims.iter().enumerate() {
            stages.push(self.build_stage(ht, d, &single[d.rel])?);
        }
        // 5. The fact pipeline.
        let (fact_stage, scope) =
            self.fact_stage(driver, &dims, &single[driver], &cross_preds, &needed)?;
        stages.push(fact_stage);

        // 6. Aggregation shape from SELECT / GROUP BY.
        self.finish_plan(stages, driver, scope)
    }

    fn build_stage(&self, ht: usize, d: &Dim, filters: &[&SqlPred]) -> Result<Stage, SqlError> {
        let rel = d.rel;
        // Loads: pk + filter columns + payload columns.
        let mut load_cols: Vec<String> = d.keys.clone();
        let mut fcols = Vec::new();
        for p in filters {
            self.collect_pred_cols(p, &mut fcols)?;
        }
        for (r, c) in fcols {
            debug_assert_eq!(r, rel);
            if !load_cols.contains(&c) {
                load_cols.push(c);
            }
        }
        for c in &d.payloads {
            if !load_cols.contains(c) {
                load_cols.push(c.clone());
            }
        }
        let mut scope = Scope {
            rels: &self.rels,
            slots: HashMap::new(),
            next_slot: 0,
        };
        for c in &load_cols {
            scope.alloc(rel, c);
        }
        let mut ops = Vec::new();
        for p in filters {
            ops.push(PipeOp::Filter(self.bind_pred(p, &scope)?));
        }
        // Composite keys are composed arithmetically (as Q9 does).
        let key = if d.keys.len() == 1 {
            scope.slot_of(rel, &d.keys[0])?
        } else {
            let k0 = scope.slot_of(rel, &d.keys[0])?;
            let k1 = scope.slot_of(rel, &d.keys[1])?;
            let out = scope.alloc_anon();
            ops.push(PipeOp::Compute {
                expr: Expr::Slot(k0)
                    .mul(Expr::lit(COMPOSITE_KEY_MUL))
                    .add(Expr::Slot(k1)),
                out,
            });
            out
        };
        let payloads: Vec<Slot> = d
            .payloads
            .iter()
            .map(|c| scope.slot_of(rel, c))
            .collect::<Result<_, _>>()?;
        Ok(Stage {
            name: format!("build_{}", self.rels[rel].binding),
            driver: self.rels[rel].table.clone(),
            loads: load_cols,
            ops,
            terminal: Terminal::HashBuild { ht, key, payloads },
        })
    }

    fn fact_stage(
        &self,
        driver: usize,
        dims: &[Dim],
        fact_filters: &[&SqlPred],
        cross_preds: &[&SqlPred],
        needed: &[(usize, String)],
    ) -> Result<(Stage, Scope<'_>), SqlError> {
        // Fact loads: needed driver columns + driver-side join keys +
        // fact filter columns.
        let mut load_cols: Vec<String> = Vec::new();
        let push = |c: &str, load_cols: &mut Vec<String>| {
            if !load_cols.iter().any(|x| x == c) {
                load_cols.push(c.to_string());
            }
        };
        for (r, c) in needed {
            if *r == driver {
                push(c, &mut load_cols);
            }
        }
        let mut fcols = Vec::new();
        for p in fact_filters {
            self.collect_pred_cols(p, &mut fcols)?;
        }
        for (r, c) in &fcols {
            debug_assert_eq!(*r, driver);
            push(c, &mut load_cols);
        }
        for d in dims {
            for (r, c) in &d.src {
                if *r == driver {
                    push(c, &mut load_cols);
                }
            }
        }
        let mut scope = Scope {
            rels: &self.rels,
            slots: HashMap::new(),
            next_slot: 0,
        };
        for c in &load_cols {
            scope.alloc(driver, c);
        }

        let mut ops = Vec::new();
        for p in fact_filters {
            ops.push(PipeOp::Filter(self.bind_pred(p, &scope)?));
        }
        let mut pending_cross: Vec<&SqlPred> = cross_preds.to_vec();
        let apply_ready_cross = |scope: &Scope,
                                 ops: &mut Vec<PipeOp>,
                                 pending: &mut Vec<&SqlPred>|
         -> Result<(), SqlError> {
            let mut i = 0;
            while i < pending.len() {
                let mut cols = Vec::new();
                self.collect_pred_cols(pending[i], &mut cols)?;
                if cols
                    .iter()
                    .all(|(r, c)| scope.slots.contains_key(&(*r, c.clone())))
                {
                    let p = pending.remove(i);
                    ops.push(PipeOp::Filter(self.bind_pred(p, scope)?));
                } else {
                    i += 1;
                }
            }
            Ok(())
        };

        for (ht, d) in dims.iter().enumerate() {
            // Probe key on the fact side.
            let key = if d.src.len() == 1 {
                scope.slot_of(d.src[0].0, &d.src[0].1)?
            } else {
                let k0 = scope.slot_of(d.src[0].0, &d.src[0].1)?;
                let k1 = scope.slot_of(d.src[1].0, &d.src[1].1)?;
                let out = scope.alloc_anon();
                ops.push(PipeOp::Compute {
                    expr: Expr::Slot(k0)
                        .mul(Expr::lit(COMPOSITE_KEY_MUL))
                        .add(Expr::Slot(k1)),
                    out,
                });
                out
            };
            // Join-key equality makes the dimension's key columns
            // available on the probing side under their dimension name
            // (e.g. selecting or grouping by c_custkey after joining on
            // c_custkey = o_custkey reads the o_custkey slot).
            for (i, kc) in d.keys.iter().enumerate() {
                let s = scope.slot_of(d.src[i].0, &d.src[i].1)?;
                scope.slots.entry((d.rel, kc.clone())).or_insert(s);
            }
            let payloads: Vec<Slot> = d.payloads.iter().map(|c| scope.alloc(d.rel, c)).collect();
            ops.push(PipeOp::Probe { ht, key, payloads });
            apply_ready_cross(&scope, &mut ops, &mut pending_cross)?;
        }
        if let Some(p) = pending_cross.first() {
            return err(format!("predicate {p:?} references unavailable columns"));
        }

        let stage = Stage {
            name: format!("probe_{}", self.rels[driver].binding),
            driver: self.rels[driver].table.clone(),
            loads: load_cols,
            ops,
            terminal: Terminal::Aggregate {
                groups: vec![],
                aggs: vec![],
            }, // placeholder
        };
        Ok((stage, scope))
    }

    fn finish_plan(
        &self,
        mut stages: Vec<Stage>,
        _driver: usize,
        mut scope: Scope<'_>,
    ) -> Result<QueryPlan, SqlError> {
        let fact = stages.last_mut().expect("fact stage exists");

        // Group keys: plain columns group on their slot; expressions get a
        // computed slot.
        let mut group_slots = Vec::new();
        for g in &self.stmt.group_by {
            let slot = match g {
                SqlExpr::Column(c) => {
                    let (rel, col) = self.resolve(c)?;
                    scope.slot_of(rel, &col)?
                }
                other => {
                    let b = self.bind_expr(other, &scope)?;
                    let out = scope.alloc_anon();
                    fact.ops.push(PipeOp::Compute { expr: b.expr, out });
                    out
                }
            };
            group_slots.push(slot);
        }

        // SELECT items: each is a group key or an aggregate.
        let mut aggs: Vec<Agg> = Vec::new();
        let mut columns: Vec<String> = Vec::new();
        let mut projection: Vec<usize> = Vec::new();
        let mut display: Vec<DisplayHint> = Vec::new();
        let hint_of = |ty: &Ty| match ty {
            Ty::Decimal => DisplayHint::Decimal,
            Ty::Date => DisplayHint::Date,
            Ty::Code { table, column } => DisplayHint::Dict {
                table: table.clone(),
                column: column.clone(),
            },
            _ => DisplayHint::Plain,
        };
        for (i, item) in self.stmt.items.iter().enumerate() {
            let name = item.alias.clone().unwrap_or_else(|| match &item.expr {
                SqlExpr::Column(c) => c.column.clone(),
                _ => format!("col{}", i + 1),
            });
            match &item.expr {
                SqlExpr::Agg { func, arg } => {
                    let (agg, hint) = match (func, arg) {
                        (AggFunc::Count, None) => (Agg::count(), DisplayHint::Plain),
                        (AggFunc::Count, Some(_)) => (Agg::count(), DisplayHint::Plain),
                        (f, Some(a)) => {
                            let b = self.bind_expr(a, &scope)?;
                            let hint = hint_of(&b.ty);
                            let agg = match f {
                                AggFunc::Sum => Agg::sum(b.expr),
                                AggFunc::Min => Agg::min(b.expr),
                                AggFunc::Max => Agg::max(b.expr),
                                AggFunc::Count => unreachable!(),
                            };
                            (agg, hint)
                        }
                        (f, None) => return err(format!("{f:?} needs an argument")),
                    };
                    projection.push(group_slots.len() + aggs.len());
                    aggs.push(agg);
                    display.push(hint);
                }
                other => {
                    // Must match a GROUP BY expression.
                    let idx = self
                        .stmt
                        .group_by
                        .iter()
                        .position(|g| g == other)
                        .ok_or_else(|| {
                            SqlError(format!(
                                "select item {name:?} is neither an aggregate nor listed in \
                                 GROUP BY"
                            ))
                        })?;
                    projection.push(idx);
                    display.push(hint_of(&self.bind_expr(other, &scope)?.ty));
                }
            }
            columns.push(name);
        }
        if self.stmt.group_by.is_empty()
            && self
                .stmt
                .items
                .iter()
                .any(|i| !matches!(i.expr, SqlExpr::Agg { .. }))
        {
            return err("without GROUP BY every select item must be an aggregate");
        }
        if aggs.is_empty() {
            return err("at least one aggregate is required (this engine is for OLAP rollups)");
        }
        fact.terminal = Terminal::Aggregate {
            groups: group_slots.clone(),
            aggs,
        };

        // ORDER BY: positions are 1-based select positions; expressions
        // match select aliases or select/group expressions.
        let mut order_by = Vec::new();
        for (key, desc) in &self.stmt.order_by {
            let internal = match key {
                OrderKey::Position(p) => {
                    if *p == 0 || *p > projection.len() {
                        return err(format!("ORDER BY position {p} out of range"));
                    }
                    projection[*p - 1]
                }
                OrderKey::Expr(e) => {
                    let by_alias = match e {
                        SqlExpr::Column(c) if c.qualifier.is_none() => self
                            .stmt
                            .items
                            .iter()
                            .position(|it| it.alias.as_deref() == Some(c.column.as_str())),
                        _ => None,
                    };
                    let pos = by_alias
                        .or_else(|| self.stmt.items.iter().position(|it| &it.expr == e))
                        .ok_or_else(|| {
                            SqlError(format!("ORDER BY key {e:?} is not a select item"))
                        })?;
                    projection[pos]
                }
            };
            order_by.push((internal, *desc));
        }

        let num_hts = stages.len() - 1;
        Ok(QueryPlan {
            query: QueryId::Adhoc,
            stages,
            num_hts,
            output_columns: columns,
            order_by,
            limit: self.stmt.limit,
            projection: Some(projection),
            display: Some(display),
        })
    }
}
