//! # gpl-sql — a SQL front-end for the GPL engine
//!
//! Compiles an analytical SQL subset (star/snowflake equi-joins with
//! filters, `GROUP BY`, `SUM`/`COUNT`/`MIN`/`MAX`, `ORDER BY`, `LIMIT`;
//! see [`planner`]) into the segmented [`gpl_core::QueryPlan`]s the GPL
//! pipelined executor runs, binding string literals through the column
//! dictionaries and composing composite join keys arithmetically. The
//! Selinger-style join-order optimizer from `gpl-model` can then reorder
//! the compiled probe pipeline.
//!
//! ```
//! use gpl_sql::compile;
//! use gpl_tpch::TpchDb;
//!
//! let db = TpchDb::at_scale(0.001);
//! let plan = compile(
//!     &db,
//!     "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
//!      FROM lineitem WHERE l_shipdate <= DATE '1998-11-01'",
//! )
//! .unwrap();
//! assert_eq!(plan.output_columns, vec!["revenue"]);
//! ```

pub mod ast;
pub mod catalog;
pub mod corpus;
pub mod gen;
pub mod parser;
pub mod planner;
#[cfg(test)]
mod tests;
pub mod token;

pub use corpus::sql_for;
pub use gen::{random_query, random_workload};
pub use parser::parse;
pub use planner::{compile, compile_traced};
pub use token::SqlError;

use gpl_core::{run_query, ExecContext, ExecMode, QueryConfig, QueryRun};

/// Compile with join-order optimization applied.
pub fn compile_optimized(
    db: &gpl_tpch::TpchDb,
    sql: &str,
) -> Result<gpl_core::QueryPlan, SqlError> {
    let plan = compile(db, sql)?;
    Ok(gpl_model::optimize_join_order(db, &plan))
}

/// Compile and execute in one call, with the default configuration.
pub fn run_sql(ctx: &mut ExecContext, sql: &str, mode: ExecMode) -> Result<QueryRun, SqlError> {
    let plan = compile_optimized(&ctx.db, sql)?;
    let cfg = QueryConfig::default_for(&ctx.spec(), &plan);
    Ok(run_query(ctx, &plan, mode, &cfg))
}
