//! Random in-subset SQL generation for differential fuzzing.
//!
//! Emits ad-hoc analytic queries — filters, FK→PK snowflake joins,
//! aggregates, `GROUP BY`/`ORDER BY`/`LIMIT` — drawn from a seeded
//! [`gpl_prng`] stream. The generator is deliberately conservative:
//! every query it produces lies inside the planner's subset (at least
//! one aggregate, group-by columns in the select list, joins only along
//! foreign-key edges whose build side has a primary key), so a
//! compilation failure on generated SQL is a planner bug, not a
//! generator bug. Literals come from the fixed TPC-H text domains and
//! value ranges, giving predicates realistic selectivities.

use gpl_prng::{Rng, SeedableRng};

/// One joinable table with the columns the generator may touch.
struct TableInfo {
    /// Low-cardinality columns usable in `GROUP BY` (and `SELECT`).
    group_cols: &'static [&'static str],
    /// Numeric columns usable inside `SUM`/`MIN`/`MAX`.
    agg_cols: &'static [&'static str],
    /// Columns usable in `WHERE`, with how to draw a literal.
    filter_cols: &'static [(&'static str, FilterKind)],
}

#[derive(Clone, Copy)]
enum FilterKind {
    /// Integer comparison with a literal in `[lo, hi]`.
    Int(i64, i64),
    /// Date comparison within the TPC-H date window.
    Date,
    /// Two-decimal comparison with a literal in `[lo, hi]` hundredths.
    Decimal(i64, i64),
    /// Equality against one of the fixed dictionary values.
    Dict(&'static [&'static str]),
}

const LINEITEM: TableInfo = TableInfo {
    group_cols: &["l_returnflag", "l_linestatus", "l_shipmode", "l_linenumber"],
    agg_cols: &["l_quantity", "l_extendedprice", "l_discount", "l_tax"],
    filter_cols: &[
        ("l_shipdate", FilterKind::Date),
        ("l_quantity", FilterKind::Int(1, 50)),
        ("l_discount", FilterKind::Decimal(0, 10)),
        ("l_returnflag", FilterKind::Dict(&["R", "A", "N"])),
        (
            "l_shipmode",
            FilterKind::Dict(&["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]),
        ),
    ],
};

const ORDERS: TableInfo = TableInfo {
    group_cols: &["o_orderpriority", "o_shippriority"],
    agg_cols: &["o_totalprice"],
    filter_cols: &[
        ("o_orderdate", FilterKind::Date),
        (
            "o_orderpriority",
            FilterKind::Dict(&["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]),
        ),
    ],
};

const CUSTOMER: TableInfo = TableInfo {
    group_cols: &["c_mktsegment", "c_nationkey"],
    agg_cols: &["c_acctbal"],
    filter_cols: &[(
        "c_mktsegment",
        FilterKind::Dict(&[
            "AUTOMOBILE",
            "BUILDING",
            "FURNITURE",
            "MACHINERY",
            "HOUSEHOLD",
        ]),
    )],
};

const SUPPLIER: TableInfo = TableInfo {
    group_cols: &["s_nationkey"],
    agg_cols: &["s_acctbal"],
    filter_cols: &[],
};

const PART: TableInfo = TableInfo {
    group_cols: &["p_size"],
    agg_cols: &["p_retailprice", "p_size"],
    filter_cols: &[("p_size", FilterKind::Int(1, 50))],
};

const PARTSUPP: TableInfo = TableInfo {
    group_cols: &[],
    agg_cols: &["ps_availqty", "ps_supplycost"],
    filter_cols: &[("ps_availqty", FilterKind::Int(1, 9999))],
};

const NATION: TableInfo = TableInfo {
    group_cols: &["n_name", "n_regionkey"],
    agg_cols: &[],
    filter_cols: &[],
};

const REGION: TableInfo = TableInfo {
    group_cols: &["r_name"],
    agg_cols: &[],
    filter_cols: &[(
        "r_name",
        FilterKind::Dict(&["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]),
    )],
};

fn info(name: &str) -> &'static TableInfo {
    match name {
        "lineitem" => &LINEITEM,
        "orders" => &ORDERS,
        "customer" => &CUSTOMER,
        "supplier" => &SUPPLIER,
        "part" => &PART,
        "partsupp" => &PARTSUPP,
        "nation" => &NATION,
        "region" => &REGION,
        other => panic!("unknown table {other}"),
    }
}

/// Pick a random snowflake: a fact root plus FK→PK edges. Every edge's
/// target has a primary key, so each joined dimension is a legal build
/// side. `nation` is reachable from both `customer` and `supplier`; the
/// generator joins it from at most one (the planner's subset has no
/// table aliases).
fn random_join(rng: &mut impl Rng) -> (Vec<&'static str>, Vec<String>) {
    let roots = ["lineitem", "lineitem", "orders", "partsupp", "customer"];
    let root = roots[rng.gen_range(0..roots.len())];
    let mut tables = vec![root];
    let mut joins = Vec::new();
    let join = |tables: &mut Vec<&'static str>, joins: &mut Vec<String>, t, pred: &str| {
        tables.push(t);
        joins.push(pred.to_string());
    };
    match root {
        "lineitem" => {
            if rng.gen_bool(0.5) {
                join(&mut tables, &mut joins, "orders", "l_orderkey = o_orderkey");
            }
            if rng.gen_bool(0.4) {
                join(&mut tables, &mut joins, "part", "l_partkey = p_partkey");
            }
            if rng.gen_bool(0.4) {
                join(&mut tables, &mut joins, "supplier", "l_suppkey = s_suppkey");
            }
        }
        "orders" => {
            if rng.gen_bool(0.7) {
                join(&mut tables, &mut joins, "customer", "o_custkey = c_custkey");
            }
        }
        "partsupp" => {
            if rng.gen_bool(0.6) {
                join(&mut tables, &mut joins, "part", "ps_partkey = p_partkey");
            }
            if rng.gen_bool(0.5) {
                join(
                    &mut tables,
                    &mut joins,
                    "supplier",
                    "ps_suppkey = s_suppkey",
                );
            }
        }
        "customer" => {}
        _ => unreachable!(),
    }
    // Second-level extensions of the snowflake.
    if tables.contains(&"orders") && root != "orders" && rng.gen_bool(0.4) {
        join(&mut tables, &mut joins, "customer", "o_custkey = c_custkey");
    }
    if tables.contains(&"customer") && rng.gen_bool(0.5) {
        join(
            &mut tables,
            &mut joins,
            "nation",
            "c_nationkey = n_nationkey",
        );
    } else if tables.contains(&"supplier") && rng.gen_bool(0.5) {
        join(
            &mut tables,
            &mut joins,
            "nation",
            "s_nationkey = n_nationkey",
        );
    }
    if tables.contains(&"nation") && rng.gen_bool(0.5) {
        join(
            &mut tables,
            &mut joins,
            "region",
            "n_regionkey = r_regionkey",
        );
    }
    (tables, joins)
}

fn random_date(rng: &mut impl Rng) -> String {
    let y = rng.gen_range(1992..=1998i32);
    let m = rng.gen_range(1..=12u32);
    let d = rng.gen_range(1..=28u32);
    format!("date '{y}-{m:02}-{d:02}'")
}

fn random_filter(rng: &mut impl Rng, col: &str, kind: FilterKind) -> String {
    let cmp = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
    match kind {
        FilterKind::Int(lo, hi) => format!("{col} {cmp} {}", rng.gen_range(lo..=hi)),
        FilterKind::Date => format!("{col} {cmp} {}", random_date(rng)),
        FilterKind::Decimal(lo, hi) => {
            let v = rng.gen_range(lo..=hi);
            format!("{col} {cmp} {}.{:02}", v / 100, v % 100)
        }
        FilterKind::Dict(values) => {
            format!("{col} = '{}'", values[rng.gen_range(0..values.len())])
        }
    }
}

/// Generate one random in-subset SQL query.
pub fn random_query(rng: &mut impl Rng) -> String {
    let (tables, joins) = random_join(rng);
    let infos: Vec<&TableInfo> = tables.iter().map(|t| info(t)).collect();

    // Aggregates: always at least one, so every query stays in subset.
    let agg_cols: Vec<&str> = infos
        .iter()
        .flat_map(|i| i.agg_cols.iter().copied())
        .collect();
    let mut aggs = Vec::new();
    let n_aggs = rng.gen_range(1..=2usize);
    for i in 0..n_aggs {
        let pick = rng.gen_range(0..4u32);
        let agg = if agg_cols.is_empty() || pick == 3 {
            format!("count(*) as agg{i}")
        } else {
            let col = agg_cols[rng.gen_range(0..agg_cols.len())];
            let f = ["sum", "min", "max"][pick as usize % 3];
            format!("{f}({col}) as agg{i}")
        };
        aggs.push(agg);
    }

    // Group by 0–2 low-cardinality columns; grouped columns must appear
    // in the select list (planner rule).
    let mut group_pool: Vec<&str> = infos
        .iter()
        .flat_map(|i| i.group_cols.iter().copied())
        .collect();
    rng.shuffle(&mut group_pool);
    let n_groups = if group_pool.is_empty() || rng.gen_bool(0.25) {
        0
    } else {
        rng.gen_range(1..=2usize.min(group_pool.len()))
    };
    let groups: Vec<&str> = group_pool.into_iter().take(n_groups).collect();

    // Filters: 0–3 predicates over the included tables.
    let filter_pool: Vec<(&str, FilterKind)> = infos
        .iter()
        .flat_map(|i| i.filter_cols.iter().copied())
        .collect();
    let mut filters = Vec::new();
    if !filter_pool.is_empty() {
        for _ in 0..rng.gen_range(0..=3usize) {
            let (col, kind) = filter_pool[rng.gen_range(0..filter_pool.len())];
            filters.push(random_filter(rng, col, kind));
        }
    }

    let mut select: Vec<String> = groups.iter().map(|g| g.to_string()).collect();
    select.extend(aggs.iter().cloned());
    let mut sql = format!("select {} from {}", select.join(", "), tables.join(", "));
    let mut preds: Vec<String> = joins;
    preds.extend(filters);
    if !preds.is_empty() {
        sql.push_str(&format!(" where {}", preds.join(" and ")));
    }
    if !groups.is_empty() {
        sql.push_str(&format!(" group by {}", groups.join(", ")));
    }
    if rng.gen_bool(0.5) {
        // Order by a select-list column (group col or aggregate alias).
        let mut keys: Vec<String> = groups.iter().map(|g| g.to_string()).collect();
        keys.extend((0..n_aggs).map(|i| format!("agg{i}")));
        let k = &keys[rng.gen_range(0..keys.len())];
        let dir = if rng.gen_bool(0.5) { "" } else { " desc" };
        sql.push_str(&format!(" order by {k}{dir}"));
    }
    if rng.gen_bool(0.3) {
        sql.push_str(&format!(" limit {}", rng.gen_range(1..=50u32)));
    }
    sql
}

/// A reproducible batch of `n` random in-subset queries from one seed —
/// the standard workload shape for differential and fault-injection
/// harnesses (`tests/fault_recovery.rs`, `repro faults`).
pub fn random_workload(seed: u64, n: usize) -> Vec<String> {
    let mut rng = gpl_prng::StdRng::seed_from_u64(seed);
    (0..n).map(|_| random_query(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_prng::{SeedableRng, StdRng};

    #[test]
    fn generated_queries_compile() {
        let db = gpl_tpch::TpchDb::at_scale(0.002);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..100 {
            let sql = random_query(&mut rng);
            crate::compile(&db, &sql).unwrap_or_else(|e| panic!("query {i} {sql:?}: {e}"));
        }
    }

    #[test]
    fn workload_is_seed_deterministic_and_compiles() {
        let a = random_workload(618, 10);
        assert_eq!(a, random_workload(618, 10));
        assert_ne!(a, random_workload(619, 10), "seed matters");
        let db = gpl_tpch::TpchDb::at_scale(0.002);
        for sql in &a {
            crate::compile(&db, sql).expect("workload query compiles");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| random_query(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| random_query(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
