//! The SQL texts of the workload: the paper's Appendix B queries
//! (flattened where they used derived tables, since subqueries are out of
//! subset) plus the extended set. One place for both the end-to-end SQL
//! tests and the `repro profile` observability tooling, which compiles a
//! query from SQL so the planner shows up in the trace.

use gpl_tpch::QueryId;

/// Q1: the pricing summary report (extended set).
pub const Q1_SQL: &str = "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
    sum(l_extendedprice) as sum_base_price, \
    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
    sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
    sum(l_discount) as sum_disc, count(*) as count_order \
    from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day \
    group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus";

/// Q3: the shipping-priority top-k join (extended set).
pub const Q3_SQL: &str = "select l_orderkey, o_orderdate, o_shippriority, \
    sum(l_extendedprice * (1 - l_discount)) as revenue \
    from customer, orders, lineitem \
    where c_mktsegment = 'BUILDING' and c_custkey = o_custkey \
      and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15' \
      and l_shipdate > date '1995-03-15' \
    group by l_orderkey, o_orderdate, o_shippriority \
    order by revenue desc, o_orderdate limit 10";

/// Q5 — Listing 2, verbatim modulo whitespace.
pub const Q5_SQL: &str = "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
    from customer, orders, lineitem, supplier, nation, region \
    where c_custkey = o_custkey and l_orderkey = o_orderkey \
      and l_suppkey = s_suppkey and c_nationkey = s_nationkey \
      and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
      and r_name = 'ASIA' \
      and o_orderdate >= date '1994-01-01' and o_orderdate < date '1995-01-01' \
    group by n_name order by revenue desc";

/// Q6: the pure-scan forecasting query (extended set).
pub const Q6_SQL: &str = "select sum(l_extendedprice * l_discount) as revenue from lineitem \
    where l_shipdate >= date '1994-01-01' \
      and l_shipdate < date '1994-01-01' + interval '1' year \
      and l_discount between 0.05 and 0.07 and l_quantity < 24";

/// Q7 — Listing 3 with the derived table flattened (no subqueries in the
/// subset); semantics are identical because the inner select is a pure
/// projection.
pub const Q7_SQL: &str = "select n1.n_name as supp_nation, n2.n_name as cust_nation, \
      extract(year from l_shipdate) as l_year, \
      sum(l_extendedprice * (1 - l_discount)) as revenue \
    from supplier, lineitem, orders, customer, nation n1, nation n2 \
    where s_suppkey = l_suppkey and o_orderkey = l_orderkey and c_custkey = o_custkey \
      and s_nationkey = n1.n_nationkey and c_nationkey = n2.n_nationkey \
      and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY') \
        or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE')) \
      and l_shipdate between date '1995-01-01' and date '1996-12-31' \
    group by n1.n_name, n2.n_name, extract(year from l_shipdate) \
    order by l_year";

/// Q8 — Listing 4 flattened; the mkt_share *ratio* needs division, so the
/// numerator and denominator are selected separately (the engine note in
/// the planner docs).
pub const Q8_SQL: &str = "select extract(year from o_orderdate) as o_year, \
      sum(case when n2.n_name = 'BRAZIL' \
          then l_extendedprice * (1 - l_discount) else 0 end) as brazil_volume, \
      sum(l_extendedprice * (1 - l_discount)) as total_volume \
    from part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
    where p_partkey = l_partkey and s_suppkey = l_suppkey and l_orderkey = o_orderkey \
      and o_custkey = c_custkey and c_nationkey = n1.n_nationkey \
      and n1.n_regionkey = r_regionkey and r_name = 'AMERICA' \
      and s_nationkey = n2.n_nationkey \
      and o_orderdate between date '1995-01-01' and date '1996-12-31' \
      and p_type = 'ECONOMY ANODIZED STEEL' \
    group by extract(year from o_orderdate) order by o_year";

/// Q9 — Listing 5 flattened (Appendix B's `p_partkey < 1000` variant).
pub const Q9_SQL: &str = "select n_name as nation, extract(year from o_orderdate) as o_year, \
      sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit \
    from part, supplier, lineitem, partsupp, orders, nation \
    where s_suppkey = l_suppkey and ps_suppkey = l_suppkey and ps_partkey = l_partkey \
      and p_partkey = l_partkey and o_orderkey = l_orderkey and s_nationkey = n_nationkey \
      and p_partkey < 1000 \
    group by n_name, extract(year from o_orderdate) order by o_year desc";

/// Q10: the returned-item report (extended set).
pub const Q10_SQL: &str = "select c_custkey, c_nationkey, c_acctbal, \
    sum(l_extendedprice * (1 - l_discount)) as revenue \
    from customer, orders, lineitem \
    where c_custkey = o_custkey and l_orderkey = o_orderkey \
      and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01' \
      and l_returnflag = 'R' \
    group by c_custkey, c_nationkey, c_acctbal \
    order by revenue desc, c_custkey limit 20";

/// Q12: the shipping-mode priority counts (extended set).
pub const Q12_SQL: &str = "select l_shipmode, \
    sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end) \
        as high_line_count, \
    sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' \
        then 1 else 0 end) as low_line_count \
    from orders, lineitem \
    where o_orderkey = l_orderkey and l_shipmode in ('MAIL', 'SHIP') \
      and l_commitdate < l_receiptdate and l_shipdate < l_commitdate \
      and l_receiptdate >= date '1994-01-01' \
      and l_receiptdate < date '1994-01-01' + interval '1' year \
    group by l_shipmode order by l_shipmode";

/// Q14 — Listing 6 with the promo share kept as (numerator, denominator)
/// and the garbled `case when p_partKey` of the listing restored to the
/// standard `p_type like 'PROMO%'` intent.
pub const Q14_SQL: &str = "select \
      sum(case when p_type like 'PROMO%' \
          then l_extendedprice * (1 - l_discount) else 0 end) as promo_revenue, \
      sum(l_extendedprice * (1 - l_discount)) as total_revenue \
    from lineitem, part \
    where l_partkey = p_partkey \
      and l_shipdate >= date '1995-09-01' \
      and l_shipdate < date '1995-09-01' + interval '1' month";

/// The SQL text for a workload query, `None` for the hand-built plans
/// (Listing 1, ad hoc) that have no SQL formulation in subset.
pub fn sql_for(q: QueryId) -> Option<&'static str> {
    Some(match q {
        QueryId::Q1 => Q1_SQL,
        QueryId::Q3 => Q3_SQL,
        QueryId::Q5 => Q5_SQL,
        QueryId::Q6 => Q6_SQL,
        QueryId::Q7 => Q7_SQL,
        QueryId::Q8 => Q8_SQL,
        QueryId::Q9 => Q9_SQL,
        QueryId::Q10 => Q10_SQL,
        QueryId::Q12 => Q12_SQL,
        QueryId::Q14 => Q14_SQL,
        QueryId::Listing1 | QueryId::Adhoc => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_query_has_sql_that_compiles() {
        let db = gpl_tpch::TpchDb::at_scale(0.001);
        let mut with_sql = 0;
        for q in QueryId::all() {
            let Some(sql) = sql_for(q) else { continue };
            crate::compile(&db, sql).unwrap_or_else(|e| panic!("{}: {e}", q.name()));
            with_sql += 1;
        }
        assert_eq!(with_sql, 10, "all ten TPC-H workload queries carry SQL");
    }
}
