//! Abstract syntax for the supported analytical SQL subset:
//!
//! ```sql
//! SELECT <item>[, ...]
//! FROM <table> [<alias>][, ...]
//! [WHERE <conjunct> [AND ...]]
//! [GROUP BY <expr>[, ...]]
//! [ORDER BY <expr|position> [ASC|DESC][, ...]]
//! [LIMIT <n>]
//! ```
//!
//! with expressions over columns, numeric / string / date literals,
//! `+ - * /`, comparisons, `BETWEEN`, `IN (...)`, `LIKE 'prefix%'` (on
//! dictionary columns), `CASE WHEN ... THEN ... ELSE ... END`,
//! `EXTRACT(YEAR FROM ...)`, date `INTERVAL` arithmetic, and the
//! aggregates `SUM`, `COUNT(*)`, `MIN`, `MAX`.

/// A possibly-qualified column reference (`n1.n_name` or `l_orderkey`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub column: String,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Column(ColumnRef),
    /// Numeric literal, textual (typed during binding: `0.05` on a
    /// decimal column becomes 5 cents).
    Number(String),
    Str(String),
    /// `DATE 'YYYY-MM-DD'` possibly with interval arithmetic, folded to a
    /// day number at parse time.
    DateLit(i32),
    Binary {
        op: BinOp,
        lhs: Box<SqlExpr>,
        rhs: Box<SqlExpr>,
    },
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case {
        cond: Box<SqlPred>,
        then: Box<SqlExpr>,
        otherwise: Box<SqlExpr>,
    },
    /// `EXTRACT(YEAR FROM e)`.
    ExtractYear(Box<SqlExpr>),
    /// Aggregate call; only allowed at the top of a select item.
    Agg {
        func: AggFunc,
        arg: Option<Box<SqlExpr>>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Min,
    Max,
}

/// Boolean predicates (WHERE conjuncts, CASE conditions).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlPred {
    Cmp {
        op: CmpOp,
        lhs: SqlExpr,
        rhs: SqlExpr,
    },
    Between {
        expr: SqlExpr,
        lo: SqlExpr,
        hi: SqlExpr,
    },
    InList {
        expr: SqlExpr,
        list: Vec<SqlExpr>,
    },
    /// `LIKE 'prefix%'` on a dictionary-encoded column.
    LikePrefix {
        expr: SqlExpr,
        prefix: String,
    },
    And(Vec<SqlPred>),
    Or(Box<SqlPred>, Box<SqlPred>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One SELECT item: an expression with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SqlExpr,
    pub alias: Option<String>,
}

/// A FROM entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name other clauses refer to this instance by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// ORDER BY key: a 1-based output position or an expression matching a
/// select item / alias.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    Position(usize),
    Expr(SqlExpr),
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub predicates: Vec<SqlPred>,
    pub group_by: Vec<SqlExpr>,
    pub order_by: Vec<(OrderKey, bool)>, // (key, descending)
    pub limit: Option<usize>,
}
