//! Recursive-descent parser for the supported SQL subset.

use crate::ast::*;
use crate::token::{err, tokenize, SqlError, Token};
use gpl_storage::Date;

const KEYWORDS: &[&str] = &[
    "select", "from", "where", "group", "by", "order", "limit", "and", "or", "between", "in",
    "like", "case", "when", "then", "else", "end", "as", "date", "interval", "day", "month",
    "year", "extract", "asc", "desc", "sum", "count", "min", "max",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStmt, SqlError> {
    let mut p = Parser {
        toks: tokenize(sql)?,
        pos: 0,
    };
    let stmt = p.select()?;
    if p.pos != p.toks.len() {
        return err(format!("trailing input at {:?}", p.peek()));
    }
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            err(format!("expected {kw:?}, found {:?}", self.peek()))
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), SqlError> {
        if self.eat(&t) {
            Ok(())
        } else {
            err(format!("expected {t}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => Ok(s),
            other => err(format!("expected identifier, found {other:?}")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.table_ref()?);
        }
        let predicates = if self.eat_kw("where") {
            self.conjuncts()?
        } else {
            Vec::new()
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let key = if let Some(Token::Number(n)) = self.peek() {
                    let n = n.clone();
                    if n.contains('.') {
                        return err("ORDER BY position must be an integer");
                    }
                    self.pos += 1;
                    OrderKey::Position(
                        n.parse::<usize>()
                            .map_err(|_| SqlError("bad position".into()))?,
                    )
                } else {
                    OrderKey::Expr(self.expr()?)
                };
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((key, desc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Number(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| SqlError("bad LIMIT".into()))?,
                ),
                other => return err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let expr = self.expr()?;
        // `expr AS alias` or a bare trailing identifier.
        let has_alias = self.eat_kw("as")
            || matches!(self.peek(), Some(Token::Ident(s)) if !KEYWORDS.contains(&s.as_str()));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        let alias = if matches!(self.peek(), Some(Token::Ident(s)) if !KEYWORDS.contains(&s.as_str()))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    /// WHERE clause: top-level AND chain, flattened into conjuncts.
    fn conjuncts(&mut self) -> Result<Vec<SqlPred>, SqlError> {
        let p = self.pred_and()?;
        Ok(match p {
            SqlPred::And(v) => v,
            other => vec![other],
        })
    }

    fn pred_and(&mut self) -> Result<SqlPred, SqlError> {
        let mut parts = vec![self.pred_or()?];
        while self.eat_kw("and") {
            parts.push(self.pred_or()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            SqlPred::And(parts)
        })
    }

    fn pred_or(&mut self) -> Result<SqlPred, SqlError> {
        let mut p = self.pred_atom()?;
        while self.eat_kw("or") {
            let rhs = self.pred_atom()?;
            p = SqlPred::Or(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn pred_atom(&mut self) -> Result<SqlPred, SqlError> {
        // A parenthesis may open a nested predicate or a parenthesized
        // scalar expression; try the predicate first.
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(p) = self.pred_and() {
                if self.eat(&Token::RParen) {
                    return Ok(p);
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        if self.eat_kw("between") {
            let lo = self.expr()?;
            self.expect_kw("and")?;
            let hi = self.expr()?;
            return Ok(SqlPred::Between { expr: lhs, lo, hi });
        }
        if self.eat_kw("in") {
            self.expect(Token::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(Token::RParen)?;
            return Ok(SqlPred::InList { expr: lhs, list });
        }
        if self.eat_kw("like") {
            match self.next() {
                Some(Token::Str(s)) => {
                    let Some(prefix) = s.strip_suffix('%') else {
                        return err("only prefix LIKE patterns ('abc%') are supported");
                    };
                    if prefix.contains('%') || prefix.contains('_') {
                        return err("only prefix LIKE patterns ('abc%') are supported");
                    }
                    return Ok(SqlPred::LikePrefix {
                        expr: lhs,
                        prefix: prefix.to_string(),
                    });
                }
                other => return err(format!("expected LIKE pattern, found {other:?}")),
            }
        }
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => return err(format!("expected comparison, found {other:?}")),
        };
        let rhs = self.expr()?;
        Ok(SqlPred::Cmp { op, lhs, rhs })
    }

    fn expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut e = self.term()?;
        loop {
            let op = if self.eat(&Token::Plus) {
                BinOp::Add
            } else if self.eat(&Token::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.term()?;
            e = SqlExpr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<SqlExpr, SqlError> {
        let mut e = self.factor()?;
        loop {
            let op = if self.eat(&Token::Star) {
                BinOp::Mul
            } else if self.eat(&Token::Slash) {
                BinOp::Div
            } else {
                break;
            };
            let rhs = self.factor()?;
            e = SqlExpr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    /// `DATE 'lit'` with optional `± INTERVAL 'n' unit` chain, folded.
    fn date_literal(&mut self) -> Result<SqlExpr, SqlError> {
        let lit = match self.next() {
            Some(Token::Str(s)) => s,
            other => return err(format!("expected date string, found {other:?}")),
        };
        let date = Date::parse(&lit).ok_or_else(|| SqlError(format!("bad date {lit:?}")))?;
        let mut days = date.to_days();
        loop {
            let neg = if self.peek() == Some(&Token::Plus)
                && self.toks.get(self.pos + 1) == Some(&Token::Ident("interval".into()))
            {
                self.pos += 2;
                false
            } else if self.peek() == Some(&Token::Minus)
                && self.toks.get(self.pos + 1) == Some(&Token::Ident("interval".into()))
            {
                self.pos += 2;
                true
            } else {
                break;
            };
            let n: i32 = match self.next() {
                Some(Token::Str(s)) => s
                    .parse()
                    .map_err(|_| SqlError(format!("bad interval {s:?}")))?,
                Some(Token::Number(s)) => s
                    .parse()
                    .map_err(|_| SqlError(format!("bad interval {s:?}")))?,
                other => return err(format!("expected interval amount, found {other:?}")),
            };
            let n = if neg { -n } else { n };
            days = if self.eat_kw("day") {
                days + n
            } else if self.eat_kw("month") {
                let d = Date::from_days(days);
                let total = d.year * 12 + (d.month as i32 - 1) + n;
                Date {
                    year: total.div_euclid(12),
                    month: (total.rem_euclid(12) + 1) as u32,
                    day: d.day,
                }
                .to_days()
            } else if self.eat_kw("year") {
                let d = Date::from_days(days);
                Date {
                    year: d.year + n,
                    ..d
                }
                .to_days()
            } else {
                return err("expected DAY, MONTH or YEAR after interval");
            };
        }
        Ok(SqlExpr::DateLit(days))
    }

    fn factor(&mut self) -> Result<SqlExpr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Minus) => {
                // Unary minus: 0 - <factor>.
                self.pos += 1;
                let f = self.factor()?;
                Ok(SqlExpr::Binary {
                    op: BinOp::Sub,
                    lhs: Box::new(SqlExpr::Number("0".into())),
                    rhs: Box::new(f),
                })
            }
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(SqlExpr::Number(n))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Str(s))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(id)) => match id.as_str() {
                "date" => {
                    self.pos += 1;
                    self.date_literal()
                }
                "case" => {
                    self.pos += 1;
                    self.expect_kw("when")?;
                    let cond = self.pred_and()?;
                    self.expect_kw("then")?;
                    let then = self.expr()?;
                    self.expect_kw("else")?;
                    let otherwise = self.expr()?;
                    self.expect_kw("end")?;
                    Ok(SqlExpr::Case {
                        cond: Box::new(cond),
                        then: Box::new(then),
                        otherwise: Box::new(otherwise),
                    })
                }
                "extract" => {
                    self.pos += 1;
                    self.expect(Token::LParen)?;
                    self.expect_kw("year")?;
                    self.expect_kw("from")?;
                    let e = self.expr()?;
                    self.expect(Token::RParen)?;
                    Ok(SqlExpr::ExtractYear(Box::new(e)))
                }
                "sum" | "count" | "min" | "max" => {
                    self.pos += 1;
                    let func = match id.as_str() {
                        "sum" => AggFunc::Sum,
                        "count" => AggFunc::Count,
                        "min" => AggFunc::Min,
                        _ => AggFunc::Max,
                    };
                    self.expect(Token::LParen)?;
                    let arg = if func == AggFunc::Count && self.eat(&Token::Star) {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect(Token::RParen)?;
                    Ok(SqlExpr::Agg { func, arg })
                }
                _ if KEYWORDS.contains(&id.as_str()) => {
                    err(format!("unexpected keyword {id:?} in expression"))
                }
                _ => {
                    self.pos += 1;
                    if self.eat(&Token::Dot) {
                        let column = self.ident()?;
                        Ok(SqlExpr::Column(ColumnRef {
                            qualifier: Some(id),
                            column,
                        }))
                    } else {
                        Ok(SqlExpr::Column(ColumnRef {
                            qualifier: None,
                            column: id,
                        }))
                    }
                }
            },
            other => err(format!("unexpected token {other:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpl_storage::days;

    #[test]
    fn parses_listing1() {
        let q = parse(
            "SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge \
             FROM lineitem WHERE l_shipdate <= DATE '1998-11-01'",
        )
        .unwrap();
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.items[0].alias.as_deref(), Some("sum_charge"));
        assert_eq!(
            q.from,
            vec![TableRef {
                table: "lineitem".into(),
                alias: None
            }]
        );
        assert_eq!(q.predicates.len(), 1);
        assert!(q.group_by.is_empty() && q.order_by.is_empty() && q.limit.is_none());
    }

    #[test]
    fn parses_aliases_group_order_limit() {
        let q = parse(
            "select n1.n_name supp, sum(x) from nation n1, nation n2 \
             where n1.n_nationkey = n2.n_nationkey group by n1.n_name \
             order by 2 desc, supp limit 10",
        )
        .unwrap();
        assert_eq!(q.from[0].binding(), "n1");
        assert_eq!(q.from[1].binding(), "n2");
        assert_eq!(q.order_by[0], (OrderKey::Position(2), true));
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn folds_date_interval_arithmetic() {
        let q = parse(
            "select a from t where d < date '1995-01-01' + interval '1' month \
             and e >= date '1998-12-01' - interval '90' day",
        )
        .unwrap();
        let SqlPred::Cmp {
            rhs: SqlExpr::DateLit(d1),
            ..
        } = &q.predicates[0]
        else {
            panic!("want date literal")
        };
        assert_eq!(*d1, days("1995-02-01"));
        let SqlPred::Cmp {
            rhs: SqlExpr::DateLit(d2),
            ..
        } = &q.predicates[1]
        else {
            panic!("want date literal")
        };
        assert_eq!(*d2, days("1998-12-01") - 90);
    }

    #[test]
    fn parses_between_in_like_case() {
        let q = parse(
            "select case when a = 1 then b else 0 end from t \
             where x between 1 and 3 and y in (1, 2) and s like 'PROMO%' \
             and (p = 1 or q = 2)",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 4);
        assert!(matches!(q.predicates[0], SqlPred::Between { .. }));
        assert!(matches!(q.predicates[1], SqlPred::InList { .. }));
        assert!(matches!(q.predicates[2], SqlPred::LikePrefix { .. }));
        assert!(matches!(q.predicates[3], SqlPred::Or(..)));
        assert!(matches!(q.items[0].expr, SqlExpr::Case { .. }));
    }

    #[test]
    fn unary_minus() {
        let q = parse("select a from t where x < -5").unwrap();
        let SqlPred::Cmp { rhs, .. } = &q.predicates[0] else {
            panic!()
        };
        assert!(matches!(rhs, SqlExpr::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("select").is_err());
        assert!(parse("select a from t where").is_err());
        // "extra" binds as a table alias; a dangling ORDER is an error.
        assert!(parse("select a from t order").is_err());
        assert!(parse("select a from t where s like '%infix%'").is_err());
    }

    #[test]
    fn extract_and_count_star() {
        let q = parse("select extract(year from o_orderdate), count(*) from orders group by 1");
        // GROUP BY by position is not supported — positions are only for
        // ORDER BY; expect a parse of the number as an expression instead.
        assert!(q.is_ok());
        let q = q.unwrap();
        assert!(matches!(q.items[0].expr, SqlExpr::ExtractYear(_)));
        assert!(matches!(
            q.items[1].expr,
            SqlExpr::Agg {
                func: AggFunc::Count,
                arg: None
            }
        ));
    }
}
