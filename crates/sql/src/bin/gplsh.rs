//! `gplsh` — an interactive SQL shell over the GPL engine.
//!
//! ```text
//! cargo run --release -p gpl-sql --bin gplsh -- [--sf 0.05] [--device amd|nvidia] [--mode gpl|kbe]
//! ```
//!
//! Reads one statement per line (`;` optional). Meta-commands:
//! `\mode gpl|kbe|noce|pipelined`, `\explain <sql>`, `\timeline <sql>`
//! (traced per-kernel Gantt chart), `\trace` (toggle per-query
//! predicted-vs-observed drift), `\shard <n>` (run subsequent queries
//! sharded over the heterogeneous device pool; `\shard off` returns to
//! the single CLI device), `\chaos [threshold]` (toggle straggler
//! hedging for sharded queries: shards observed past `threshold`× their
//! modeled cycles get a speculative backup on the modeled-cheapest
//! other device), `\stats` (session metrics registry, plus the last
//! drift table when tracing is on), `\timing` (toggle per-query host
//! wall-clock milliseconds next to the simulated cycles — wall numbers
//! are non-deterministic and machine-dependent), `\tables`, `\q`.

use gpl_core::shard::{try_run_query_sharded, DevicePool, ShardPlan};
use gpl_core::{DisplayHint, ExecContext, ExecLimits, ExecMode, QueryConfig};
use gpl_model::GammaTable;
use gpl_obs::{metrics_report, DriftReport, MetricsRegistry};
use gpl_sim::{amd_a10, nvidia_k40};
use gpl_sql::{compile_optimized, run_sql};
use gpl_storage::{decimal_to_string, Date};
use gpl_tpch::TpchDb;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sf = 0.05;
    let mut spec = amd_a10();
    let mut mode = ExecMode::Gpl;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                sf = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(sf);
                i += 2;
            }
            "--device" => {
                if args.get(i + 1).map(String::as_str) == Some("nvidia") {
                    spec = nvidia_k40();
                }
                i += 2;
            }
            "--mode" => {
                mode = parse_mode(args.get(i + 1).map(String::as_str).unwrap_or("gpl"));
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("generating TPC-H at SF {sf} on {} ...", spec.name);
    let mut ctx = ExecContext::new(spec.clone(), TpchDb::at_scale(sf));
    eprintln!(
        "ready — {} lineitem rows. \\q quits, \\explain <sql> shows the plan.",
        ctx.db.lineitem.rows()
    );

    // Session observability: every executed query folds its profile into
    // this registry; `\stats` prints it. `\trace` additionally joins each
    // GPL query's observed rows/cycles against the model (Eq. 8 + λ).
    let mut registry = MetricsRegistry::new();
    let mut tracing = false;
    let mut last_drift: Option<DriftReport> = None;
    let mut gamma: Option<GammaTable> = None;
    // `\shard <n>` routes subsequent queries through the heterogeneous
    // device pool; 0 means the classic single-device path. The pool and
    // its per-device Γ tables calibrate lazily on first sharded query.
    let mut shards: usize = 0;
    let mut pool_state: Option<(DevicePool, Vec<GammaTable>)> = None;
    // `\chaos [threshold]` arms straggler hedging on sharded queries
    // (speculative backups for shards observed past modeled × threshold
    // cycles); `\chaos off` (or a bare repeat) disarms it.
    let mut hedge_threshold: Option<f64> = None;
    // `\timing` additionally reports host wall-clock per query. The two
    // time planes stay clearly separated: simulated cycles are
    // deterministic and pinned by tests; wall milliseconds depend on the
    // machine and are labeled as such.
    let mut timing = false;

    let stdin = std::io::stdin();
    loop {
        eprint!("gpl> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("{e}");
                break;
            }
        }
        let line = line.trim().trim_end_matches(';').trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" || line == "quit" || line == "exit" {
            break;
        }
        if line == "\\tables" {
            for t in ctx.db.tables() {
                eprintln!("  {:<10} {:>9} rows", t.name(), t.rows());
            }
            continue;
        }
        if line == "\\timing" {
            timing = !timing;
            eprintln!(
                "timing: {} (host wall clock; non-deterministic, varies by machine — \
                 simulated cycles remain the reproducible number)",
                if timing { "on" } else { "off" }
            );
            continue;
        }
        if line == "\\trace" {
            tracing = !tracing;
            eprintln!(
                "drift tracing: {} (GPL queries join observed rows/cycles against the model)",
                if tracing { "on" } else { "off" }
            );
            continue;
        }
        if line == "\\stats" {
            let report = metrics_report(&registry, &[("device", spec.name.as_str())]);
            println!("{}", report.to_pretty_string());
            match (&last_drift, tracing) {
                (Some(d), true) => {
                    eprintln!("model vs simulator, last traced GPL query:");
                    eprint!("{}", d.render());
                }
                (None, true) => eprintln!("no GPL query traced yet"),
                _ => {}
            }
            continue;
        }
        if let Some(m) = line.strip_prefix("\\mode") {
            mode = parse_mode(m.trim());
            eprintln!("mode: {}", mode.name());
            continue;
        }
        if let Some(n) = line.strip_prefix("\\shard") {
            shards = match n.trim() {
                "" | "off" | "0" => 0,
                v => match v.parse() {
                    Ok(k) if k >= 1 => k,
                    _ => {
                        eprintln!("usage: \\shard <n>|off");
                        continue;
                    }
                },
            };
            if shards == 0 {
                eprintln!("sharding: off (single device {})", spec.name);
            } else {
                eprintln!(
                    "sharding: {shards} range shard(s) over {} with per-stage placement",
                    DevicePool::default_pool().key()
                );
            }
            continue;
        }
        if let Some(t) = line.strip_prefix("\\chaos") {
            hedge_threshold = match t.trim() {
                "off" => None,
                "" => match hedge_threshold {
                    Some(_) => None,
                    None => Some(gpl_core::shard::HedgePlan::DEFAULT_THRESHOLD),
                },
                v => match v.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 1.0 => Some(t),
                    _ => {
                        eprintln!("usage: \\chaos [threshold>=1|off]");
                        continue;
                    }
                },
            };
            match hedge_threshold {
                Some(t) => eprintln!(
                    "straggler hedging: on (backup past {t}x modeled; applies under \\shard)"
                ),
                None => eprintln!("straggler hedging: off"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix("\\explain") {
            match compile_optimized(&ctx.db, sql.trim()) {
                Ok(plan) => eprintln!("{}", plan.explain()),
                Err(e) => eprintln!("{e}"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix("\\timeline") {
            ctx.sim.enable_trace();
            match run_sql(&mut ctx, sql.trim(), mode) {
                Ok(run) => {
                    let spans = ctx.sim.take_trace();
                    eprintln!(
                        "{} cycles under {}, kernel overlap {:.0}%",
                        run.cycles,
                        mode.name(),
                        100.0 * gpl_sim::overlap_fraction(&spans)
                    );
                    eprintln!("{}", gpl_sim::render_timeline(&spans, 96, spec.num_cus));
                }
                Err(e) => {
                    ctx.sim.take_trace();
                    eprintln!("{e}");
                }
            }
            continue;
        }
        let plan = match compile_optimized(&ctx.db, line) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                continue;
            }
        };
        let hints = plan.display.clone().unwrap_or_default();
        if shards > 0 {
            let (pool, gammas) = pool_state.get_or_insert_with(|| {
                let pool = DevicePool::default_pool();
                eprintln!("calibrating Γ per pool device (cached under target/) ...");
                let gammas = pool
                    .devices()
                    .iter()
                    .map(|d| {
                        let file = format!(
                            "target/gamma-{}.txt",
                            d.spec.name.to_lowercase().replace(' ', "-")
                        );
                        GammaTable::load_or_calibrate(&d.spec, std::path::Path::new(&file))
                    })
                    .collect();
                (pool, gammas)
            });
            let placement = gpl_model::place_query(pool, gammas, &ctx.db, &plan, None);
            let hedge = hedge_threshold.map(|t| gpl_model::hedge_plan(&placement, t));
            let wall_t0 = std::time::Instant::now();
            match try_run_query_sharded(
                pool,
                &ctx.db,
                &plan,
                mode,
                &ShardPlan::range(shards),
                &placement.assignment,
                &ExecLimits::default(),
                None,
                None,
                hedge.as_ref(),
                None,
            ) {
                Ok(run) => {
                    println!("{}", run.output.columns.join(" | "));
                    for row in &run.output.rows {
                        let cells: Vec<String> = row
                            .iter()
                            .enumerate()
                            .map(|(i, v)| render(&ctx, hints.get(i), *v))
                            .collect();
                        println!("{}", cells.join(" | "));
                    }
                    eprintln!(
                        "-- {} rows, {} simulated cycles, {shards} shard(s), placement {} over {}",
                        run.output.num_rows(),
                        run.cycles,
                        placement.assignment.key(),
                        pool.key()
                    );
                    if timing {
                        eprintln!(
                            "-- wall: {:.1} ms on this host (non-deterministic)",
                            wall_t0.elapsed().as_secs_f64() * 1e3
                        );
                    }
                    if run.recovery.hedges > 0 {
                        eprintln!(
                            "-- hedged {} straggler(s), {} backup win(s), {} duplicate cycles",
                            run.recovery.hedges,
                            run.recovery.hedge_wins,
                            run.recovery.wasted_cycles
                        );
                    }
                    registry.counter_add("gplsh.queries.sharded", &[("mode", mode.name())], 1);
                }
                Err(e) => eprintln!("{e}"),
            }
            continue;
        }
        let wall_t0 = std::time::Instant::now();
        match run_sql(&mut ctx, line, mode) {
            Ok(run) => {
                let wall = wall_t0.elapsed();
                println!("{}", run.output.columns.join(" | "));
                for row in &run.output.rows {
                    let cells: Vec<String> = row
                        .iter()
                        .enumerate()
                        .map(|(i, v)| render(&ctx, hints.get(i), *v))
                        .collect();
                    println!("{}", cells.join(" | "));
                }
                eprintln!(
                    "-- {} rows, {} simulated cycles ({:.2} ms on the {})",
                    run.output.num_rows(),
                    run.cycles,
                    run.ms(&spec),
                    spec.name
                );
                if timing {
                    eprintln!(
                        "-- wall: {:.1} ms on this host (non-deterministic) vs {} simulated cycles",
                        wall.as_secs_f64() * 1e3,
                        run.cycles
                    );
                }
                registry.counter_add("gplsh.queries", &[("mode", mode.name())], 1);
                run.profile
                    .export_metrics(&mut registry, &[("mode", mode.name())]);
                if tracing && mode == ExecMode::Gpl {
                    // Mirror run_sql's choices (optimized join order, the
                    // default config) so the predictions match what ran.
                    let g = gamma.get_or_insert_with(|| {
                        eprintln!("calibrating Γ for {} (cached under target/) ...", spec.name);
                        let file = format!(
                            "target/gamma-{}.txt",
                            spec.name.to_lowercase().replace(' ', "-")
                        );
                        GammaTable::load_or_calibrate(&spec, std::path::Path::new(&file))
                    });
                    let stats = gpl_model::estimate_stats(&ctx.db, &plan);
                    let models = gpl_model::build_models(&ctx.db, &plan, &stats, &spec);
                    let cfg = QueryConfig::default_for(&spec, &plan);
                    let report =
                        gpl_model::drift_for_run(&spec, g, &models, &cfg, &run, "sql", "gpl");
                    eprint!("{}", report.render());
                    last_drift = Some(report);
                }
            }
            Err(e) => eprintln!("{e}"),
        }
    }
}

fn render(ctx: &ExecContext, hint: Option<&DisplayHint>, v: i64) -> String {
    match hint {
        Some(DisplayHint::Decimal) => decimal_to_string(v),
        Some(DisplayHint::Date) => Date::from_days(v as i32).to_string(),
        Some(DisplayHint::Dict { table, column }) => ctx
            .db
            .table(table)
            .col(column)
            .dictionary()
            .map(|d| d.get(v as u32).to_string())
            .unwrap_or_else(|| v.to_string()),
        _ => v.to_string(),
    }
}

fn parse_mode(s: &str) -> ExecMode {
    match s {
        "kbe" => ExecMode::Kbe,
        "noce" => ExecMode::GplNoCe,
        "pipelined" | "gpl-pipelined" => ExecMode::GplPipelined,
        _ => ExecMode::Gpl,
    }
}
