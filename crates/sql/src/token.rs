//! SQL tokenizer.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier, normalized to lowercase (SQL identifiers in
    /// this subset are case-insensitive; keywords are matched on the
    /// lowered form).
    Ident(String),
    /// Integer or decimal literal, kept textual for type-aware binding.
    Number(String),
    /// Single-quoted string literal.
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Tokenization / parsing / binding errors, with a human-oriented message.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError(pub String);

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

pub(crate) fn err<T>(msg: impl Into<String>) -> Result<T, SqlError> {
    Err(SqlError(msg.into()))
}

/// Tokenize `sql`. Comments (`-- ...`) run to end of line.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let b = sql.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if !b.get(i + 1).map(|n| n.is_ascii_digit()).unwrap_or(false) => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j == b.len() {
                    return err("unterminated string literal");
                }
                out.push(Token::Str(sql[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                while j < b.len() {
                    let d = b[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Number(sql[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < b.len() {
                    let d = b[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(sql[start..j].to_ascii_lowercase()));
                i = j;
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_small_query() {
        let t = tokenize("SELECT sum(x) FROM t WHERE a >= 1.5 -- trailing\n").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("select".into()),
                Token::Ident("sum".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::RParen,
                Token::Ident("from".into()),
                Token::Ident("t".into()),
                Token::Ident("where".into()),
                Token::Ident("a".into()),
                Token::Ge,
                Token::Number("1.5".into()),
            ]
        );
    }

    #[test]
    fn strings_dates_and_operators() {
        let t = tokenize("x <> 'ASIA' and d < date '1995-01-01'").unwrap();
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Str("ASIA".into())));
        assert!(t.contains(&Token::Str("1995-01-01".into())));
    }

    #[test]
    fn qualified_names_keep_dots() {
        let t = tokenize("n1.n_name").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("n1".into()),
                Token::Dot,
                Token::Ident("n_name".into())
            ]
        );
    }

    #[test]
    fn rejects_unterminated_strings_and_junk() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("a ; b").is_err());
    }
}
