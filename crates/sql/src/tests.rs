//! End-to-end SQL tests: the paper's Appendix B queries (flattened where
//! they used derived tables, since subqueries are out of subset) compiled
//! from SQL text and validated bit-for-bit against the CPU reference.

use crate::corpus::{Q14_SQL, Q5_SQL, Q7_SQL, Q8_SQL, Q9_SQL};
use crate::{compile, compile_optimized, run_sql};
use gpl_core::{run_query, ExecContext, ExecMode, QueryConfig};
use gpl_sim::amd_a10;
use gpl_tpch::{reference, QueryId, TpchDb};

fn db() -> TpchDb {
    TpchDb::at_scale(0.01)
}

fn run_gpl(db: &TpchDb, sql: &str) -> gpl_tpch::QueryOutput {
    let mut ctx = ExecContext::new(amd_a10(), db.clone());
    run_sql(&mut ctx, sql, ExecMode::Gpl)
        .expect("sql runs")
        .output
}

#[test]
fn q5_sql_matches_reference() {
    let db = db();
    // The reference emits nation codes; the SQL plan groups on n_name
    // codes via the nation dimension — identical values because the
    // dictionary interns names in nation-key order.
    assert_eq!(run_gpl(&db, Q5_SQL), reference::q5(&db));
}

#[test]
fn q7_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q7_SQL), reference::q7(&db));
}

#[test]
fn q8_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q8_SQL), reference::q8(&db));
}

#[test]
fn q9_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q9_SQL), reference::q9(&db));
}

#[test]
fn q14_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q14_SQL), reference::run(&db, QueryId::Q14));
}

#[test]
fn q1_q3_q6_from_sql() {
    let db = db();
    assert_eq!(run_gpl(&db, crate::corpus::Q1_SQL), reference::q1(&db));
    assert_eq!(run_gpl(&db, crate::corpus::Q3_SQL), reference::q3(&db));
    assert_eq!(run_gpl(&db, crate::corpus::Q6_SQL), reference::q6(&db));
}

#[test]
fn q10_q12_from_sql() {
    let db = db();
    assert_eq!(run_gpl(&db, crate::corpus::Q10_SQL), reference::q10(&db));
    assert_eq!(run_gpl(&db, crate::corpus::Q12_SQL), reference::q12(&db));
}

#[test]
fn case_literal_pairs_coerce_correctly() {
    // Both CASE branches bare literals: integers stay integers...
    let db = db();
    let n = {
        let out = run_gpl(&db, "select count(*) from lineitem");
        out.rows[0][0]
    };
    let out = run_gpl(
        &db,
        "select sum(case when l_quantity < 0 then 2 else 3 end) from lineitem",
    );
    assert_eq!(out.rows[0][0], 3 * n, "else-branch 3 per row");
    // ... while a decimal point on either side makes the pair decimal
    // (fixed-point cents), matching the l_discount domain.
    let out = run_gpl(
        &db,
        "select sum(case when l_discount > 0.05 then 1.5 else 0 end) from lineitem",
    );
    let matching = run_gpl(&db, "select count(*) from lineitem where l_discount > 0.05");
    assert_eq!(
        out.rows[0][0],
        150 * matching.rows[0][0],
        "1.50 in cents per match"
    );
}

#[test]
fn all_modes_agree_on_sql_plans() {
    let db = db();
    let plan = compile_optimized(&db, Q8_SQL).unwrap();
    let spec = amd_a10();
    let cfg = QueryConfig::default_for(&spec, &plan);
    let mut ctx = ExecContext::new(spec, db);
    let want = reference::q8(&ctx.db);
    for mode in [ExecMode::Kbe, ExecMode::GplNoCe, ExecMode::Gpl] {
        let run = run_query(&mut ctx, &plan, mode, &cfg);
        assert_eq!(run.output, want, "{}", mode.name());
    }
}

#[test]
fn projection_reorders_output_columns() {
    let db = db();
    // Aggregate first, group key last: exercised through the projection.
    let sql = "select sum(l_extendedprice) as s, l_returnflag \
        from lineitem group by l_returnflag order by l_returnflag";
    let out = run_gpl(&db, sql);
    assert_eq!(out.columns, vec!["s", "l_returnflag"]);
    // Compare against the flipped layout from the same engine.
    let flipped = run_gpl(
        &db,
        "select l_returnflag, sum(l_extendedprice) as s \
         from lineitem group by l_returnflag order by l_returnflag",
    );
    for (a, b) in out.rows.iter().zip(&flipped.rows) {
        assert_eq!(a[0], b[1]);
        assert_eq!(a[1], b[0]);
    }
}

#[test]
fn min_max_aggregates_work() {
    let db = db();
    let out = run_gpl(
        &db,
        "select min(l_quantity), max(l_quantity), count(*) from lineitem \
         where l_shipdate <= date '1998-11-01'",
    );
    assert_eq!(out.rows[0][0], 100, "min quantity is 1.00");
    assert_eq!(out.rows[0][1], 5000, "max quantity is 50.00");
    assert!(out.rows[0][2] > 0);
}

#[test]
fn helpful_errors() {
    let db = db();
    let cases = [
        ("select x from lineitem", "unknown column"),
        (
            "select sum(l_quantity) from lineitem, nation",
            "cannot be joined",
        ),
        ("select l_orderkey from lineitem", "aggregate"),
        (
            "select sum(l_extendedprice / l_discount) from lineitem",
            "division is not supported",
        ),
        (
            "select sum(l_extendedprice) / sum(l_discount) from lineitem",
            "neither an aggregate",
        ),
        (
            "select n_name from nation n1, nation n2 where n1.n_nationkey = n2.n_nationkey",
            "ambiguous",
        ),
        (
            "select sum(l_quantity) from lineitem order by nope",
            "not a select item",
        ),
        (
            "select sum(case when l_quantity < 0 then 0.005 else 0 end) from lineitem",
            "more than two decimal places",
        ),
    ];
    for (sql, want) in cases {
        let e = compile(&db, sql).expect_err(sql);
        assert!(e.0.contains(want), "{sql}: got {:?}, want {want:?}", e.0);
    }
}

#[test]
fn join_order_optimizer_composes_with_sql() {
    let db = db();
    let plain = compile(&db, Q8_SQL).unwrap();
    let opt = compile_optimized(&db, Q8_SQL).unwrap();
    // Same stages, same results; possibly different probe order.
    assert_eq!(plain.stages.len(), opt.stages.len());
    let spec = amd_a10();
    let mut ctx = ExecContext::new(spec.clone(), db);
    let a = run_query(
        &mut ctx,
        &plain,
        ExecMode::Gpl,
        &QueryConfig::default_for(&spec, &plain),
    );
    let b = run_query(
        &mut ctx,
        &opt,
        ExecMode::Gpl,
        &QueryConfig::default_for(&spec, &opt),
    );
    assert_eq!(a.output, b.output);
}
