//! End-to-end SQL tests: the paper's Appendix B queries (flattened where
//! they used derived tables, since subqueries are out of subset) compiled
//! from SQL text and validated bit-for-bit against the CPU reference.

use crate::{compile, compile_optimized, run_sql};
use gpl_core::{run_query, ExecContext, ExecMode, QueryConfig};
use gpl_sim::amd_a10;
use gpl_tpch::{reference, QueryId, TpchDb};

fn db() -> TpchDb {
    TpchDb::at_scale(0.01)
}

fn run_gpl(db: &TpchDb, sql: &str) -> gpl_tpch::QueryOutput {
    let mut ctx = ExecContext::new(amd_a10(), db.clone());
    run_sql(&mut ctx, sql, ExecMode::Gpl).expect("sql runs").output
}

/// Q5 — Listing 2, verbatim modulo whitespace.
pub const Q5_SQL: &str = "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
    from customer, orders, lineitem, supplier, nation, region \
    where c_custkey = o_custkey and l_orderkey = o_orderkey \
      and l_suppkey = s_suppkey and c_nationkey = s_nationkey \
      and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
      and r_name = 'ASIA' \
      and o_orderdate >= date '1994-01-01' and o_orderdate < date '1995-01-01' \
    group by n_name order by revenue desc";

/// Q7 — Listing 3 with the derived table flattened (no subqueries in the
/// subset); semantics are identical because the inner select is a pure
/// projection.
pub const Q7_SQL: &str = "select n1.n_name as supp_nation, n2.n_name as cust_nation, \
      extract(year from l_shipdate) as l_year, \
      sum(l_extendedprice * (1 - l_discount)) as revenue \
    from supplier, lineitem, orders, customer, nation n1, nation n2 \
    where s_suppkey = l_suppkey and o_orderkey = l_orderkey and c_custkey = o_custkey \
      and s_nationkey = n1.n_nationkey and c_nationkey = n2.n_nationkey \
      and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY') \
        or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE')) \
      and l_shipdate between date '1995-01-01' and date '1996-12-31' \
    group by n1.n_name, n2.n_name, extract(year from l_shipdate) \
    order by l_year";

/// Q8 — Listing 4 flattened; the mkt_share *ratio* needs division, so the
/// numerator and denominator are selected separately (the engine note in
/// the planner docs).
pub const Q8_SQL: &str = "select extract(year from o_orderdate) as o_year, \
      sum(case when n2.n_name = 'BRAZIL' \
          then l_extendedprice * (1 - l_discount) else 0 end) as brazil_volume, \
      sum(l_extendedprice * (1 - l_discount)) as total_volume \
    from part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
    where p_partkey = l_partkey and s_suppkey = l_suppkey and l_orderkey = o_orderkey \
      and o_custkey = c_custkey and c_nationkey = n1.n_nationkey \
      and n1.n_regionkey = r_regionkey and r_name = 'AMERICA' \
      and s_nationkey = n2.n_nationkey \
      and o_orderdate between date '1995-01-01' and date '1996-12-31' \
      and p_type = 'ECONOMY ANODIZED STEEL' \
    group by extract(year from o_orderdate) order by o_year";

/// Q9 — Listing 5 flattened (Appendix B's `p_partkey < 1000` variant).
pub const Q9_SQL: &str = "select n_name as nation, extract(year from o_orderdate) as o_year, \
      sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit \
    from part, supplier, lineitem, partsupp, orders, nation \
    where s_suppkey = l_suppkey and ps_suppkey = l_suppkey and ps_partkey = l_partkey \
      and p_partkey = l_partkey and o_orderkey = l_orderkey and s_nationkey = n_nationkey \
      and p_partkey < 1000 \
    group by n_name, extract(year from o_orderdate) order by o_year desc";

/// Q14 — Listing 6 with the promo share kept as (numerator, denominator)
/// and the garbled `case when p_partKey` of the listing restored to the
/// standard `p_type like 'PROMO%'` intent.
pub const Q14_SQL: &str = "select \
      sum(case when p_type like 'PROMO%' \
          then l_extendedprice * (1 - l_discount) else 0 end) as promo_revenue, \
      sum(l_extendedprice * (1 - l_discount)) as total_revenue \
    from lineitem, part \
    where l_partkey = p_partkey \
      and l_shipdate >= date '1995-09-01' \
      and l_shipdate < date '1995-09-01' + interval '1' month";

#[test]
fn q5_sql_matches_reference() {
    let db = db();
    // The reference emits nation codes; the SQL plan groups on n_name
    // codes via the nation dimension — identical values because the
    // dictionary interns names in nation-key order.
    assert_eq!(run_gpl(&db, Q5_SQL), reference::q5(&db));
}

#[test]
fn q7_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q7_SQL), reference::q7(&db));
}

#[test]
fn q8_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q8_SQL), reference::q8(&db));
}

#[test]
fn q9_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q9_SQL), reference::q9(&db));
}

#[test]
fn q14_sql_matches_reference() {
    let db = db();
    assert_eq!(run_gpl(&db, Q14_SQL), reference::run(&db, QueryId::Q14));
}

#[test]
fn q1_q3_q6_from_sql() {
    let db = db();
    let q1 = "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
        sum(l_extendedprice) as sum_base_price, \
        sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
        sum(l_discount) as sum_disc, count(*) as count_order \
        from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day \
        group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus";
    assert_eq!(run_gpl(&db, q1), reference::q1(&db));

    let q3 = "select l_orderkey, o_orderdate, o_shippriority, \
        sum(l_extendedprice * (1 - l_discount)) as revenue \
        from customer, orders, lineitem \
        where c_mktsegment = 'BUILDING' and c_custkey = o_custkey \
          and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15' \
          and l_shipdate > date '1995-03-15' \
        group by l_orderkey, o_orderdate, o_shippriority \
        order by revenue desc, o_orderdate limit 10";
    assert_eq!(run_gpl(&db, q3), reference::q3(&db));

    let q6 = "select sum(l_extendedprice * l_discount) as revenue from lineitem \
        where l_shipdate >= date '1994-01-01' \
          and l_shipdate < date '1994-01-01' + interval '1' year \
          and l_discount between 0.05 and 0.07 and l_quantity < 24";
    assert_eq!(run_gpl(&db, q6), reference::q6(&db));
}

#[test]
fn q10_q12_from_sql() {
    let db = db();
    let q10 = "select c_custkey, c_nationkey, c_acctbal, \
        sum(l_extendedprice * (1 - l_discount)) as revenue \
        from customer, orders, lineitem \
        where c_custkey = o_custkey and l_orderkey = o_orderkey \
          and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01' \
          and l_returnflag = 'R' \
        group by c_custkey, c_nationkey, c_acctbal \
        order by revenue desc, c_custkey limit 20";
    assert_eq!(run_gpl(&db, q10), reference::q10(&db));

    let q12 = "select l_shipmode, \
        sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end) \
            as high_line_count, \
        sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' \
            then 1 else 0 end) as low_line_count \
        from orders, lineitem \
        where o_orderkey = l_orderkey and l_shipmode in ('MAIL', 'SHIP') \
          and l_commitdate < l_receiptdate and l_shipdate < l_commitdate \
          and l_receiptdate >= date '1994-01-01' \
          and l_receiptdate < date '1994-01-01' + interval '1' year \
        group by l_shipmode order by l_shipmode";
    assert_eq!(run_gpl(&db, q12), reference::q12(&db));
}

#[test]
fn case_literal_pairs_coerce_correctly() {
    // Both CASE branches bare literals: integers stay integers...
    let db = db();
    let n = {
        let out = run_gpl(&db, "select count(*) from lineitem");
        out.rows[0][0]
    };
    let out = run_gpl(&db, "select sum(case when l_quantity < 0 then 2 else 3 end) from lineitem");
    assert_eq!(out.rows[0][0], 3 * n, "else-branch 3 per row");
    // ... while a decimal point on either side makes the pair decimal
    // (fixed-point cents), matching the l_discount domain.
    let out = run_gpl(
        &db,
        "select sum(case when l_discount > 0.05 then 1.5 else 0 end) from lineitem",
    );
    let matching = run_gpl(&db, "select count(*) from lineitem where l_discount > 0.05");
    assert_eq!(out.rows[0][0], 150 * matching.rows[0][0], "1.50 in cents per match");
}

#[test]
fn all_modes_agree_on_sql_plans() {
    let db = db();
    let plan = compile_optimized(&db, Q8_SQL).unwrap();
    let spec = amd_a10();
    let cfg = QueryConfig::default_for(&spec, &plan);
    let mut ctx = ExecContext::new(spec, db);
    let want = reference::q8(&ctx.db);
    for mode in [ExecMode::Kbe, ExecMode::GplNoCe, ExecMode::Gpl] {
        let run = run_query(&mut ctx, &plan, mode, &cfg);
        assert_eq!(run.output, want, "{}", mode.name());
    }
}

#[test]
fn projection_reorders_output_columns() {
    let db = db();
    // Aggregate first, group key last: exercised through the projection.
    let sql = "select sum(l_extendedprice) as s, l_returnflag \
        from lineitem group by l_returnflag order by l_returnflag";
    let out = run_gpl(&db, sql);
    assert_eq!(out.columns, vec!["s", "l_returnflag"]);
    // Compare against the flipped layout from the same engine.
    let flipped = run_gpl(
        &db,
        "select l_returnflag, sum(l_extendedprice) as s \
         from lineitem group by l_returnflag order by l_returnflag",
    );
    for (a, b) in out.rows.iter().zip(&flipped.rows) {
        assert_eq!(a[0], b[1]);
        assert_eq!(a[1], b[0]);
    }
}

#[test]
fn min_max_aggregates_work() {
    let db = db();
    let out = run_gpl(
        &db,
        "select min(l_quantity), max(l_quantity), count(*) from lineitem \
         where l_shipdate <= date '1998-11-01'",
    );
    assert_eq!(out.rows[0][0], 100, "min quantity is 1.00");
    assert_eq!(out.rows[0][1], 5000, "max quantity is 50.00");
    assert!(out.rows[0][2] > 0);
}

#[test]
fn helpful_errors() {
    let db = db();
    let cases = [
        ("select x from lineitem", "unknown column"),
        ("select sum(l_quantity) from lineitem, nation", "cannot be joined"),
        ("select l_orderkey from lineitem", "aggregate"),
        (
            "select sum(l_extendedprice / l_discount) from lineitem",
            "division is not supported",
        ),
        (
            "select sum(l_extendedprice) / sum(l_discount) from lineitem",
            "neither an aggregate",
        ),
        ("select n_name from nation n1, nation n2 where n1.n_nationkey = n2.n_nationkey",
         "ambiguous"),
        ("select sum(l_quantity) from lineitem order by nope", "not a select item"),
        (
            "select sum(case when l_quantity < 0 then 0.005 else 0 end) from lineitem",
            "more than two decimal places",
        ),
    ];
    for (sql, want) in cases {
        let e = compile(&db, sql).expect_err(sql);
        assert!(e.0.contains(want), "{sql}: got {:?}, want {want:?}", e.0);
    }
}

#[test]
fn join_order_optimizer_composes_with_sql() {
    let db = db();
    let plain = compile(&db, Q8_SQL).unwrap();
    let opt = compile_optimized(&db, Q8_SQL).unwrap();
    // Same stages, same results; possibly different probe order.
    assert_eq!(plain.stages.len(), opt.stages.len());
    let spec = amd_a10();
    let mut ctx = ExecContext::new(spec.clone(), db);
    let a = run_query(&mut ctx, &plain, ExecMode::Gpl, &QueryConfig::default_for(&spec, &plain));
    let b = run_query(&mut ctx, &opt, ExecMode::Gpl, &QueryConfig::default_for(&spec, &opt));
    assert_eq!(a.output, b.output);
}
