//! Bridging simulator traces into a [`gpl_obs::Recorder`].
//!
//! The engine's own instrumentation ([`crate::Simulator::attach_recorder`])
//! records launch/kernel spans and channel-occupancy counters. Per-CU
//! activity, though, comes from the per-work-unit [`TraceSpan`]s the
//! simulator collects while tracing is enabled — this module replays
//! them onto CU-numbered recorder tracks, so a Chrome-trace export shows
//! one timeline row per compute unit with the occupying kernel named on
//! each slice (the Figure 9/10 picture, but in Perfetto).

use crate::timeline::TraceSpan;
use gpl_obs::Recorder;

/// Replay work-unit spans onto `cuNN` tracks of `rec`. Tracks are
/// registered in ascending CU order (zero-padded names keep viewers that
/// sort lexicographically honest), so the export layout is deterministic
/// regardless of dispatch order.
pub fn record_spans(rec: &Recorder, spans: &[TraceSpan]) {
    let Some(max_cu) = spans.iter().map(|s| s.cu).max() else {
        return;
    };
    let tracks: Vec<_> = (0..=max_cu)
        .map(|c| rec.track(&format!("cu{c:02}")))
        .collect();
    for s in spans {
        rec.span(
            tracks[s.cu as usize],
            "cu",
            s.kernel.clone(),
            s.start,
            s.end,
            Vec::new(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_land_on_cu_numbered_tracks() {
        let rec = Recorder::new();
        let spans = vec![
            TraceSpan {
                kernel: Arc::from("k_probe*"),
                cu: 3,
                start: 10,
                end: 20,
            },
            TraceSpan {
                kernel: Arc::from("k_map*"),
                cu: 0,
                start: 0,
                end: 5,
            },
        ];
        record_spans(&rec, &spans);
        let names = rec.track_names();
        assert_eq!(names, vec!["cu00", "cu01", "cu02", "cu03"]);
        let recorded = rec.spans();
        assert_eq!(recorded.len(), 2);
        assert_eq!(&*recorded[0].name, "k_probe*");
        assert_eq!(recorded[0].track, rec.track("cu03"));
        assert_eq!((recorded[1].start, recorded[1].end), (0, Some(5)));
    }

    #[test]
    fn empty_trace_registers_nothing() {
        let rec = Recorder::new();
        record_spans(&rec, &[]);
        assert!(rec.track_names().is_empty());
        assert!(rec.spans().is_empty());
    }
}
