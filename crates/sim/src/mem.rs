//! Simulated global-memory address space.
//!
//! The simulator is *trace driven*: operators compute real results on real
//! Rust data, but every load/store they would issue on the GPU is reported
//! as a [`MemRange`] against a simulated address space. The [`MemoryMap`]
//! hands out non-overlapping regions (table columns, intermediate buffers,
//! hash tables, channel buffers) so that the cache simulator sees a
//! realistic, conflict-prone address stream, and so the materialization
//! counters (Figures 3, 17, 18) can attribute written bytes to a
//! [`RegionClass`].

use std::fmt;

/// What a region of simulated memory holds. Used to attribute traffic:
/// Figure 3 / 17 / 18 count bytes written to `Intermediate` and
/// `HashTable` regions (the paper counts hash tables built by blocking
/// kernels as materialized intermediates), while `TableData` is the input
/// and `Output` the final result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegionClass {
    /// Base table columns (the query input).
    TableData,
    /// Intermediate results materialized in global memory between kernels.
    Intermediate,
    /// Hash tables built by (blocking) hash-build kernels.
    HashTable,
    /// Channel (pipe) backing buffers — on-device, cache-resident traffic.
    ChannelBuf,
    /// Final query output.
    Output,
    /// Scratch space (prefix-sum temporaries etc.), counted as intermediate
    /// traffic but reported separately for breakdowns.
    Scratch,
}

impl RegionClass {
    /// Number of variants (for array-indexed per-class counters).
    pub const COUNT: usize = 6;

    /// All variants in declaration order, matching [`RegionClass::index`].
    pub const ALL: [RegionClass; Self::COUNT] = [
        RegionClass::TableData,
        RegionClass::Intermediate,
        RegionClass::HashTable,
        RegionClass::ChannelBuf,
        RegionClass::Output,
        RegionClass::Scratch,
    ];

    /// Dense index into [`RegionClass::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether writes to this class count as "intermediate results
    /// materialized in the global memory" for Figures 3/17/18.
    pub fn is_materialized_intermediate(self) -> bool {
        matches!(
            self,
            RegionClass::Intermediate | RegionClass::HashTable | RegionClass::Scratch
        )
    }
}

/// A contiguous simulated-address range with a class and a label.
#[derive(Debug, Clone)]
pub struct Region {
    pub base: u64,
    pub bytes: u64,
    pub class: RegionClass,
    pub label: String,
}

/// Handle to an allocated region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub u32);

/// One load/store range as reported by a work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRange {
    pub addr: u64,
    pub bytes: u64,
    pub write: bool,
}

impl MemRange {
    pub fn read(addr: u64, bytes: u64) -> Self {
        MemRange {
            addr,
            bytes,
            write: false,
        }
    }
    pub fn write(addr: u64, bytes: u64) -> Self {
        MemRange {
            addr,
            bytes,
            write: true,
        }
    }
}

/// Bump allocator over the simulated 64-bit address space.
///
/// Regions are aligned to 256 bytes (a cache-line multiple) so that
/// distinct buffers never share a line, matching how GPU allocators align
/// buffers.
#[derive(Debug, Default)]
pub struct MemoryMap {
    regions: Vec<Region>,
    next: u64,
}

const ALIGN: u64 = 256;

impl MemoryMap {
    pub fn new() -> Self {
        // Leave the null page unmapped to catch zero-address bugs.
        MemoryMap {
            regions: Vec::new(),
            next: 4096,
        }
    }

    /// Allocate `bytes` of simulated memory.
    pub fn alloc(&mut self, bytes: u64, class: RegionClass, label: impl Into<String>) -> RegionId {
        let base = self.next.div_ceil(ALIGN) * ALIGN;
        self.next = base + bytes.max(1);
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            base,
            bytes: bytes.max(1),
            class,
            label: label.into(),
        });
        id
    }

    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Base address of a region.
    pub fn base(&self, id: RegionId) -> u64 {
        self.regions[id.0 as usize].base
    }

    /// Classify an address. Addresses are dense-ish and region count is
    /// modest (columns + intermediates), so a binary search is plenty.
    pub fn classify(&self, addr: u64) -> Option<RegionClass> {
        self.classify_id(addr).map(|(_, c)| c)
    }

    /// Like [`MemoryMap::classify`] but also returns the owning region id.
    pub fn classify_id(&self, addr: u64) -> Option<(RegionId, RegionClass)> {
        // Regions are allocated in increasing base order.
        let idx = self.regions.partition_point(|r| r.base <= addr);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        (addr < r.base + r.bytes).then_some((RegionId(idx as u32 - 1), r.class))
    }

    /// [`MemoryMap::classify_id`] with a caller-held last-region memo:
    /// work units touch runs of ranges inside one region, so checking
    /// the memo first skips the binary search on the hot path. `hint`
    /// is an opaque region index (any starting value self-corrects).
    pub fn classify_id_hinted(&self, addr: u64, hint: &mut u32) -> Option<(RegionId, RegionClass)> {
        if let Some(r) = self.regions.get(*hint as usize) {
            if addr >= r.base && addr < r.base + r.bytes {
                return Some((RegionId(*hint), r.class));
            }
        }
        let hit = self.classify_id(addr);
        if let Some((id, _)) = hit {
            *hint = id.0;
        }
        hit
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Number of live regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

impl fmt::Display for MemoryMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.regions {
            writeln!(
                f,
                "{:#014x}..{:#014x} {:>10}B {:?} {}",
                r.base,
                r.base + r.bytes,
                r.bytes,
                r.class,
                r.label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap_and_are_aligned() {
        let mut m = MemoryMap::new();
        let a = m.alloc(1000, RegionClass::TableData, "a");
        let b = m.alloc(1, RegionClass::Intermediate, "b");
        let c = m.alloc(4096, RegionClass::HashTable, "c");
        let (ra, rb, rc) = (
            m.region(a).clone(),
            m.region(b).clone(),
            m.region(c).clone(),
        );
        assert!(ra.base % ALIGN == 0 && rb.base % ALIGN == 0 && rc.base % ALIGN == 0);
        assert!(ra.base + ra.bytes <= rb.base);
        assert!(rb.base + rb.bytes <= rc.base);
    }

    #[test]
    fn classify_finds_owning_region() {
        let mut m = MemoryMap::new();
        let a = m.alloc(128, RegionClass::TableData, "a");
        let b = m.alloc(128, RegionClass::Output, "b");
        assert_eq!(m.classify(m.base(a)), Some(RegionClass::TableData));
        assert_eq!(m.classify(m.base(a) + 127), Some(RegionClass::TableData));
        assert_eq!(m.classify(m.base(b) + 5), Some(RegionClass::Output));
        assert_eq!(m.classify(0), None);
        assert_eq!(m.classify(m.base(b) + 100_000), None);
    }

    #[test]
    fn intermediate_classes() {
        assert!(RegionClass::Intermediate.is_materialized_intermediate());
        assert!(RegionClass::HashTable.is_materialized_intermediate());
        assert!(RegionClass::Scratch.is_materialized_intermediate());
        assert!(!RegionClass::TableData.is_materialized_intermediate());
        assert!(!RegionClass::ChannelBuf.is_materialized_intermediate());
        assert!(!RegionClass::Output.is_materialized_intermediate());
    }

    #[test]
    fn zero_sized_alloc_gets_distinct_address() {
        let mut m = MemoryMap::new();
        let a = m.alloc(0, RegionClass::Scratch, "a");
        let b = m.alloc(0, RegionClass::Scratch, "b");
        assert_ne!(m.base(a), m.base(b));
    }
}
